"""Vectorized (numpy) kernels for the analysis hot loops.

The exact analyses (:mod:`repro.maxplus`, :mod:`repro.mcm`,
:mod:`repro.sdf.simulation`) work over Python dicts with
:class:`fractions.Fraction` arithmetic — auditable and exact, but they
cap the throughput of every layer above (batch tier, resilience tiers).
This package provides array-backed equivalents of the three hot loops:

* Karp's maximum cycle mean as vectorized Bellman sweeps over a
  CSR-style :class:`~repro.kernels.arraygraph.ArrayGraph`
  (:func:`~repro.kernels.mcm.karp_mcm_numpy`);
* Howard's policy iteration with array-based improvement stages
  (:func:`~repro.kernels.mcm.howard_mcr_numpy`);
* the self-timed state-space simulation with a vectorized enabling/
  firing step (:func:`~repro.kernels.simulation.
  simulation_throughput_numpy`);
* a dense max-plus semiring module (batched ``np.maximum`` +
  broadcast-add matrix product, :mod:`repro.kernels.maxplus`).

**The numpy kernels return the same exact results as the reference
implementations.**  Floating point is used only to *search* for a
candidate critical cycle; the reported value is re-derived exactly from
the original :class:`~repro.mcm.graphlib.RatioEdge` objects and then
*certified* optimal with an exact integer Bellman–Ford sweep.  Any
numerical doubt — weights too large for exact float64 sums, a tolerance
check tripping, a failed certification — raises
:class:`NumericalGuardError`, and callers fall back to the exact kernel
(recorded as ``degradation_reason`` in provenance).  Because results
are bit-identical, cache entries are shared between backends and the
kernel is *not* part of the cache key.

numpy itself is imported lazily: with numpy absent, ``kernel="auto"``
resolves to the exact backend and only an explicit ``kernel="numpy"``
raises :class:`KernelUnavailableError`.

See ``docs/kernels.md`` for the array layout, the tolerance policy and
the differential-oracle testing recipe (``tests/test_kernel_oracle.py``).
"""

from repro.kernels.backend import (
    KERNELS,
    KernelUnavailableError,
    NumericalGuardError,
    available_kernels,
    check_candidate,
    float_tolerance,
    numpy_available,
    numpy_or_none,
    record_fallback,
    record_selection,
    require_numpy,
    resolve_kernel,
)

__all__ = [
    "KERNELS",
    "KernelUnavailableError",
    "NumericalGuardError",
    "available_kernels",
    "check_candidate",
    "float_tolerance",
    "numpy_available",
    "numpy_or_none",
    "record_fallback",
    "record_selection",
    "require_numpy",
    "resolve_kernel",
]
