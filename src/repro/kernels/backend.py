"""Kernel selection, numerical guards and the lazy numpy import.

The analysis layers accept a ``kernel="auto"|"numpy"|"exact"`` knob.
This module owns the three pieces every kernel shares:

* **Selection** — :func:`resolve_kernel` maps the knob to a concrete
  backend.  ``"auto"`` prefers numpy when it imports, silently falling
  back to the exact path otherwise; an *explicit* ``"numpy"`` without
  numpy raises :class:`KernelUnavailableError` instead of silently
  degrading.
* **Laziness** — numpy is imported exactly once, on first use, via
  :func:`numpy_or_none`.  Nothing in :mod:`repro` imports numpy at
  module load, so the exact path works on hosts without it (the
  no-numpy guard test mocks the import away to prove it).
* **Guards** — the numpy kernels promise *bit-identical* results to the
  exact-Fraction reference.  They keep that promise by using float64
  only inside regimes where it is exact, and by certifying candidate
  answers with exact integer arithmetic.  Whenever a precondition fails
  (:data:`MAX_EXACT_FLOAT_SUM`, :data:`MAX_INT64_SUM`, the
  :func:`float_tolerance` check, or a failed certification) they raise
  :class:`NumericalGuardError` and the caller falls back to the exact
  kernel, recording the reason as provenance ``degradation_reason``.

Tolerance policy (documented here, asserted in
``tests/test_kernels.py``): scaled integer weights are guarded so every
dynamic-programming sum stays below ``2**53`` and is therefore an
*exactly representable* float64.  The only rounding the search path
performs is one final division per candidate, so a float candidate must
match the exact Fraction re-derived from the critical cycle to within
one unit in the last place — :func:`float_tolerance` allows ``2**-40``
relative slack, ~8000x that, purely as a cheap smoke test ahead of the
real exact certification.  A trip means the guard model is wrong, so it
is treated like any other guard failure: exact fallback, never a wrong
answer.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Tuple

from repro.errors import ReproError
from repro.obs.metrics import default_registry

__all__ = [
    "KERNELS",
    "MAX_EXACT_FLOAT_SUM",
    "MAX_INT64_SUM",
    "KernelUnavailableError",
    "NumericalGuardError",
    "available_kernels",
    "float_tolerance",
    "numpy_available",
    "numpy_or_none",
    "record_fallback",
    "record_selection",
    "require_numpy",
    "resolve_kernel",
]

#: Valid values for the ``kernel=`` knob, in documentation order.
KERNELS: Tuple[str, ...] = ("auto", "numpy", "exact")

#: Dynamic-programming sums (scaled integer weights) must stay strictly
#: below this for float64 arithmetic on them to be exact (53-bit
#: mantissa).
MAX_EXACT_FLOAT_SUM = 2 ** 53

#: Reduced-weight Bellman certification runs in int64; sums must stay
#: strictly below this (headroom under 2**63 for one extra addition).
MAX_INT64_SUM = 2 ** 62

#: Relative tolerance for the float-candidate vs exact-Fraction smoke
#: check (see module docstring for the derivation).
RELATIVE_TOLERANCE = 2.0 ** -40


class KernelUnavailableError(ReproError, RuntimeError):
    """An explicitly requested kernel backend cannot run here."""


class NumericalGuardError(ReproError, ArithmeticError):
    """A numpy kernel cannot guarantee exactness; use the exact kernel.

    Raised before any wrong answer can escape: on oversized weights,
    int64 overflow risk, a tripped tolerance check or a failed exact
    certification.  Callers catch this and fall back to the reference
    implementation, recording the message as ``degradation_reason``.
    """


# Cached lazy import: _UNSET until the first probe, then the module
# object or None.  Tests reset it via _reset_numpy_cache() when they
# mock the import away.
_UNSET = object()
_numpy_module = _UNSET


def numpy_or_none():
    """Return the numpy module, or ``None`` when it cannot be imported."""
    global _numpy_module
    if _numpy_module is _UNSET:
        try:
            import numpy
        except ImportError:
            _numpy_module = None
        else:
            _numpy_module = numpy
    return _numpy_module


def _reset_numpy_cache() -> None:
    """Forget the cached import probe (test hook)."""
    global _numpy_module
    _numpy_module = _UNSET


def numpy_available() -> bool:
    """True when the numpy backend can run in this interpreter."""
    return numpy_or_none() is not None


def require_numpy():
    """Return numpy or raise :class:`KernelUnavailableError`."""
    module = numpy_or_none()
    if module is None:
        raise KernelUnavailableError(
            "kernel 'numpy' requested but numpy is not importable; "
            "use kernel='auto' (silent exact fallback) or kernel='exact'"
        )
    return module


def available_kernels() -> Tuple[str, ...]:
    """Concrete backends that can run here (always includes 'exact')."""
    return ("numpy", "exact") if numpy_available() else ("exact",)


def resolve_kernel(kernel: str) -> str:
    """Map the ``kernel=`` knob to a concrete backend name.

    ``"auto"`` resolves to ``"numpy"`` when numpy imports and to
    ``"exact"`` otherwise.  An explicit ``"numpy"`` on a host without
    numpy raises :class:`KernelUnavailableError`; unknown names raise
    :class:`ValueError`.
    """
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNELS)}"
        )
    if kernel == "auto":
        return "numpy" if numpy_available() else "exact"
    if kernel == "numpy":
        require_numpy()
    return kernel


def float_tolerance(exact: Fraction) -> float:
    """Absolute tolerance for comparing a float candidate to ``exact``.

    Relative (:data:`RELATIVE_TOLERANCE`) in the magnitude of the exact
    value, floored at the absolute scale so values near zero still get
    slack for their one rounding division.
    """
    magnitude = abs(float(exact))
    return RELATIVE_TOLERANCE * max(1.0, magnitude)


def check_candidate(candidate: float, exact: Fraction, *, what: str) -> None:
    """Assert the float search result matches its exact re-derivation.

    Raises :class:`NumericalGuardError` when the candidate differs from
    the exact Fraction by more than :func:`float_tolerance` — the cheap
    front line of the tolerance policy, ahead of exact certification.
    """
    drift = abs(candidate - float(exact))
    allowed = float_tolerance(exact)
    if drift != drift or drift > allowed:  # NaN-safe
        raise NumericalGuardError(
            f"{what}: float candidate {candidate!r} deviates from exact "
            f"value {exact} by {drift!r} (tolerance {allowed!r})"
        )


def record_selection(kernel: str, method: str) -> None:
    """Count a kernel selection (``repro_kernel_selected_total``)."""
    default_registry().counter(
        "repro_kernel_selected_total",
        "Kernel backend selected per throughput analysis",
        labels=("kernel", "method"),
    ).labels(kernel=kernel, method=method).inc()


def record_fallback(method: str) -> None:
    """Count a guard-driven numpy→exact fallback."""
    default_registry().counter(
        "repro_kernel_fallback_total",
        "Numerical-guard fallbacks from the numpy kernel to exact",
        labels=("method",),
    ).labels(method=method).inc()
