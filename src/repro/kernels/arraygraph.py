"""CSR-style array adjacency for :class:`~repro.mcm.graphlib.RatioGraph`.

:class:`ArrayGraph` is the shared substrate of the numpy MCM kernels.
It freezes one strongly connected ratio graph (a nontrivial SCC of a
max-plus precedence graph or of an HSDF cycle-ratio graph) into flat
arrays:

* ``nodes`` / ``edges`` keep the original node labels and
  :class:`~repro.mcm.graphlib.RatioEdge` objects in insertion order, so
  a cycle found by index arithmetic maps straight back to exact edges
  (and from there to provenance witness arcs).
* ``src`` / ``dst`` are int64 node indices per edge, ``transits`` the
  int64 token counts.
* Edge weights are Fractions in the reference graph; here they are
  scaled by ``scale`` — the LCM of all weight denominators — into the
  integers ``weight_ints`` and mirrored as the float64 array
  ``weights``.  Construction guards ``(n+1) * max|weight|`` against
  :data:`~repro.kernels.backend.MAX_EXACT_FLOAT_SUM` so every
  dynamic-programming sum of at most ``n`` scaled weights is an exactly
  representable float64; oversized weights raise
  :class:`~repro.kernels.backend.NumericalGuardError` and the caller
  falls back to the exact kernel.
* Two CSR index layers: ``in_order``/``in_indptr`` group edge indices
  by target node (Karp's per-node max over incoming relaxations via
  ``np.maximum.reduceat``) and ``out_order``/``out_indptr`` group them
  by source node (Howard's per-node policy improvement).

Because the graph is strongly connected with at least one edge, every
node has both an incoming and an outgoing edge — so every CSR segment
is non-empty and ``reduceat`` needs no empty-segment fix-up.  The
constructor enforces this invariant.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import List, Sequence

from repro.kernels.backend import (
    MAX_EXACT_FLOAT_SUM,
    NumericalGuardError,
    require_numpy,
)
from repro.mcm.graphlib import RatioEdge, RatioGraph

__all__ = ["ArrayGraph"]


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


class ArrayGraph:
    """Flat-array view of one strongly connected :class:`RatioGraph`."""

    __slots__ = (
        "nodes",
        "node_index",
        "edges",
        "src",
        "dst",
        "transits",
        "weight_ints",
        "weights",
        "scale",
        "in_order",
        "in_indptr",
        "out_order",
        "out_indptr",
    )

    def __init__(self, nodes: Sequence[object], edges: Sequence[RatioEdge]):
        np = require_numpy()
        if not edges:
            raise ValueError("ArrayGraph requires at least one edge")
        self.nodes: List[object] = list(nodes)
        self.node_index = {node: index for index, node in enumerate(self.nodes)}
        self.edges: List[RatioEdge] = list(edges)
        n = len(self.nodes)
        m = len(self.edges)

        self.src = np.fromiter(
            (self.node_index[edge.source] for edge in self.edges),
            dtype=np.int64, count=m)
        self.dst = np.fromiter(
            (self.node_index[edge.target] for edge in self.edges),
            dtype=np.int64, count=m)
        self.transits = np.fromiter(
            (edge.transit for edge in self.edges), dtype=np.int64, count=m)

        scale = 1
        for edge in self.edges:
            scale = _lcm(scale, Fraction(edge.weight).denominator)
        self.scale = scale
        self.weight_ints = [
            int(Fraction(edge.weight) * scale) for edge in self.edges
        ]
        largest = max(abs(w) for w in self.weight_ints)
        if (n + 1) * largest >= MAX_EXACT_FLOAT_SUM:
            raise NumericalGuardError(
                f"scaled weights too large for exact float64 sums: "
                f"({n} + 1) * {largest} >= 2**53"
            )
        self.weights = np.array(self.weight_ints, dtype=np.float64)

        self.in_order = np.argsort(self.dst, kind="stable").astype(np.int64)
        self.in_indptr = self._indptr(np, self.dst[self.in_order], n)
        self.out_order = np.argsort(self.src, kind="stable").astype(np.int64)
        self.out_indptr = self._indptr(np, self.src[self.out_order], n)
        in_degree = np.diff(self.in_indptr)
        out_degree = np.diff(self.out_indptr)
        if not ((in_degree > 0).all() and (out_degree > 0).all()):
            raise ValueError(
                "ArrayGraph requires every node to have incoming and "
                "outgoing edges (build it from a nontrivial SCC)"
            )

    @staticmethod
    def _indptr(np, sorted_keys, n: int):
        return np.searchsorted(
            sorted_keys, np.arange(n + 1, dtype=np.int64), side="left"
        ).astype(np.int64)

    @classmethod
    def from_ratio_graph(cls, graph: RatioGraph) -> "ArrayGraph":
        """Freeze ``graph`` (typically one nontrivial SCC) into arrays."""
        return cls(graph.nodes, graph.edges)

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def exact_weight(self, edge_index: int) -> Fraction:
        """The unscaled exact weight of edge ``edge_index``."""
        return Fraction(self.weight_ints[edge_index], self.scale)
