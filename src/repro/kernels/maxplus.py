"""Dense numpy max-plus semiring operations.

The exact :class:`~repro.maxplus.matrix.MaxPlusMatrix` stores Fractions
row-major and multiplies with Python loops.  This module provides the
array equivalents — ``ε`` is ``-inf`` and the semiring product is a
broadcast-add followed by a batched ``np.maximum`` reduction::

    (A ⊗ B)[i, k] = max_j (A[i, j] + B[j, k])
                  = (A[:, :, None] + B[None, :, :]).max(axis=1)

``-inf`` rows and columns are safe throughout: the only additions are
``finite + finite``, ``-inf + finite`` and ``-inf + -inf`` (never
``-inf + +inf``, which would produce NaN), so ε propagates exactly as
in the reference implementation.

Conversion is exactness-checked both ways: :func:`to_dense` refuses
(:class:`~repro.kernels.backend.NumericalGuardError`) any finite entry
that is not exactly representable as a float64, and :func:`from_dense`
rebuilds exact Fractions from the floats, so a round trip through the
dense representation is the identity on the matrices it accepts.
"""

from __future__ import annotations

from fractions import Fraction

from repro.kernels.backend import NumericalGuardError, require_numpy
from repro.maxplus.algebra import EPSILON, is_epsilon
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector

__all__ = [
    "from_dense",
    "from_dense_vector",
    "mp_identity",
    "mp_matmul",
    "mp_matvec",
    "mp_power",
    "to_dense",
    "to_dense_vector",
]


def _as_float(value, where: str) -> float:
    if is_epsilon(value):
        return float("-inf")
    exact = Fraction(value)
    approx = float(exact)
    if Fraction(approx) != exact:
        raise NumericalGuardError(
            f"{where}: entry {exact} is not exactly representable as float64"
        )
    return approx


def to_dense(matrix: MaxPlusMatrix):
    """Float64 array view of ``matrix`` (ε → ``-inf``), exactness-checked."""
    np = require_numpy()
    dense = np.empty((matrix.nrows, matrix.ncols), dtype=np.float64)
    for i, row in enumerate(matrix.rows):
        for j, value in enumerate(row):
            dense[i, j] = _as_float(value, f"matrix entry ({i}, {j})")
    return dense


def to_dense_vector(vector: MaxPlusVector):
    """Float64 array view of ``vector`` (ε → ``-inf``), exactness-checked."""
    np = require_numpy()
    return np.array(
        [_as_float(value, f"vector entry {i}")
         for i, value in enumerate(vector.entries)],
        dtype=np.float64,
    )


def _from_float(value):
    if value == float("-inf"):
        return EPSILON
    return Fraction(float(value))


def from_dense(array) -> MaxPlusMatrix:
    """Rebuild an exact :class:`MaxPlusMatrix` from a dense float array."""
    return MaxPlusMatrix([[_from_float(v) for v in row] for row in array])


def from_dense_vector(array) -> MaxPlusVector:
    """Rebuild an exact :class:`MaxPlusVector` from a dense float array."""
    return MaxPlusVector([_from_float(v) for v in array])


def mp_identity(n: int):
    """Dense max-plus identity: 0 on the diagonal, ε elsewhere."""
    np = require_numpy()
    dense = np.full((n, n), float("-inf"), dtype=np.float64)
    np.fill_diagonal(dense, 0.0)
    return dense


def mp_matmul(a, b):
    """Max-plus matrix product via broadcast-add + batched maximum."""
    require_numpy()
    if a.shape[1] != b.shape[0]:
        raise ValueError(
            f"dimension mismatch: {a.shape} cannot multiply {b.shape}"
        )
    return (a[:, :, None] + b[None, :, :]).max(axis=1)


def mp_matvec(a, x):
    """Max-plus matrix-vector product ``A ⊗ x``."""
    require_numpy()
    if a.shape[1] != x.shape[0]:
        raise ValueError(
            f"dimension mismatch: {a.shape} cannot apply to {x.shape}"
        )
    return (a + x[None, :]).max(axis=1)


def mp_power(a, n: int):
    """Max-plus matrix power by binary exponentiation (``n >= 0``)."""
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix power requires a square matrix")
    if n < 0:
        raise ValueError("matrix power requires a non-negative exponent")
    result = mp_identity(a.shape[0])
    base = a
    while n:
        if n & 1:
            result = mp_matmul(result, base)
        base = mp_matmul(base, base) if n > 1 else base
        n >>= 1
    return result
