"""Vectorized self-timed state-space simulation.

Array mirror of :func:`repro.sdf.simulation.simulation_throughput`.
The exact engine advances a discrete-event loop where every event does
Python-loop work per actor and per edge with Fraction time arithmetic.
This kernel keeps the *same semantics, state space and results* while
vectorizing the per-event work:

* **Integer event times.**  All execution times are scaled by the LCM
  ``L`` of their denominators, so event times are Python ints; the
  reported period/transient divide by ``L`` back into exact Fractions.
  Time arithmetic is therefore exact by construction — no tolerance is
  involved anywhere in this kernel.
* **One vectorized enabling pass per instant.**  Starting a firing only
  *consumes* tokens and each channel has exactly one consumer, so the
  number of firings actor ``a`` can start at an instant is independent
  of other actors: ``fires[a] = min over in-edges (tokens // cons)``,
  computed for all actors at once with ``np.minimum.reduceat`` over an
  incoming-edge CSR.  One pass per instant replaces the reference
  engine's fire-one-at-a-time loop and starts exactly the same
  multiset of firings.
* **Aggregated completions.**  Ongoing firings are per-``(end, actor)``
  counts; completions at the next instant are applied as one vectorized
  token update.  The state key — token vector plus the multiset of
  (remaining time, actor) pairs — aggregates the exact engine's key
  bijectively, so recurrence is detected after the same event with the
  same period.

Witness mode (binding back-pointers for critical-cycle extraction) is
inherently per-firing, so that bookkeeping stays a Python loop mirroring
:meth:`SelfTimedSimulation._record_binding` exactly: bindings, start
counts and the start window come out identical and feed the unchanged
:func:`repro.sdf.simulation.binding_witness`.

Token counts live in int64; a (pathological) unbounded build-up that
approaches the int64 range raises
:class:`~repro.kernels.backend.NumericalGuardError` long before
wrap-around, and the caller falls back to the exact engine.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ConvergenceError,
    DeadlockError,
    UnboundedThroughputError,
)
from repro.kernels.backend import NumericalGuardError, require_numpy
from repro.sdf.graph import SDFGraph
from repro.sdf.simulation import SelfTimedSimulation, SimulatedThroughput

__all__ = ["simulation_throughput_numpy"]

#: Token counts beyond this trip the overflow guard (int64 headroom).
_MAX_TOKENS = 2 ** 60


def _lcm(a: int, b: int) -> int:
    return a // gcd(a, b) * b


class _ArraySimulation:
    """Array state of one self-timed execution (scaled integer time)."""

    def __init__(self, graph: SDFGraph, deadline=None,
                 record_bindings: bool = False):
        np = require_numpy()
        for actor in graph.actor_names:
            if not graph.in_edges(actor):
                raise UnboundedThroughputError(
                    f"actor {actor!r} has no incoming edges: self-timed "
                    "execution would fire it unboundedly often at time 0; "
                    "add a self-edge with one initial token to bound it",
                    actor=actor,
                )
        self.np = np
        self.graph = graph
        self.deadline = deadline
        self.actors: List[str] = list(graph.actor_names)
        self.actor_index = {a: i for i, a in enumerate(self.actors)}
        n = len(self.actors)

        scale = 1
        times = [Fraction(graph.execution_time(a)) for a in self.actors]
        for t in times:
            scale = _lcm(scale, t.denominator)
        self.scale = scale
        self.times_scaled = [int(t * scale) for t in times]

        edges = list(graph.edges)
        self.edge_names = [e.name for e in edges]
        m = len(edges)
        self.tokens = np.fromiter(
            (e.tokens for e in edges), dtype=np.int64, count=m)
        self.cons = np.fromiter(
            (e.consumption for e in edges), dtype=np.int64, count=m)
        self.prod = np.fromiter(
            (e.production for e in edges), dtype=np.int64, count=m)
        self.edge_target = np.fromiter(
            (self.actor_index[e.target] for e in edges),
            dtype=np.int64, count=m)
        self.edge_source = np.fromiter(
            (self.actor_index[e.source] for e in edges),
            dtype=np.int64, count=m)
        # Incoming-edge CSR per actor (segments non-empty: every actor
        # has at least one in-edge, checked above).
        self.in_order = np.argsort(self.edge_target, kind="stable")
        self.in_indptr = np.searchsorted(
            self.edge_target[self.in_order],
            np.arange(n + 1, dtype=np.int64), side="left")

        self.now = 0  # scaled integer time
        self.firings = np.zeros(n, dtype=np.int64)
        #: Ongoing firings: scaled end time -> per-actor count array.
        self.pending: Dict[int, "object"] = {}

        self.bindings = {} if record_bindings else None
        if record_bindings:
            self._fifos = {
                e.name: deque([None] * e.tokens) for e in edges
            }
            self.start_counts = {a: 0 for a in self.actors}
            self._completion_counts = {a: 0 for a in self.actors}
        self._start_enabled_firings()

    # -- mechanics ------------------------------------------------------

    def _start_enabled_firings(self) -> None:
        np = self.np
        if not self.actors:
            return
        ordered = self.in_order
        available = self.tokens[ordered] // self.cons[ordered]
        fires = np.minimum.reduceat(available, self.in_indptr[:-1])
        total = int(fires.sum())
        if total == 0:
            return
        if total > SelfTimedSimulation.MAX_STARTS_PER_INSTANT:
            raise ConvergenceError(
                "more than "
                f"{SelfTimedSimulation.MAX_STARTS_PER_INSTANT} firing "
                f"starts at time {Fraction(self.now, self.scale)}: a "
                "zero-execution-time cycle fires infinitely often at one "
                "instant"
            )
        if self.bindings is not None:
            # Mirror the reference engine: bindings are recorded per
            # firing, in actor order, before the token decrement.
            for index, actor in enumerate(self.actors):
                for _ in range(int(fires[index])):
                    self._record_binding(actor)
        self.tokens -= fires[self.edge_target] * self.cons
        for index in np.nonzero(fires)[0]:
            end = self.now + self.times_scaled[index]
            counts = self.pending.get(end)
            if counts is None:
                counts = np.zeros(len(self.actors), dtype=np.int64)
                self.pending[end] = counts
            counts[index] += int(fires[index])

    def _record_binding(self, actor: str) -> None:
        binding = None
        best = None
        for e in self.graph.in_edges(actor):
            fifo = self._fifos[e.name]
            for _ in range(e.consumption):
                entry = fifo.popleft()
                if entry is not None:
                    producer, ordinal, end = entry
                    rank = (end, producer, ordinal)
                    if best is None or rank > best:
                        best = rank
                        binding = (producer, ordinal, e.name)
        ordinal = self.start_counts[actor]
        self.start_counts[actor] = ordinal + 1
        self.bindings[(actor, ordinal)] = binding

    @property
    def is_deadlocked(self) -> bool:
        return not self.pending

    def step(self) -> None:
        np = self.np
        next_time = min(self.pending)
        counts = self.pending.pop(next_time)
        self.now = next_time
        if self.bindings is not None:
            # Completion order is (end, actor name) in the reference
            # engine; only the per-actor ordinal order is observable
            # (one producer per channel), but mirror it anyway.
            for index in sorted(
                    np.nonzero(counts)[0], key=lambda i: self.actors[i]):
                actor = self.actors[index]
                for _ in range(int(counts[index])):
                    ordinal = self._completion_counts[actor]
                    self._completion_counts[actor] = ordinal + 1
                    for e in self.graph.out_edges(actor):
                        self._fifos[e.name].extend(
                            [(actor, ordinal, next_time)] * e.production
                        )
        self.tokens += self.prod * counts[self.edge_source]
        if self.tokens.size and int(self.tokens.max()) > _MAX_TOKENS:
            raise NumericalGuardError(
                f"token count exceeded {_MAX_TOKENS} at time "
                f"{Fraction(self.now, self.scale)}; int64 token state "
                "cannot guarantee exactness"
            )
        self.firings += counts
        self._start_enabled_firings()

    # -- state hashing --------------------------------------------------

    def state_key(self) -> Tuple:
        relative = tuple(sorted(
            (end - self.now, self.actors[index], int(count[index]))
            for end, count in self.pending.items()
            for index in self.np.nonzero(count)[0]
        ))
        return (self.tokens.tobytes(), relative)

    def snapshot(self):
        firings = {a: int(self.firings[i])
                   for i, a in enumerate(self.actors)}
        starts = dict(self.start_counts) if self.bindings is not None else None
        return (self.now, firings, starts)


def simulation_throughput_numpy(
    graph: SDFGraph, max_states: int = 200_000, deadline=None,
    witness: bool = False,
) -> SimulatedThroughput:
    """Drop-in array equivalent of :func:`simulation_throughput`.

    Same state space, recurrence point, errors and exact results as the
    reference engine (see module docstring); returns the same
    :class:`~repro.sdf.simulation.SimulatedThroughput`, including
    bindings and the start window when ``witness=True``.
    """
    require_numpy()
    progress = (
        deadline.checkpoint(
            "state-space-exploration",
            {"events": 0, "max_states": max_states, "states_seen": 1},
        )
        if deadline is not None
        else None
    )
    sim = _ArraySimulation(graph, deadline=deadline, record_bindings=witness)
    seen: Dict[Tuple, Tuple] = {sim.state_key(): sim.snapshot()}
    for event in range(max_states):
        if deadline is not None:
            progress["events"] = event
            progress["states_seen"] = len(seen)
            deadline.check()
        if sim.is_deadlocked:
            raise DeadlockError(
                f"self-timed execution of {graph.name!r} deadlocked at "
                f"time {Fraction(sim.now, sim.scale)}"
            )
        sim.step()
        key = sim.state_key()
        if key in seen:
            then, counts_then, starts_then = seen[key]
            if sim.now - then <= 0:
                raise ConvergenceError(
                    "state recurred without time progress; "
                    "zero-execution-time cycle suspected"
                )
            firings = {
                a: int(sim.firings[sim.actor_index[a]]) - counts_then[a]
                for a in graph.actor_names
            }
            return SimulatedThroughput(
                period=Fraction(sim.now - then, sim.scale),
                firings_per_period=firings,
                transient=Fraction(then, sim.scale),
                start_window=(
                    (starts_then, dict(sim.start_counts))
                    if witness else None
                ),
                bindings=sim.bindings,
            )
        seen[key] = sim.snapshot()
    raise ConvergenceError(
        f"no recurrent state within {max_states} events; state space too "
        "large or token build-up unbounded (graph not strongly connected?)"
    )
