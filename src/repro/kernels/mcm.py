"""Vectorized maximum cycle mean / ratio with exact certification.

Two kernels mirror the reference solvers in :mod:`repro.mcm`:

* :func:`karp_mcm_numpy` — Karp's algorithm with the per-level Bellman
  relaxation vectorized over a CSR :class:`ArrayGraph`
  (``np.maximum.reduceat`` over incoming-edge segments);
* :func:`howard_mcr_numpy` — Howard's policy iteration with the two
  improvement stages vectorized over outgoing-edge segments.

Both follow the same *search-then-certify* discipline:

1. **Search** in float64.  :class:`ArrayGraph` scales weights to
   integers and guards their magnitude, so every dynamic-programming
   sum is an exactly representable float; only the final per-candidate
   division rounds.
2. **Re-derive exactly.**  The candidate critical cycle is a list of
   original :class:`~repro.mcm.graphlib.RatioEdge` objects; its ratio
   is recomputed with Fractions (:func:`~repro.mcm.graphlib.
   cycle_ratio`), then smoke-checked against the float candidate
   (:func:`~repro.kernels.backend.check_candidate`).
3. **Certify optimality** with exact integer arithmetic
   (:func:`certify_maximum_ratio`): for the candidate ratio λ = P/Q in
   scaled-weight space, the reduced weight of edge ``e`` is
   ``r_e = Q·W_e − P·t_e``.  A cycle with ratio above λ exists iff the
   reduced graph has a positive-weight cycle, iff max-weight Bellman
   relaxation from the all-zeros potential fails to stabilize within
   ``n`` rounds.  The sweep runs in int64 after an exact Python-int
   bound check against :data:`~repro.kernels.backend.MAX_INT64_SUM`.

Any guard trip raises :class:`~repro.kernels.backend.
NumericalGuardError`; callers fall back to the exact kernel.  A result
that *is* returned is a fully checked
:class:`~repro.mcm.graphlib.CycleRatioResult`, bit-identical in value
to the reference solvers (the witness cycle may be a different —
equally critical — cycle; the differential oracle verifies both).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional

from repro.kernels.arraygraph import ArrayGraph
from repro.kernels.backend import (
    MAX_INT64_SUM,
    NumericalGuardError,
    check_candidate,
    require_numpy,
)
from repro.mcm.graphlib import (
    CycleRatioResult,
    RatioEdge,
    RatioGraph,
    ZeroTransitCycleError,
    cycle_ratio,
)

__all__ = ["certify_maximum_ratio", "howard_mcr_numpy", "karp_mcm_numpy"]


def _segment_max(np, values, order, indptr):
    """Per-node max over CSR edge segments (segments are non-empty)."""
    return np.maximum.reduceat(values[order], indptr[:-1])


def _segment_argmax(np, values, order, indptr, segment_max, edge_count):
    """Smallest edge index achieving each segment's max (deterministic)."""
    ordered = values[order]
    targets = np.repeat(
        np.arange(indptr.size - 1, dtype=np.int64), np.diff(indptr))
    is_max = ordered == segment_max[targets]
    candidates = np.where(is_max, order, edge_count)
    return np.minimum.reduceat(candidates, indptr[:-1])


def certify_maximum_ratio(array_graph: ArrayGraph, value: Fraction,
                          deadline=None) -> None:
    """Prove no cycle of ``array_graph`` has ratio above ``value``.

    Exact int64 Bellman sweep over reduced weights (see module
    docstring).  Raises :class:`NumericalGuardError` if the reduced
    weights risk int64 overflow or if a better cycle exists (the float
    search picked a sub-optimal candidate).
    """
    np = require_numpy()
    scaled = value * array_graph.scale
    p, q = scaled.numerator, scaled.denominator
    reduced = [
        q * w - p * int(t)
        for w, t in zip(array_graph.weight_ints, array_graph.transits)
    ]
    n = array_graph.node_count
    largest = max(abs(r) for r in reduced)
    if (n + 1) * largest >= MAX_INT64_SUM:
        raise NumericalGuardError(
            f"reduced weights too large for int64 certification: "
            f"({n} + 1) * {largest} >= 2**62"
        )
    weights = np.array(reduced, dtype=np.int64)
    src = array_graph.src
    order = array_graph.in_order
    indptr = array_graph.in_indptr
    potential = np.zeros(n, dtype=np.int64)
    for _ in range(n):
        if deadline is not None:
            deadline.check_now()
        relaxed = _segment_max(np, potential[src] + weights, order, indptr)
        updated = np.maximum(potential, relaxed)
        if (updated == potential).all():
            return
        potential = updated
    raise NumericalGuardError(
        f"certification failed: a cycle with ratio above {value} exists "
        f"(float search returned a sub-optimal candidate)"
    )


# ---------------------------------------------------------------------------
# Karp
# ---------------------------------------------------------------------------


def karp_mcm_numpy(graph: RatioGraph, deadline=None) -> CycleRatioResult:
    """Vectorized Karp maximum cycle mean (unit transits required).

    Drop-in for :func:`repro.mcm.karp.karp_mcm`: same validation, same
    exact Fraction result, acyclic graphs yield ``CycleRatioResult(None)``.
    """
    require_numpy()
    for edge in graph.edges:
        if edge.transit != 1:
            raise ValueError(
                f"karp_mcm requires unit transits; edge "
                f"{edge.source!r}->{edge.target!r} has transit {edge.transit}"
            )
    progress = None
    if deadline is not None:
        progress = deadline.checkpoint(
            "karp-mcm", {"scc": 0, "level": 0, "levels": 0})
    best: Optional[Fraction] = None
    best_cycle: Optional[List[RatioEdge]] = None
    for count, scc in enumerate(graph.nontrivial_sccs()):
        if progress is not None:
            progress["scc"] = count
        value, cycle = _karp_scc(scc, deadline, progress)
        if best is None or value > best:
            best, best_cycle = value, cycle
    if best is None:
        return CycleRatioResult(None)
    result = CycleRatioResult(best, best_cycle)
    result.check()
    return result


def _karp_scc(scc: RatioGraph, deadline, progress):
    np = require_numpy()
    array_graph = ArrayGraph.from_ratio_graph(scc)
    n = array_graph.node_count
    m = array_graph.edge_count
    src = array_graph.src
    weights = array_graph.weights
    order = array_graph.in_order
    indptr = array_graph.in_indptr
    neg_inf = float("-inf")

    # Level-k best walk weights from the source (node index 0, the
    # first node in insertion order — same source the exact kernel
    # picks) and the parent edge realising each of them.
    levels = np.full((n + 1, n), neg_inf, dtype=np.float64)
    levels[0, 0] = 0.0
    parents = np.full((n + 1, n), -1, dtype=np.int64)
    if progress is not None:
        progress["levels"] = n
    for k in range(1, n + 1):
        if progress is not None:
            progress["level"] = k
        if deadline is not None:
            deadline.check()
        candidates = levels[k - 1, src] + weights
        segment = _segment_max(np, candidates, order, indptr)
        levels[k] = segment
        reachable = segment > neg_inf
        picks = _segment_argmax(np, candidates, order, indptr, segment, m)
        parents[k, reachable] = picks[reachable]

    final = levels[n]
    reachable = final > neg_inf
    if not reachable.any():
        raise AssertionError(
            "no node reachable by n-edge walks in a nontrivial SCC")
    # means[k, v] = (D_n(v) - D_k(v)) / (n - k); unreachable D_k
    # entries must not win the min, unreachable finals must not win the
    # argmax.
    with np.errstate(invalid="ignore"):
        numerators = final[None, :] - levels[:n, :]
    numerators[np.isneginf(levels[:n, :])] = np.inf
    numerators[:, ~reachable] = np.inf
    denominators = (n - np.arange(n, dtype=np.int64))[:, None]
    means = numerators / denominators
    node_values = means.min(axis=0)
    node_values[~reachable] = neg_inf
    node_values[np.isposinf(node_values)] = neg_inf
    candidate_node = int(node_values.argmax())
    candidate_value = float(node_values[candidate_node])

    cycle = _extract_cycle(array_graph, parents, candidate_node, n)
    value = cycle_ratio(cycle)
    # The DP ran in scaled-weight space; unscale the candidate before
    # comparing with the exact ratio of the extracted cycle.
    check_candidate(candidate_value / array_graph.scale, value,
                    what="karp cycle mean")
    certify_maximum_ratio(array_graph, value, deadline)
    return value, cycle


def _extract_cycle(array_graph: ArrayGraph, parents, node: int,
                   n: int) -> List[RatioEdge]:
    """Walk the n-edge parent path backwards; return the first cycle.

    Mirrors the reference extraction: the walk from level ``n`` down to
    level 0 visits ``n + 1`` nodes of an ``n``-node graph, so some node
    repeats and the edges between its two occurrences form a cycle on
    the critical walk.
    """
    walk_nodes: List[int] = []
    walk_edges: List[RatioEdge] = []
    current = node
    for k in range(n, 0, -1):
        walk_nodes.append(current)
        edge_index = int(parents[k, current])
        assert edge_index >= 0, "critical walk broke below a reachable node"
        walk_edges.append(array_graph.edges[edge_index])
        current = int(array_graph.src[edge_index])
    walk_nodes.append(current)
    walk_nodes.reverse()
    walk_edges.reverse()

    first_seen = {}
    for index, visited in enumerate(walk_nodes):
        if visited in first_seen:
            return walk_edges[first_seen[visited]:index]
        first_seen[visited] = index
    raise AssertionError("no repeated node on an n-edge walk")


# ---------------------------------------------------------------------------
# Howard
# ---------------------------------------------------------------------------


def howard_mcr_numpy(graph: RatioGraph, max_iterations: Optional[int] = None,
                     deadline=None) -> CycleRatioResult:
    """Array-based Howard maximum cycle ratio.

    Drop-in for :func:`repro.mcm.howard.howard_mcr`: rejects token-free
    cycles up front with :class:`ZeroTransitCycleError`, returns the
    exact maximum cycle ratio over all nontrivial SCCs.  The float
    policy iteration is only a search heuristic — the returned value is
    re-derived exactly and certified, with :class:`NumericalGuardError`
    on any doubt.
    """
    require_numpy()
    zero_cycle = graph.find_zero_transit_cycle()
    if zero_cycle is not None:
        raise ZeroTransitCycleError(zero_cycle)
    progress = None
    if deadline is not None:
        progress = deadline.checkpoint("howard-mcr", {"scc": 0, "round": 0})
    best: Optional[Fraction] = None
    best_cycle: Optional[List[RatioEdge]] = None
    for count, scc in enumerate(graph.nontrivial_sccs()):
        if progress is not None:
            progress["scc"] = count
        value, cycle = _howard_scc(scc, max_iterations, deadline, progress)
        if best is None or value > best:
            best, best_cycle = value, cycle
    if best is None:
        return CycleRatioResult(None)
    result = CycleRatioResult(best, best_cycle)
    result.check()
    return result


def _howard_scc(scc: RatioGraph, max_iterations, deadline, progress):
    np = require_numpy()
    array_graph = ArrayGraph.from_ratio_graph(scc)
    n = array_graph.node_count
    m = array_graph.edge_count
    if max_iterations is None:
        max_iterations = 20 * (n + m) + 100
    float_weights = array_graph.weights / float(array_graph.scale)
    float_transits = array_graph.transits.astype(np.float64)
    src = array_graph.src
    dst = array_graph.dst
    order = array_graph.out_order
    indptr = array_graph.out_indptr
    # Comparison slack for the float improvement stages: switching on
    # rounding noise would oscillate forever, so improvements must beat
    # the incumbent by a margin; a missed marginal improvement at worst
    # yields a sub-optimal candidate, which certification rejects.
    slack = 2.0 ** -30 * max(1.0, float(np.abs(float_weights).max()))

    # Initial policy: heaviest outgoing edge, ties toward fewer
    # transits (the reference kernel's criterion).  The transit
    # perturbation stays below half the minimal weight spacing
    # (weights are multiples of 1/scale), so it only breaks ties; any
    # float blur here merely changes the starting policy, which Howard
    # converges from regardless.
    key = float_weights - float_transits / (
        2.0 * float(array_graph.transits.max() + 1)
        * float(array_graph.scale))
    segment = _segment_max(np, key, order, indptr)
    policy = _segment_argmax(np, key, order, indptr, segment, m)

    for round_count in range(max_iterations):
        if progress is not None:
            progress["round"] = round_count
        if deadline is not None:
            deadline.check_now()
        value, distance = _evaluate_policy_numpy(
            np, array_graph, policy, float_weights, float_transits)

        # Stage 1: adopt edges reaching strictly better cycle values.
        stage1 = value[dst]
        best1 = _segment_max(np, stage1, order, indptr)
        improves1 = best1 > value + slack
        if improves1.any():
            picks = _segment_argmax(np, stage1, order, indptr, best1, m)
            policy = np.where(improves1, picks, policy)
            continue

        # Stage 2: among value-preserving edges, improve distances.
        lam_src = value[src]
        preserves = np.abs(value[dst] - lam_src) <= slack
        stage2 = np.where(
            preserves,
            float_weights - lam_src * float_transits + distance[dst],
            float("-inf"),
        )
        best2 = _segment_max(np, stage2, order, indptr)
        improves2 = best2 > distance + slack
        if improves2.any():
            picks = _segment_argmax(np, stage2, order, indptr, best2, m)
            policy = np.where(improves2, picks, policy)
            continue

        # Fixpoint: extract the best policy cycle and certify it.
        best_node = int(value.argmax())
        cycle = _policy_cycle(array_graph, policy, best_node)
        exact_value = cycle_ratio(cycle)
        check_candidate(
            float(value[best_node]), exact_value, what="howard cycle ratio")
        certify_maximum_ratio(array_graph, exact_value, deadline)
        return exact_value, cycle
    raise NumericalGuardError(
        f"howard policy iteration did not converge within "
        f"{max_iterations} rounds"
    )


def _evaluate_policy_numpy(np, array_graph: ArrayGraph, policy,
                           float_weights, float_transits):
    """Float value/distance of the 1-out functional graph ``policy``.

    Same walk-based evaluation as the reference kernel (each node
    follows its policy edge into a cycle; the cycle fixes λ and a
    zero-distance handle, tree prefixes accumulate reduced weights),
    but over index arrays with float arithmetic.
    """
    n = array_graph.node_count
    successor = array_graph.dst[policy]
    value = np.empty(n, dtype=np.float64)
    distance = np.empty(n, dtype=np.float64)
    state = np.zeros(n, dtype=np.int8)  # 0 unvisited / 1 on walk / 2 done
    for start in range(n):
        if state[start]:
            continue
        walk = []
        node = start
        while state[node] == 0:
            state[node] = 1
            walk.append(node)
            node = int(successor[node])
        if state[node] == 1:
            # Closed a new cycle: exact λ from the cycle edges, handle
            # at the minimum node index (insertion order, matching the
            # reference kernel's deterministic handle).
            cycle_start = walk.index(node)
            cycle_nodes = walk[cycle_start:]
            cycle_edges = [int(policy[v]) for v in cycle_nodes]
            total_weight = sum(
                array_graph.weight_ints[e] for e in cycle_edges)
            total_transit = int(
                sum(int(array_graph.transits[e]) for e in cycle_edges))
            if total_transit == 0:
                raise ZeroTransitCycleError(
                    [array_graph.nodes[v] for v in cycle_nodes])
            lam = (total_weight / float(array_graph.scale)) / total_transit
            handle = min(cycle_nodes)
            value[cycle_nodes] = lam
            distance[handle] = 0.0
            position = cycle_nodes.index(handle)
            ordered = cycle_nodes[position:] + cycle_nodes[:position]
            for v in reversed(ordered[1:]):
                e = int(policy[v])
                distance[v] = (
                    float_weights[e] - lam * float_transits[e]
                    + distance[int(successor[v])]
                )
            for v in cycle_nodes:
                state[v] = 2
        # Resolve the tree prefix against the (now solved) suffix.
        for v in reversed(walk):
            if state[v] == 2:
                continue
            e = int(policy[v])
            nxt = int(successor[v])
            value[v] = value[nxt]
            distance[v] = (
                float_weights[e] - value[v] * float_transits[e]
                + distance[nxt]
            )
            state[v] = 2
    return value, distance


def _policy_cycle(array_graph: ArrayGraph, policy,
                  start: int) -> List[RatioEdge]:
    """The policy cycle reached from ``start`` (original edges)."""
    seen = {}
    node = start
    walk = []
    while node not in seen:
        seen[node] = len(walk)
        walk.append(int(policy[node]))
        node = int(array_graph.dst[policy[node]])
    return [array_graph.edges[e] for e in walk[seen[node]:]]
