"""Unified observability for the analysis pipeline.

The paper's whole argument is about *cost* — the classical SDF→HSDF
expansion explodes while abstraction (Theorem 1) and the symbolic
conversion (Algorithm 1) trade precision or structure for tractability —
so this package makes cost a first-class observable signal instead of an
offline-benchmark claim.  Three coordinated, zero-dependency pieces:

:mod:`repro.obs.trace`
    Structured tracing: a context-var-based :class:`~repro.obs.trace.
    Tracer` producing nested spans, piggybacking on the existing
    :meth:`repro.analysis.deadline.Deadline.checkpoint` calls already
    threaded through every hot loop so spans carry live progress
    counters.  Exports JSONL and Chrome ``trace_event`` JSON (loadable
    in ``chrome://tracing`` / Perfetto).  Off by default, with
    near-zero disabled overhead (``benchmarks/bench_obs.py``).

:mod:`repro.obs.metrics`
    A metrics registry — counters, gauges, fixed-bucket histograms —
    unifying the previously siloed stats (cache hit/miss/eviction,
    batch retry/quarantine/resume counts, fallback-tier outcomes, lint
    rule fires) behind one :class:`~repro.obs.metrics.MetricsRegistry`
    with Prometheus-text and JSON exporters and cross-process merging.

:mod:`repro.obs.profile`
    Profiling hooks: per-stage wall/CPU time and peak-memory
    attribution (``tracemalloc``/``resource``), surfaced by the
    ``repro profile`` CLI subcommand as a stage-cost table that
    visualises the paper's Section 6 cost comparison directly.

:mod:`repro.obs.provenance`
    The analysis flight recorder: every result carries a
    ``repro-provenance-v1`` certificate — the ordered reduction steps
    applied, the algorithm and fallback tier that produced the number,
    and a critical-cycle witness re-checkable in O(|cycle|) with
    :func:`~repro.obs.provenance.verify_witness`.

:mod:`repro.obs.report`
    Renders a provenance record as the ``repro explain`` terminal
    report or a self-contained HTML page with the critical cycle
    highlighted on the DOT rendering.

:mod:`repro.obs.analyze`
    The consumption side of tracing: span-tree reconstruction from
    either export format, per-stage self-time attribution, critical
    paths, cross-run percentile tables and collapsed-stack flamegraphs
    (``repro obs analyze`` / ``repro obs flame``).

:mod:`repro.obs.diff`
    Structural A/B diff of two trace summaries or metrics snapshots
    with noise-floored relative deltas (``repro obs diff``).

:mod:`repro.obs.regress`
    The performance-regression sentinel over
    ``benchmarks/results/history.jsonl``: robust per-(suite, entry)
    baselines and ``ok|regressed|improved|noisy|insufficient-data``
    verdicts (``repro obs regress``, exit 5 on regression).

Quickstart::

    from repro.obs import Tracer, span

    tracer = Tracer()
    with tracer:                      # installs the tracer globally
        with span("analysis", graph="g"):
            ...                       # nested span() calls, checkpoints
    tracer.write_chrome_trace("trace.json")
"""

from repro.obs.trace import (
    Span,
    Tracer,
    add_event,
    current_span,
    current_tracer,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.profile import ProfileReport, StageCost, profile_graph
from repro.obs.provenance import (
    CycleWitness,
    FlightRecorder,
    ProvenanceRecord,
    ReductionStep,
    WitnessArc,
    WitnessError,
    record_step,
    recording,
    verify_witness,
)
from repro.obs.report import render_html, render_text, witness_highlights
from repro.obs.analyze import collapsed_stacks, summarize_files, summarize_traces
from repro.obs.diff import diff_documents, diff_files
from repro.obs.regress import evaluate_history

__all__ = [
    "Counter",
    "CycleWitness",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileReport",
    "ProvenanceRecord",
    "ReductionStep",
    "Span",
    "StageCost",
    "Tracer",
    "WitnessArc",
    "WitnessError",
    "add_event",
    "collapsed_stacks",
    "current_span",
    "current_tracer",
    "default_registry",
    "diff_documents",
    "diff_files",
    "evaluate_history",
    "profile_graph",
    "record_step",
    "recording",
    "render_html",
    "render_text",
    "set_default_registry",
    "span",
    "summarize_files",
    "summarize_traces",
    "verify_witness",
    "witness_highlights",
]
