"""Unified observability for the analysis pipeline.

The paper's whole argument is about *cost* — the classical SDF→HSDF
expansion explodes while abstraction (Theorem 1) and the symbolic
conversion (Algorithm 1) trade precision or structure for tractability —
so this package makes cost a first-class observable signal instead of an
offline-benchmark claim.  Three coordinated, zero-dependency pieces:

:mod:`repro.obs.trace`
    Structured tracing: a context-var-based :class:`~repro.obs.trace.
    Tracer` producing nested spans, piggybacking on the existing
    :meth:`repro.analysis.deadline.Deadline.checkpoint` calls already
    threaded through every hot loop so spans carry live progress
    counters.  Exports JSONL and Chrome ``trace_event`` JSON (loadable
    in ``chrome://tracing`` / Perfetto).  Off by default, with
    near-zero disabled overhead (``benchmarks/bench_obs.py``).

:mod:`repro.obs.metrics`
    A metrics registry — counters, gauges, fixed-bucket histograms —
    unifying the previously siloed stats (cache hit/miss/eviction,
    batch retry/quarantine/resume counts, fallback-tier outcomes, lint
    rule fires) behind one :class:`~repro.obs.metrics.MetricsRegistry`
    with Prometheus-text and JSON exporters and cross-process merging.

:mod:`repro.obs.profile`
    Profiling hooks: per-stage wall/CPU time and peak-memory
    attribution (``tracemalloc``/``resource``), surfaced by the
    ``repro profile`` CLI subcommand as a stage-cost table that
    visualises the paper's Section 6 cost comparison directly.

Quickstart::

    from repro.obs import Tracer, span

    tracer = Tracer()
    with tracer:                      # installs the tracer globally
        with span("analysis", graph="g"):
            ...                       # nested span() calls, checkpoints
    tracer.write_chrome_trace("trace.json")
"""

from repro.obs.trace import (
    Span,
    Tracer,
    add_event,
    current_span,
    current_tracer,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.profile import ProfileReport, StageCost, profile_graph

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProfileReport",
    "Span",
    "StageCost",
    "Tracer",
    "add_event",
    "current_span",
    "current_tracer",
    "default_registry",
    "profile_graph",
    "set_default_registry",
    "span",
]
