"""Provenance certificates for analysis results (``repro-provenance-v1``).

A throughput number with no account of *how* it was produced cannot be
audited, cached with confidence, or shipped across a service boundary.
This module gives every analysis result a **provenance record**: the
ordered reduction steps that transformed the graph (with before/after
content fingerprints and size deltas), the algorithm that produced the
number, the fallback tier it came from, and — the core artefact — a
**critical-cycle witness** that re-derives the reported cycle mean in
O(|cycle|), independent of the analysis that found it.

The paper's central claim is that its reductions preserve the worst-case
cycle; the witness certifies that per result, not just property-tested
in CI.  Witnesses come in three spaces:

``token``
    Arcs between *initial tokens* of the analysed graph (the max-plus
    precedence graph of the iteration matrix): arc ``t_j → t_k`` with
    weight ``g_{j,k}`` (the paper's minimal-distance coefficient) and
    one iteration crossing per arc.  Extracted from Karp's critical
    cycle (:mod:`repro.mcm.karp` via :mod:`repro.maxplus.spectral`).

``actor``
    Arcs between *actors* of the analysed graph (firing dependencies):
    weight is the source actor's execution time, ``tokens`` counts the
    iteration boundaries the dependency crosses.  Extracted from
    Howard's critical cycle on the traditional HSDF expansion (mapped
    back through the firing → actor inverse mapping) or from the
    periodic-phase back-pointers of the self-timed simulation.

``abstract``
    Arcs on the *abstract* graph of a Theorem-1 conservative bound;
    each abstract actor is annotated with the original actors it
    represents.  The witness certifies the abstract cycle time λ′; the
    record additionally carries ``bound = N · λ′``.

:func:`verify_witness` re-checks a witness against the original graph:
arcs must form a closed cycle over entities that exist in the graph,
weights must match what the graph declares where the space allows it,
and the cycle mean Σweight/Σtokens must equal the reported cycle time —
all in O(|cycle|) work.

The **flight recorder** (:func:`recording` / :func:`record_step`) is how
reduction passes report themselves: each instrumented transformation
(grouping discovery, Definition-4 abstraction, redundant-edge pruning,
N-fold unfolding, the compact Algorithm-1 conversion and the traditional
expansion) appends a :class:`ReductionStep` to every recorder open on
the current thread.  Recording is off by default and costs one
thread-local read per instrumented call when disabled.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ValidationError

__all__ = [
    "PROVENANCE_SCHEMA",
    "CycleWitness",
    "FlightRecorder",
    "ProvenanceRecord",
    "ReductionStep",
    "WitnessArc",
    "WitnessError",
    "record_step",
    "recording",
    "verify_witness",
    "witness_from_ratio_cycle",
]

PROVENANCE_SCHEMA = "repro-provenance-v1"

#: Witness spaces and what their arcs mean (see module docstring).
WITNESS_SPACES = ("token", "actor", "abstract")


class WitnessError(ValueError):
    """A witness fails its O(|cycle|) re-check against the graph."""


# ----------------------------------------------------------------------
# data model
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class WitnessArc:
    """One arc of a critical-cycle witness.

    ``weight`` is exact (a :class:`fractions.Fraction`); ``tokens`` is
    the arc's transit — iteration crossings for actor-space arcs, 1 for
    token-space arcs.  ``key`` names the original channel carrying the
    dependency when the extractor knows it, else ``None``.
    """

    source: str
    target: str
    weight: Fraction
    tokens: int
    key: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "weight": str(self.weight),
            "tokens": self.tokens,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WitnessArc":
        return cls(
            source=data["source"],
            target=data["target"],
            weight=Fraction(data["weight"]),
            tokens=int(data["tokens"]),
            key=data.get("key"),
        )


@dataclass
class CycleWitness:
    """A critical cycle as an independently checkable edge list.

    ``space`` fixes the vocabulary of the arcs (see module docstring);
    ``source`` names the extractor that produced it (``karp``,
    ``howard``, ``simulation-backpointers``); ``groups`` maps abstract
    actors to their original members for ``space == "abstract"``.
    """

    space: str
    arcs: List[WitnessArc]
    source: str = "karp"
    #: Abstract actor -> original members (abstract-space witnesses).
    groups: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def cycle_mean(self) -> Fraction:
        """Σweight / Σtokens of the arcs — the re-derived cycle time."""
        total_tokens = sum(arc.tokens for arc in self.arcs)
        if total_tokens <= 0:
            raise WitnessError(
                f"witness transit sum must be positive, got {total_tokens}"
            )
        return Fraction(sum(arc.weight for arc in self.arcs), total_tokens)

    def check_closed(self) -> None:
        """Arcs must chain target→source and close back on the start."""
        if not self.arcs:
            raise WitnessError("witness has no arcs")
        for here, nxt in zip(self.arcs, self.arcs[1:] + self.arcs[:1]):
            if here.target != nxt.source:
                raise WitnessError(
                    f"witness arcs do not chain: {here.source}->{here.target} "
                    f"followed by {nxt.source}->{nxt.target}"
                )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "space": self.space,
            "source": self.source,
            "arcs": [arc.as_dict() for arc in self.arcs],
            "groups": {k: list(v) for k, v in self.groups.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CycleWitness":
        return cls(
            space=data["space"],
            arcs=[WitnessArc.from_dict(a) for a in data["arcs"]],
            source=data.get("source", "karp"),
            groups={k: list(v) for k, v in data.get("groups", {}).items()},
        )


@dataclass
class ReductionStep:
    """One reduction the pipeline applied, with size evidence.

    ``kind`` is the transformation's name (``grouping-discovery``,
    ``abstraction``, ``pruning``, ``unfolding``, ``compact-hsdf-
    conversion``, ``traditional-hsdf-expansion``, ``symbolic-
    conversion``); fingerprints are content hashes of the graphs before
    and after (``None`` when a side is not a graph, e.g. a matrix).
    """

    kind: str
    before_fingerprint: Optional[str] = None
    after_fingerprint: Optional[str] = None
    before_size: Dict[str, int] = field(default_factory=dict)
    after_size: Dict[str, int] = field(default_factory=dict)
    detail: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "before_fingerprint": self.before_fingerprint,
            "after_fingerprint": self.after_fingerprint,
            "before_size": dict(self.before_size),
            "after_size": dict(self.after_size),
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ReductionStep":
        return cls(
            kind=data["kind"],
            before_fingerprint=data.get("before_fingerprint"),
            after_fingerprint=data.get("after_fingerprint"),
            before_size=dict(data.get("before_size", {})),
            after_size=dict(data.get("after_size", {})),
            detail=dict(data.get("detail", {})),
        )


@dataclass
class TierAttempt:
    """One fallback-chain tier: what ran and how it ended."""

    tier: str
    status: str  # "ok" | "timeout" | "cancelled" | "error" | "skipped"
    reason: Optional[str] = None

    def as_dict(self) -> Dict[str, Any]:
        return {"tier": self.tier, "status": self.status, "reason": self.reason}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TierAttempt":
        return cls(tier=data["tier"], status=data["status"],
                   reason=data.get("reason"))


@dataclass
class ProvenanceRecord:
    """The full account of how one analysis result was produced."""

    graph: str
    fingerprint: str
    algorithm: str  # karp | howard | simulation | symbolic | ...
    method: str  # symbolic | simulation | hsdf | abstraction
    status: str = "exact"  # exact | conservative-bound | timed-out
    cycle_time: Optional[Fraction] = None
    steps: List[ReductionStep] = field(default_factory=list)
    witness: Optional[CycleWitness] = None
    #: Why no witness could be extracted, when ``witness`` is None.
    witness_unavailable: Optional[str] = None
    #: Fallback-tier history (policy runs only; empty for direct calls).
    tiers: List[TierAttempt] = field(default_factory=list)
    #: Why the policy degraded below its first tier, when it did.
    degradation_reason: Optional[str] = None
    #: Theorem-1 ingredients (conservative-bound records only).
    bound_phase_count: Optional[int] = None
    bound_abstract_cycle_time: Optional[Fraction] = None
    #: Computational backend that produced the number ("numpy" or
    #: "exact"; ``None`` for records predating the kernel layer).  Both
    #: backends are bit-identical, so this is pure observability — it
    #: never enters cache keys or witness verification.
    kernel: Optional[str] = None

    @property
    def exact(self) -> bool:
        return self.status == "exact"

    def skipped_tiers(self) -> List[str]:
        return [t.tier for t in self.tiers if t.status == "skipped"]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": PROVENANCE_SCHEMA,
            "graph": self.graph,
            "fingerprint": self.fingerprint,
            "algorithm": self.algorithm,
            "method": self.method,
            "status": self.status,
            "cycle_time": None if self.cycle_time is None else str(self.cycle_time),
            "steps": [step.as_dict() for step in self.steps],
            "witness": None if self.witness is None else self.witness.as_dict(),
            "witness_unavailable": self.witness_unavailable,
            "tiers": [tier.as_dict() for tier in self.tiers],
            "degradation_reason": self.degradation_reason,
            "bound_phase_count": self.bound_phase_count,
            "bound_abstract_cycle_time": (
                None
                if self.bound_abstract_cycle_time is None
                else str(self.bound_abstract_cycle_time)
            ),
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProvenanceRecord":
        if data.get("schema") != PROVENANCE_SCHEMA:
            raise WitnessError(
                f"not a {PROVENANCE_SCHEMA} record: schema={data.get('schema')!r}"
            )
        return cls(
            graph=data["graph"],
            fingerprint=data["fingerprint"],
            algorithm=data["algorithm"],
            method=data["method"],
            status=data.get("status", "exact"),
            cycle_time=(
                None if data.get("cycle_time") is None
                else Fraction(data["cycle_time"])
            ),
            steps=[ReductionStep.from_dict(s) for s in data.get("steps", [])],
            witness=(
                None if data.get("witness") is None
                else CycleWitness.from_dict(data["witness"])
            ),
            witness_unavailable=data.get("witness_unavailable"),
            tiers=[TierAttempt.from_dict(t) for t in data.get("tiers", [])],
            degradation_reason=data.get("degradation_reason"),
            bound_phase_count=data.get("bound_phase_count"),
            bound_abstract_cycle_time=(
                None if data.get("bound_abstract_cycle_time") is None
                else Fraction(data["bound_abstract_cycle_time"])
            ),
            kernel=data.get("kernel"),
        )


# ----------------------------------------------------------------------
# the flight recorder
# ----------------------------------------------------------------------

class FlightRecorder:
    """Collects the reduction steps applied while it is open."""

    def __init__(self) -> None:
        self.steps: List[ReductionStep] = []

    def record(self, step: ReductionStep) -> None:
        self.steps.append(step)


_local = threading.local()


def _stack() -> List[FlightRecorder]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def current_recorder() -> Optional[FlightRecorder]:
    """The innermost open recorder of this thread, or ``None``."""
    stack = getattr(_local, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def recording() -> Iterator[FlightRecorder]:
    """Open a flight recorder on this thread.

    Recorders nest: a step is reported to *every* open recorder, so a
    policy-level recorder sees the steps of the nested analyses it
    drives while each nested analysis still gets its own complete view.
    """
    recorder = FlightRecorder()
    stack = _stack()
    stack.append(recorder)
    try:
        yield recorder
    finally:
        stack.remove(recorder)


def _graph_size(graph) -> Dict[str, int]:
    return {
        "actors": graph.actor_count(),
        "edges": graph.edge_count(),
        "tokens": graph.total_tokens(),
    }


def record_step(kind: str, before=None, after=None, **detail: Any) -> None:
    """Report one reduction step to every open recorder (no-op when none).

    ``before``/``after`` are :class:`~repro.sdf.graph.SDFGraph` objects
    when the step maps graph to graph; pass ``None`` for a side that is
    not a graph (the detail dict then carries its size evidence).
    """
    stack = getattr(_local, "stack", None)
    if not stack:
        return
    step = ReductionStep(
        kind=kind,
        before_fingerprint=None if before is None else before.fingerprint(),
        after_fingerprint=None if after is None else after.fingerprint(),
        before_size={} if before is None else _graph_size(before),
        after_size={} if after is None else _graph_size(after),
        detail=detail,
    )
    for recorder in stack:
        recorder.record(step)


# ----------------------------------------------------------------------
# witness construction
# ----------------------------------------------------------------------

def witness_from_ratio_cycle(
    cycle: Sequence,
    space: str,
    source: str,
    relabel=None,
    keys=None,
) -> CycleWitness:
    """Build a witness from a solver's critical cycle of ``RatioEdge``s.

    ``relabel`` maps solver node labels into the witness space (e.g.
    token index → token id, HSDF copy ``a#3`` → actor ``a``); ``keys``
    optionally maps each edge to the original channel name.
    """
    label = relabel if relabel is not None else (lambda node: str(node))
    arcs = []
    for edge in cycle:
        arcs.append(WitnessArc(
            source=label(edge.source),
            target=label(edge.target),
            weight=Fraction(edge.weight),
            tokens=int(edge.transit),
            key=None if keys is None else keys(edge),
        ))
    return CycleWitness(space=space, arcs=arcs, source=source)


# ----------------------------------------------------------------------
# the verifier
# ----------------------------------------------------------------------

def _parse_token_label(label: str) -> Tuple[str, int]:
    """Split ``"edge[pos]"`` into (edge name, position)."""
    if not label.endswith("]") or "[" not in label:
        raise WitnessError(f"malformed token label {label!r}")
    edge, _, position = label[:-1].rpartition("[")
    try:
        return edge, int(position)
    except ValueError:
        raise WitnessError(f"malformed token position in {label!r}") from None


def verify_witness(graph, witness, cycle_time=None) -> Fraction:
    """Re-derive the cycle mean from ``witness`` against ``graph``.

    Performs the O(|cycle|) certificate check:

    * the arcs form one closed cycle with positive total transit;
    * every arc references entities that exist in ``graph`` —
      token-space labels name channels with enough initial tokens,
      actor-space arcs name actors connected by an edge (the named
      channel when ``key`` is set) with the declared execution time;
    * the re-derived mean Σweight/Σtokens equals ``cycle_time`` when
      one is given.

    ``witness`` may be a :class:`CycleWitness`, a
    :class:`ProvenanceRecord` (its witness and cycle time are used), or
    a plain ``as_dict()`` form of either.  Returns the re-derived cycle
    mean; raises :class:`WitnessError` on any violation.
    """
    if isinstance(witness, dict):
        if witness.get("schema") == PROVENANCE_SCHEMA:
            witness = ProvenanceRecord.from_dict(witness)
        else:
            witness = CycleWitness.from_dict(witness)
    if isinstance(witness, ProvenanceRecord):
        record = witness
        if record.witness is None:
            raise WitnessError(
                "record carries no witness"
                + (f" ({record.witness_unavailable})"
                   if record.witness_unavailable else "")
            )
        if cycle_time is None:
            cycle_time = (
                record.bound_abstract_cycle_time
                if record.status == "conservative-bound"
                else record.cycle_time
            )
        witness = record.witness

    if witness.space not in WITNESS_SPACES:
        raise WitnessError(f"unknown witness space {witness.space!r}")
    witness.check_closed()
    for arc in witness.arcs:
        if arc.tokens < 0:
            raise WitnessError(
                f"arc {arc.source}->{arc.target} has negative transit "
                f"{arc.tokens}"
            )

    if graph is not None and witness.space == "token":
        for arc in witness.arcs:
            for label in (arc.source, arc.target):
                edge_name, position = _parse_token_label(label)
                try:
                    edge = graph.edge(edge_name)
                except ValidationError:
                    raise WitnessError(
                        f"witness names token {label!r} but the graph has "
                        f"no channel {edge_name!r}"
                    ) from None
                if position >= edge.tokens:
                    raise WitnessError(
                        f"witness names token {label!r} but channel "
                        f"{edge_name!r} holds only {edge.tokens} initial "
                        "token(s)"
                    )
    elif graph is not None and witness.space == "actor":
        for arc in witness.arcs:
            if not graph.has_actor(arc.source) or not graph.has_actor(arc.target):
                raise WitnessError(
                    f"witness arc {arc.source}->{arc.target} names actors "
                    "missing from the graph"
                )
            if Fraction(graph.execution_time(arc.source)) != arc.weight:
                raise WitnessError(
                    f"arc weight {arc.weight} != execution time "
                    f"{graph.execution_time(arc.source)} of {arc.source!r}"
                )
            if arc.key is not None:
                try:
                    edge = graph.edge(arc.key)
                except ValidationError:
                    raise WitnessError(
                        f"witness arc names channel {arc.key!r} missing "
                        "from the graph"
                    ) from None
                if edge.source != arc.source or edge.target != arc.target:
                    raise WitnessError(
                        f"channel {arc.key!r} connects "
                        f"{edge.source}->{edge.target}, not "
                        f"{arc.source}->{arc.target}"
                    )
            elif not any(
                e.target == arc.target for e in graph.out_edges(arc.source)
            ):
                raise WitnessError(
                    f"graph has no channel {arc.source}->{arc.target} to "
                    "carry the witnessed dependency"
                )
    # space == "abstract": the arcs live on the (discarded) abstract
    # graph; the certificate is closure + mean, and the group annotation
    # ties every abstract actor back to original actors.
    elif graph is not None and witness.space == "abstract" and witness.groups:
        for abstract_actor, members in witness.groups.items():
            for member in members:
                if not graph.has_actor(member):
                    raise WitnessError(
                        f"abstract actor {abstract_actor!r} claims member "
                        f"{member!r} missing from the original graph"
                    )

    mean = witness.cycle_mean
    if cycle_time is not None and mean != Fraction(cycle_time):
        raise WitnessError(
            f"witness re-derives cycle mean {mean}, result claims {cycle_time}"
        )
    return mean
