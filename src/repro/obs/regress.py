"""Performance-regression sentinel over the benchmark history journal.

``benchmarks/results/history.jsonl`` accumulates one stamped
``repro-bench-v1`` document per benchmark run.  This module reads that
trajectory and answers, per ``(suite, entry)``: *is the newest sample
consistent with its own past?*  The coarse per-suite assertion floors
catch 50x collapses; this sentinel is the fine-grained gate that
catches the 1.5x drift those floors let through.

The statistics are deliberately robust, not parametric:

* the baseline is the **median** of the last *K* *host-compatible*
  samples (same platform + interpreter — benchmark numbers are only
  comparable within a host, per ``bench_common.host_stamp``), and the
  spread is the **MAD** (median absolute deviation) — one wild outlier
  in the history cannot move either;
* the regression threshold is ``max(threshold·|median|,
  mad_mult·MAD)``: a relative band for stable series, widened to the
  series' own observed jitter for noisy ones;
* direction comes from the unit: speedups (``x``) and rates (``…/s``)
  are higher-is-better, everything else (``s``, ``ns``, ``ratio``,
  ``fraction``) is lower-is-better;
* an entry's *declared* ``baseline`` (the floor/budget its suite
  asserts) is always honored: violating it is a regression no matter
  what the rolling statistics say.

Verdicts: ``ok`` | ``regressed`` | ``improved`` | ``noisy`` (the
series' own spread exceeds the noise ceiling, so no drift call is
trustworthy) | ``insufficient-data`` (fewer than ``min_samples``
host-compatible priors).  The machine-readable form is
``repro-regress-v1`` (validated by
:func:`repro.obs.check.validate_regress`); ``repro obs regress`` exits
5 when any entry regresses, so CI can gate on it.
"""

from __future__ import annotations

import json
import pathlib
import statistics
from typing import Any, Dict, List, Optional, Sequence, Union

__all__ = [
    "REGRESS_SCHEMA",
    "evaluate_history",
    "higher_is_better",
    "load_history",
    "render_regress_text",
]

REGRESS_SCHEMA = "repro-regress-v1"

#: Rolling-window defaults; every knob is a CLI flag on ``repro obs regress``.
DEFAULT_WINDOW = 20
DEFAULT_MIN_SAMPLES = 3
DEFAULT_THRESHOLD = 0.25
DEFAULT_NOISE_REL = 0.20
DEFAULT_MAD_MULT = 4.0


def higher_is_better(unit: str) -> bool:
    """Direction of goodness, inferred from the entry's unit: speedup
    factors and rates go up, times/ratios/fractions go down."""
    return unit == "x" or unit.endswith("/s")


def load_history(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """The stamped bench documents of a history journal, file order.

    Blank lines are skipped; a torn/invalid line is an error (the
    journal is append-only JSON-per-line — a bad line means a bad
    write, and a sentinel fed garbage must say so, not guess)."""
    docs = []
    for lineno, line in enumerate(
        pathlib.Path(path).read_text().splitlines(), 1
    ):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}: line {lineno} is not valid JSON ({error})"
            ) from None
        if not isinstance(doc, dict) or "suite" not in doc:
            raise ValueError(f"{path}: line {lineno} is not a bench document")
        docs.append(doc)
    return docs


def _flatten(docs: Sequence[Dict[str, Any]]) -> Dict[tuple, List[Dict[str, Any]]]:
    """``(suite, entry-name) -> samples`` in journal order."""
    series: Dict[tuple, List[Dict[str, Any]]] = {}
    for doc in docs:
        host = doc.get("host") or {}
        for entry in doc.get("entries", ()):
            series.setdefault((doc["suite"], entry["name"]), []).append({
                "value": entry["value"],
                "unit": entry.get("unit", ""),
                "baseline": entry.get("baseline"),
                "platform": host.get("platform"),
                "python": host.get("python"),
                "git_sha": host.get("git_sha"),
                "written": doc.get("written"),
            })
    return series


def _mad(values: Sequence[float], median: float) -> float:
    return statistics.median(abs(v - median) for v in values)


def _judge(
    samples: List[Dict[str, Any]],
    *,
    window: int,
    min_samples: int,
    threshold: float,
    noise_rel: float,
    mad_mult: float,
) -> Dict[str, Any]:
    """Verdict for one series; the candidate is the newest sample."""
    candidate = samples[-1]
    value = candidate["value"]
    unit = candidate["unit"]
    up = higher_is_better(unit)
    result: Dict[str, Any] = {
        "unit": unit,
        "value": value,
        "declared_baseline": candidate["baseline"],
        "direction": "higher-is-better" if up else "lower-is-better",
        "git_sha": candidate["git_sha"],
    }

    # The declared floor/budget always wins: it is the contract the
    # suite itself asserts, independent of the rolling statistics.
    declared = candidate["baseline"]
    if declared is not None:
        violated = value < declared if up else value > declared
        if violated:
            result.update(
                verdict="regressed",
                reason=(
                    f"declared baseline violated: {value:g} {unit} is "
                    f"{'below floor' if up else 'above ceiling'} {declared:g}"
                ),
                samples=0,
            )
            return result

    priors = [
        s for s in samples[:-1]
        if s["platform"] == candidate["platform"]
        and s["python"] == candidate["python"]
    ][-window:]
    result["samples"] = len(priors)
    if len(priors) < min_samples:
        result.update(
            verdict="insufficient-data",
            reason=(
                f"{len(priors)} host-compatible prior(s), "
                f"need {min_samples}"
            ),
        )
        return result

    values = [s["value"] for s in priors]
    median = statistics.median(values)
    mad = _mad(values, median)
    delta = value - median
    result.update(
        median=median,
        mad=mad,
        delta=delta,
        relative=(delta / abs(median)) if median else None,
    )

    if median and mad / abs(median) > noise_rel:
        result.update(
            verdict="noisy",
            reason=(
                f"series spread MAD/|median| = {mad / abs(median):.0%} "
                f"exceeds noise ceiling {noise_rel:.0%}; no drift call "
                "is trustworthy"
            ),
        )
        return result

    scale = max(threshold * abs(median), mad_mult * mad)
    if abs(delta) > scale:
        worse = delta < 0 if up else delta > 0
        rel = f"{delta / abs(median):+.0%} vs median" if median \
            else f"{delta:+g} vs median 0"
        result.update(
            verdict="regressed" if worse else "improved",
            reason=(
                f"{rel} {median:g} {unit} over {len(priors)} sample(s) "
                f"(threshold ±{scale:g})"
            ),
        )
        return result

    result.update(verdict="ok", reason=None)
    return result


def evaluate_history(
    path: Union[str, pathlib.Path],
    *,
    window: int = DEFAULT_WINDOW,
    min_samples: int = DEFAULT_MIN_SAMPLES,
    threshold: float = DEFAULT_THRESHOLD,
    noise_rel: float = DEFAULT_NOISE_REL,
    mad_mult: float = DEFAULT_MAD_MULT,
) -> Dict[str, Any]:
    """The ``repro-regress-v1`` verdict document for a history journal.

    Deterministic for a given journal — no timestamps, no host probing
    — so the same history always yields the same document."""
    series = _flatten(load_history(path))
    results = []
    for (suite, name), samples in sorted(series.items()):
        judged = _judge(
            samples,
            window=window, min_samples=min_samples, threshold=threshold,
            noise_rel=noise_rel, mad_mult=mad_mult,
        )
        judged = {"suite": suite, "entry": name, **judged}
        results.append(judged)

    verdict_order = ("regressed", "noisy", "improved",
                     "insufficient-data", "ok")
    rank = {v: i for i, v in enumerate(verdict_order)}
    results.sort(key=lambda r: (rank[r["verdict"]], r["suite"], r["entry"]))
    counts = {v: sum(1 for r in results if r["verdict"] == v)
              for v in verdict_order}
    return {
        "schema": REGRESS_SCHEMA,
        "history": str(path),
        "params": {
            "window": window,
            "min_samples": min_samples,
            "threshold": threshold,
            "noise_rel": noise_rel,
            "mad_mult": mad_mult,
        },
        "entries": len(results),
        "counts": counts,
        "regressed": [
            f"{r['suite']}/{r['entry']}" for r in results
            if r["verdict"] == "regressed"
        ],
        "results": results,
    }


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------

_MARK = {
    "regressed": "REGRESSED",
    "improved": "improved",
    "noisy": "noisy",
    "insufficient-data": "insufficient-data",
    "ok": "ok",
}


def render_regress_text(report: Dict[str, Any],
                        verbose: bool = False) -> str:
    """The terminal report ``repro obs regress`` prints.  Quiet series
    (``ok``/``insufficient-data``) are summarised unless ``verbose``."""
    counts = report["counts"]
    lines = [
        f"regression sentinel over {report['history']}: "
        f"{report['entries']} series",
        f"  {counts['regressed']} regressed, {counts['improved']} improved, "
        f"{counts['noisy']} noisy, {counts['insufficient-data']} "
        f"insufficient-data, {counts['ok']} ok",
    ]
    for result in report["results"]:
        quiet = result["verdict"] in ("ok", "insufficient-data")
        if quiet and not verbose:
            continue
        lines.append("")
        lines.append(
            f"  [{_MARK[result['verdict']]}] "
            f"{result['suite']}/{result['entry']}: "
            f"{result['value']:g} {result['unit']} "
            f"({result['direction']}, {result['samples']} prior(s))"
        )
        if result.get("reason"):
            lines.append(f"    {result['reason']}")
    if not report["results"]:
        lines.append("  (empty history)")
    return "\n".join(lines)
