"""Schema checks for every observability artefact the pipeline emits.

Dependency-free validators (no jsonschema in this environment) for:

* Chrome ``trace_event`` JSON written by ``--trace`` /
  :meth:`repro.obs.trace.Tracer.write_chrome_trace`;
* the JSONL span export (:meth:`~repro.obs.trace.Tracer.write_jsonl`);
* the Prometheus text exposition written by ``--metrics``;
* the ``repro-metrics-v1`` JSON snapshot;
* the shared ``repro-bench-v1`` benchmark baseline schema used by every
  ``BENCH_*.json`` at the repository root (``name``/``unit``/``value``/
  ``baseline``/``meta`` entries, plus the optional ``host`` stamp);
* the ``repro-provenance-v1`` certificate written by ``repro explain
  --json`` (and embedded in batch journals and outcome dicts);
* the ``repro-profile-v1`` stage-cost table written by ``repro profile
  --format json``;
* the SARIF 2.1.0 logs written by ``repro lint`` and ``repro devlint``
  with ``--format sarif`` (what CI uploads to code scanning);
* the binary ``repro-store-v1`` record files of the durable result
  store (magic line, self-describing JSON header, SHA-256-checksummed
  payload — see :mod:`repro.analysis.store`), re-verified here
  *independently* of the store's own read path;
* the ``repro-store-verify-v1`` report written by ``repro cache verify
  --json`` and the ``repro-store-stats-v1`` census from ``repro cache
  stats --json``;
* the ``repro-trace-summary-v1`` analytics document from ``repro obs
  analyze`` (including its structural invariant: stage self-times
  partition the forest, so they sum to at most the root durations);
* the ``repro-trace-diff-v1`` A/B diff from ``repro obs diff``;
* the ``repro-regress-v1`` sentinel verdict from ``repro obs regress``;
* collapsed-stack flamegraph files from ``repro obs flame``
  (``a;b;c <int>`` lines);
* the benchmark history journal (``history.jsonl``), held to a
  *stricter* standard than a lone baseline file: every line needs a
  host stamp (trend tooling partitions on it) and, per suite, git_sha
  runs must be contiguous — the same commit reappearing after a
  different one means interleaved/rewritten history the sentinel
  cannot order.

Each ``validate_*`` function raises :class:`SchemaError` with a precise
location on the first violation and returns a small summary dict on
success.  CI runs these over the artefacts of the batch smoke via
``repro obs check`` (``python -m repro.obs.check`` is kept as an
alias)::

    python -m repro obs check trace.json metrics.prom BENCH_obs.json

File type is inferred from name/content; exit status is non-zero on the
first invalid artefact.
"""

from __future__ import annotations

import json
import pathlib
import re
import sys
from typing import Any, Dict, List, Union

__all__ = [
    "SchemaError",
    "validate_bench",
    "validate_chrome_trace",
    "validate_collapsed",
    "validate_history",
    "validate_metrics_snapshot",
    "validate_profile",
    "validate_prometheus_text",
    "validate_provenance",
    "validate_regress",
    "validate_sarif",
    "validate_span_jsonl",
    "validate_store_record",
    "validate_store_stats",
    "validate_store_verify",
    "validate_trace_diff",
    "validate_trace_summary",
]

BENCH_SCHEMA = "repro-bench-v1"
#: Kept in sync with repro.obs.provenance.PROVENANCE_SCHEMA (tested).
PROVENANCE_SCHEMA = "repro-provenance-v1"
PROFILE_SCHEMA = "repro-profile-v1"
#: Kept in sync with repro.analysis.store.STORE_SCHEMA (tested).
STORE_SCHEMA = "repro-store-v1"
STORE_VERIFY_SCHEMA = "repro-store-verify-v1"
STORE_STATS_SCHEMA = "repro-store-stats-v1"
#: Kept in sync with repro.obs.analyze.TRACE_SUMMARY_SCHEMA (tested).
TRACE_SUMMARY_SCHEMA = "repro-trace-summary-v1"
#: Kept in sync with repro.obs.diff.TRACE_DIFF_SCHEMA (tested).
TRACE_DIFF_SCHEMA = "repro-trace-diff-v1"
#: Kept in sync with repro.obs.regress.REGRESS_SCHEMA (tested).
REGRESS_SCHEMA = "repro-regress-v1"

_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_SAMPLE = re.compile(
    rf"^({_PROM_NAME})(\{{.*\}})? ([0-9eE+.\-]+|NaN|[+-]Inf)$"
)
_PROM_TYPE = re.compile(
    rf"^# TYPE ({_PROM_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_PROM_HELP = re.compile(rf"^# HELP ({_PROM_NAME}) .*$")


class SchemaError(ValueError):
    """An artefact violates its documented schema."""


def _need(condition: bool, where: str, message: str) -> None:
    if not condition:
        raise SchemaError(f"{where}: {message}")


# ----------------------------------------------------------------------
# traces
# ----------------------------------------------------------------------

_PHASES = {"X", "i", "M", "B", "E"}


def validate_chrome_trace(data: Any) -> Dict[str, int]:
    """Validate a Chrome ``trace_event`` object (the JSON Object Format:
    a dict with ``traceEvents``; a bare event array is also accepted)."""
    if isinstance(data, list):
        events = data
    else:
        _need(isinstance(data, dict), "trace", "must be an object or array")
        _need("traceEvents" in data, "trace", "missing 'traceEvents'")
        events = data["traceEvents"]
        _need(isinstance(events, list), "traceEvents", "must be an array")
    counts = {"X": 0, "i": 0, "M": 0}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        _need(isinstance(event, dict), where, "must be an object")
        _need(isinstance(event.get("name"), str), where, "needs a string 'name'")
        phase = event.get("ph")
        _need(phase in _PHASES, where, f"unknown phase {phase!r}")
        _need("pid" in event and "tid" in event, where, "needs pid and tid")
        if phase in ("X", "i"):
            _need(
                isinstance(event.get("ts"), (int, float)) and event["ts"] >= 0,
                where, "needs a non-negative numeric 'ts'",
            )
        if phase == "X":
            _need(
                isinstance(event.get("dur"), (int, float)) and event["dur"] >= 0,
                where, "needs a non-negative numeric 'dur'",
            )
        if phase in counts:
            counts[phase] += 1
    _need(counts["X"] > 0, "trace", "contains no complete ('X') span events")
    return {"events": len(events), **{f"phase_{k}": v for k, v in counts.items()}}


def validate_span_jsonl(text: str) -> Dict[str, int]:
    """Validate a JSONL span export: ids unique, parents resolvable,
    every closed child nested inside its parent's interval."""
    rows: List[Dict[str, Any]] = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaError(f"line {lineno}: not valid JSON ({error})") from None
        where = f"line {lineno}"
        for key in ("id", "name", "pid", "tid", "start", "args"):
            _need(key in row, where, f"missing {key!r}")
        _need(isinstance(row["args"], dict), where, "'args' must be an object")
        rows.append(row)
    by_id = {}
    for row in rows:
        _need(row["id"] not in by_id, f"span {row['id']}", "duplicate id")
        by_id[row["id"]] = row
    tolerance = 1e-9
    for row in rows:
        parent_id = row.get("parent")
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        _need(parent is not None, f"span {row['id']}",
              f"parent {parent_id} not in export")
        if row.get("end") is not None and parent.get("end") is not None:
            _need(
                parent["start"] - tolerance <= row["start"]
                and row["end"] <= parent["end"] + tolerance,
                f"span {row['id']}",
                f"interval [{row['start']}, {row['end']}] escapes parent "
                f"[{parent['start']}, {parent['end']}]",
            )
    return {"spans": len(rows),
            "roots": sum(1 for r in rows if r.get("parent") is None)}


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------

def validate_prometheus_text(text: str) -> Dict[str, int]:
    """Validate Prometheus text exposition: well-formed comment/sample
    lines, samples preceded by a TYPE, histogram series consistent."""
    typed: Dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            match = _PROM_TYPE.match(line)
            _need(match is not None, where, f"malformed TYPE line {line!r}")
            _need(match.group(1) not in typed, where,
                  f"duplicate TYPE for {match.group(1)!r}")
            typed[match.group(1)] = match.group(2)
            continue
        if line.startswith("# HELP "):
            _need(_PROM_HELP.match(line) is not None, where,
                  f"malformed HELP line {line!r}")
            continue
        if line.startswith("#"):
            continue
        match = _PROM_SAMPLE.match(line)
        _need(match is not None, where, f"malformed sample line {line!r}")
        name = match.group(1)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        _need(
            name in typed or base in typed,
            where, f"sample {name!r} has no preceding # TYPE",
        )
        samples += 1
    _need(samples > 0, "metrics", "no samples present")
    return {"families": len(typed), "samples": samples}


def validate_metrics_snapshot(data: Any) -> Dict[str, int]:
    """Validate a ``repro-metrics-v1`` JSON snapshot."""
    from repro.obs.metrics import SCHEMA

    _need(isinstance(data, dict), "snapshot", "must be an object")
    _need(data.get("schema") == SCHEMA, "snapshot",
          f"schema must be {SCHEMA!r}, got {data.get('schema')!r}")
    metrics = data.get("metrics")
    _need(isinstance(metrics, list), "snapshot", "'metrics' must be an array")
    samples = 0
    for index, entry in enumerate(metrics):
        where = f"metrics[{index}]"
        _need(isinstance(entry, dict), where, "must be an object")
        _need(isinstance(entry.get("name"), str), where, "needs a string name")
        _need(entry.get("type") in ("counter", "gauge", "histogram"),
              where, f"unknown type {entry.get('type')!r}")
        _need(isinstance(entry.get("samples"), list), where,
              "'samples' must be an array")
        for sindex, sample in enumerate(entry["samples"]):
            swhere = f"{where}.samples[{sindex}]"
            _need(isinstance(sample.get("labels"), dict), swhere,
                  "needs a labels object")
            if entry["type"] == "histogram":
                _need(isinstance(sample.get("buckets"), dict), swhere,
                      "histogram sample needs buckets")
                _need("count" in sample and "sum" in sample, swhere,
                      "histogram sample needs sum and count")
            else:
                _need(isinstance(sample.get("value"), (int, float)), swhere,
                      "needs a numeric value")
            samples += 1
    return {"families": len(metrics), "samples": samples}


# ----------------------------------------------------------------------
# provenance certificates
# ----------------------------------------------------------------------

_PROVENANCE_STATUSES = ("exact", "conservative-bound", "timed-out")
_WITNESS_SPACES = ("token", "actor", "abstract")
_TIER_STATUSES = ("ok", "timeout", "cancelled", "error", "skipped")


def _need_fraction(value: Any, where: str, what: str,
                   nullable: bool = False) -> None:
    """``value`` must parse as an exact rational (or be null)."""
    if value is None and nullable:
        return
    _need(isinstance(value, str), where,
          f"{what} must be a string-encoded rational"
          + (" or null" if nullable else "") + f", got {value!r}")
    from fractions import Fraction

    try:
        Fraction(value)
    except (ValueError, ZeroDivisionError):
        raise SchemaError(
            f"{where}: {what} {value!r} is not a valid rational"
        ) from None


def validate_provenance(data: Any) -> Dict[str, int]:
    """Validate a ``repro-provenance-v1`` certificate.

    Checks *structure* (the record can be loaded, shipped and rendered);
    the semantic certificate check — arcs close a cycle whose mean
    equals the claimed cycle time on the actual graph — is
    :func:`repro.obs.provenance.verify_witness`'s job and needs the
    graph.
    """
    _need(isinstance(data, dict), "provenance", "must be an object")
    _need(data.get("schema") == PROVENANCE_SCHEMA, "provenance",
          f"schema must be {PROVENANCE_SCHEMA!r}, got {data.get('schema')!r}")
    for key in ("graph", "fingerprint", "algorithm", "method"):
        _need(isinstance(data.get(key), str) and data[key], "provenance",
              f"needs a non-empty string {key!r}")
    _need(data.get("status") in _PROVENANCE_STATUSES, "provenance",
          f"status must be one of {_PROVENANCE_STATUSES}, "
          f"got {data.get('status')!r}")
    _need_fraction(data.get("cycle_time"), "provenance", "'cycle_time'",
                   nullable=True)

    steps = data.get("steps", [])
    _need(isinstance(steps, list), "provenance", "'steps' must be an array")
    for index, step in enumerate(steps):
        where = f"steps[{index}]"
        _need(isinstance(step, dict), where, "must be an object")
        _need(isinstance(step.get("kind"), str) and step["kind"], where,
              "needs a non-empty string 'kind'")
        for side in ("before", "after"):
            fp = step.get(f"{side}_fingerprint")
            _need(fp is None or isinstance(fp, str), where,
                  f"'{side}_fingerprint' must be a string or null")
            size = step.get(f"{side}_size", {})
            _need(isinstance(size, dict), where,
                  f"'{side}_size' must be an object")
            for key, value in size.items():
                _need(isinstance(value, int) and not isinstance(value, bool),
                      where, f"size {key!r} must be an integer, got {value!r}")

    witness = data.get("witness")
    arcs = 0
    if witness is not None:
        _need(isinstance(witness, dict), "witness", "must be an object or null")
        _need(witness.get("space") in _WITNESS_SPACES, "witness",
              f"space must be one of {_WITNESS_SPACES}, "
              f"got {witness.get('space')!r}")
        _need(isinstance(witness.get("source"), str), "witness",
              "needs a string 'source'")
        arc_list = witness.get("arcs")
        _need(isinstance(arc_list, list) and arc_list, "witness",
              "'arcs' must be a non-empty array")
        for index, arc in enumerate(arc_list):
            where = f"witness.arcs[{index}]"
            _need(isinstance(arc, dict), where, "must be an object")
            for key in ("source", "target"):
                _need(isinstance(arc.get(key), str) and arc[key], where,
                      f"needs a non-empty string {key!r}")
            _need_fraction(arc.get("weight"), where, "'weight'")
            _need(isinstance(arc.get("tokens"), int)
                  and not isinstance(arc["tokens"], bool)
                  and arc["tokens"] >= 0, where,
                  f"'tokens' must be a non-negative integer, "
                  f"got {arc.get('tokens')!r}")
        groups = witness.get("groups", {})
        _need(isinstance(groups, dict), "witness", "'groups' must be an object")
        for name, members in groups.items():
            _need(isinstance(members, list)
                  and all(isinstance(m, str) for m in members),
                  f"witness.groups[{name!r}]", "must be an array of strings")
        arcs = len(arc_list)
    else:
        _need(data.get("witness_unavailable") is None
              or isinstance(data["witness_unavailable"], str),
              "provenance", "'witness_unavailable' must be a string or null")

    tiers = data.get("tiers", [])
    _need(isinstance(tiers, list), "provenance", "'tiers' must be an array")
    for index, tier in enumerate(tiers):
        where = f"tiers[{index}]"
        _need(isinstance(tier, dict), where, "must be an object")
        _need(isinstance(tier.get("tier"), str) and tier["tier"], where,
              "needs a non-empty string 'tier'")
        _need(tier.get("status") in _TIER_STATUSES, where,
              f"status must be one of {_TIER_STATUSES}, "
              f"got {tier.get('status')!r}")
    if data.get("status") == "conservative-bound":
        _need(isinstance(data.get("bound_phase_count"), int), "provenance",
              "conservative-bound records need an integer 'bound_phase_count'")
        _need_fraction(data.get("bound_abstract_cycle_time"), "provenance",
                       "'bound_abstract_cycle_time'")
    kernel = data.get("kernel")
    _need(kernel is None or (isinstance(kernel, str) and kernel),
          "provenance", "'kernel' must be a non-empty string or null")
    return {"steps": len(steps), "witness_arcs": arcs, "tiers": len(tiers)}


# ----------------------------------------------------------------------
# profile tables
# ----------------------------------------------------------------------

def validate_profile(data: Any) -> Dict[str, int]:
    """Validate a ``repro-profile-v1`` stage-cost table."""
    _need(isinstance(data, dict), "profile", "must be an object")
    _need(data.get("schema") == PROFILE_SCHEMA, "profile",
          f"schema must be {PROFILE_SCHEMA!r}, got {data.get('schema')!r}")
    for key in ("graph", "fingerprint"):
        _need(isinstance(data.get(key), str) and data[key], "profile",
              f"needs a non-empty string {key!r}")
    rows = data.get("rows")
    _need(isinstance(rows, list) and rows, "profile",
          "'rows' must be a non-empty array")
    for index, row in enumerate(rows):
        where = f"rows[{index}]"
        _need(isinstance(row, dict), where, "must be an object")
        for key in ("method", "stage"):
            _need(isinstance(row.get(key), str) and row[key], where,
                  f"needs a non-empty string {key!r}")
        for key in ("wall_seconds", "cpu_seconds", "mem_peak_bytes"):
            value = row.get(key)
            _need(isinstance(value, (int, float))
                  and not isinstance(value, bool) and value >= 0, where,
                  f"{key!r} must be a non-negative number, got {value!r}")
        _need(isinstance(row.get("total"), bool), where,
              "'total' must be a boolean")
    _need(isinstance(data.get("cycle_times"), dict), "profile",
          "'cycle_times' must be an object")
    return {"rows": len(rows), "methods": len(data["cycle_times"])}


# ----------------------------------------------------------------------
# SARIF logs (repro lint / repro devlint --format sarif)
# ----------------------------------------------------------------------

_SARIF_LEVELS = ("none", "note", "warning", "error")


def validate_sarif(data: Any) -> Dict[str, int]:
    """Validate a SARIF 2.1.0 log as emitted by ``repro lint`` /
    ``repro devlint --format sarif``: runs carry a tool driver with rule
    metadata, every result references a known rule with a valid level
    and message, and locations are well-formed (physical locations need
    a uri and a positive startLine; logical locations a name)."""
    _need(isinstance(data, dict), "sarif", "must be an object")
    _need(data.get("version") == "2.1.0", "sarif",
          f"version must be '2.1.0', got {data.get('version')!r}")
    runs = data.get("runs")
    _need(isinstance(runs, list) and runs, "sarif",
          "'runs' must be a non-empty array")
    total_results = 0
    total_rules = 0
    for rindex, run in enumerate(runs):
        where = f"runs[{rindex}]"
        _need(isinstance(run, dict), where, "must be an object")
        driver = run.get("tool", {}).get("driver") \
            if isinstance(run.get("tool"), dict) else None
        _need(isinstance(driver, dict), where, "needs tool.driver")
        _need(isinstance(driver.get("name"), str) and driver["name"],
              f"{where}.tool.driver", "needs a non-empty 'name'")
        rules = driver.get("rules", [])
        _need(isinstance(rules, list), f"{where}.tool.driver",
              "'rules' must be an array")
        rule_ids = set()
        for index, rule in enumerate(rules):
            rwhere = f"{where}.tool.driver.rules[{index}]"
            _need(isinstance(rule, dict), rwhere, "must be an object")
            _need(isinstance(rule.get("id"), str) and rule["id"], rwhere,
                  "needs a non-empty string 'id'")
            _need(rule["id"] not in rule_ids, rwhere,
                  f"duplicate rule id {rule['id']!r}")
            rule_ids.add(rule["id"])
        total_rules += len(rule_ids)
        results = run.get("results", [])
        _need(isinstance(results, list), where, "'results' must be an array")
        for index, result in enumerate(results):
            rwhere = f"{where}.results[{index}]"
            _need(isinstance(result, dict), rwhere, "must be an object")
            _need(isinstance(result.get("ruleId"), str) and result["ruleId"],
                  rwhere, "needs a non-empty string 'ruleId'")
            if rule_ids:
                _need(result["ruleId"] in rule_ids, rwhere,
                      f"ruleId {result['ruleId']!r} not in the driver's rules")
            _need(result.get("level") in _SARIF_LEVELS, rwhere,
                  f"level must be one of {_SARIF_LEVELS}, "
                  f"got {result.get('level')!r}")
            message = result.get("message")
            _need(isinstance(message, dict)
                  and isinstance(message.get("text"), str)
                  and message["text"], rwhere,
                  "needs a message object with non-empty 'text'")
            ri = result.get("ruleIndex")
            if ri is not None:
                _need(isinstance(ri, int) and 0 <= ri < len(rules), rwhere,
                      f"ruleIndex {ri!r} out of range")
                _need(rules[ri]["id"] == result["ruleId"], rwhere,
                      "ruleIndex does not point at ruleId")
            for lindex, location in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{lindex}]"
                _need(isinstance(location, dict), lwhere, "must be an object")
                physical = location.get("physicalLocation")
                logical = location.get("logicalLocations")
                _need(physical is not None or logical is not None, lwhere,
                      "needs a physicalLocation or logicalLocations")
                if physical is not None:
                    _need(isinstance(physical, dict), lwhere,
                          "'physicalLocation' must be an object")
                    artifact = physical.get("artifactLocation", {})
                    _need(isinstance(artifact, dict)
                          and isinstance(artifact.get("uri"), str)
                          and artifact["uri"], lwhere,
                          "physicalLocation needs artifactLocation.uri")
                    region = physical.get("region", {})
                    _need(isinstance(region, dict), lwhere,
                          "'region' must be an object")
                    start = region.get("startLine")
                    _need(isinstance(start, int) and start >= 1, lwhere,
                          f"region.startLine must be a positive integer, "
                          f"got {start!r}")
                if logical is not None:
                    _need(isinstance(logical, list) and logical, lwhere,
                          "'logicalLocations' must be a non-empty array")
                    for entry in logical:
                        _need(isinstance(entry, dict)
                              and isinstance(entry.get("name"), str)
                              and entry["name"], lwhere,
                              "logical locations need a non-empty 'name'")
        total_results += len(results)
    return {"runs": len(runs), "rules": total_rules, "results": total_results}


# ----------------------------------------------------------------------
# durable result store (repro.analysis.store)
# ----------------------------------------------------------------------

def validate_store_record(raw: bytes,
                          expected_digest: str = None) -> Dict[str, int]:
    """Validate one binary ``repro-store-v1`` record file.

    Deliberately re-implements the store's verification (magic line,
    JSON header with a complete key echo, payload length, SHA-256
    checksum, content-address consistency) so CI checks records with
    code that shares nothing with the writer.  ``expected_digest`` is
    the record's file stem; when given, the header's key must hash to
    it (a renamed record is a schema violation).
    """
    import hashlib

    magic = (STORE_SCHEMA + "\n").encode("ascii")
    _need(raw.startswith(magic), "record",
          f"must start with the {STORE_SCHEMA!r} magic line")
    rest = raw[len(magic):]
    newline = rest.find(b"\n")
    _need(newline >= 0, "record", "header line is truncated")
    try:
        header = json.loads(rest[:newline])
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise SchemaError("record: header is not valid JSON") from None
    _need(isinstance(header, dict), "record.header", "must be an object")
    for key in ("fingerprint", "analysis", "params"):
        _need(isinstance(header.get(key), str) and header[key],
              "record.header", f"needs a non-empty string {key!r}")
    try:
        params = json.loads(header["params"])
    except json.JSONDecodeError:
        raise SchemaError(
            "record.header: 'params' must itself be valid JSON"
        ) from None
    _need(isinstance(params, dict), "record.header",
          "'params' must encode an object")
    length = header.get("payload_len")
    _need(isinstance(length, int) and not isinstance(length, bool)
          and length >= 0, "record.header",
          f"'payload_len' must be a non-negative integer, got {length!r}")
    checksum = header.get("checksum")
    _need(isinstance(checksum, str) and len(checksum) == 64,
          "record.header", "'checksum' must be a 64-char SHA-256 hex digest")
    payload = rest[newline + 1:]
    _need(len(payload) == length, "record",
          f"payload is {len(payload)} bytes, header claims {length} (torn write)")
    _need(hashlib.sha256(payload).hexdigest() == checksum, "record",
          "payload checksum mismatch (corrupt record)")
    if expected_digest is not None:
        blob = "\x00".join(
            (header["fingerprint"], header["analysis"], header["params"])
        )
        _need(hashlib.sha256(blob.encode("utf-8")).hexdigest()
              == expected_digest, "record",
              "header key does not hash to the record's file name "
              "(renamed or aliased record)")
    return {"payload_bytes": length, "header_keys": len(header)}


def validate_store_verify(data: Any) -> Dict[str, int]:
    """Validate a ``repro-store-verify-v1`` report (``repro cache verify
    --json``), including its internal arithmetic: ``undetected_corrupt``
    must equal ``len(corrupt) - quarantined_now``."""
    _need(isinstance(data, dict), "store-verify", "must be an object")
    _need(data.get("schema") == STORE_VERIFY_SCHEMA, "store-verify",
          f"schema must be {STORE_VERIFY_SCHEMA!r}, got {data.get('schema')!r}")
    _need(isinstance(data.get("root"), str) and data["root"], "store-verify",
          "needs a non-empty string 'root'")
    for key in ("records", "valid", "quarantined_now", "quarantined_records",
                "undetected_corrupt", "tmp_files", "bytes"):
        value = data.get(key)
        _need(isinstance(value, int) and not isinstance(value, bool)
              and value >= 0, "store-verify",
              f"{key!r} must be a non-negative integer, got {value!r}")
    corrupt = data.get("corrupt")
    _need(isinstance(corrupt, list), "store-verify",
          "'corrupt' must be an array")
    for index, entry in enumerate(corrupt):
        where = f"store-verify.corrupt[{index}]"
        _need(isinstance(entry, dict), where, "must be an object")
        for key in ("path", "reason"):
            _need(isinstance(entry.get(key), str) and entry[key], where,
                  f"needs a non-empty string {key!r}")
    _need(data["valid"] + len(corrupt) == data["records"], "store-verify",
          f"valid ({data['valid']}) + corrupt ({len(corrupt)}) must equal "
          f"records ({data['records']})")
    _need(data["undetected_corrupt"]
          == len(corrupt) - data["quarantined_now"], "store-verify",
          "'undetected_corrupt' must equal len(corrupt) - quarantined_now")
    journal = data.get("journal")
    if journal is not None:
        _need(isinstance(journal, dict), "store-verify",
              "'journal' must be an object or null")
        _need(isinstance(journal.get("path"), str) and journal["path"],
              "store-verify.journal", "needs a non-empty string 'path'")
        for key in ("checked", "matched"):
            value = journal.get(key)
            _need(isinstance(value, int) and not isinstance(value, bool)
                  and value >= 0, "store-verify.journal",
                  f"{key!r} must be a non-negative integer, got {value!r}")
        missing = journal.get("missing")
        _need(isinstance(missing, list), "store-verify.journal",
              "'missing' must be an array")
        _need(journal["matched"] + len(missing) == journal["checked"],
              "store-verify.journal",
              "matched + len(missing) must equal checked")
        for index, entry in enumerate(missing):
            where = f"store-verify.journal.missing[{index}]"
            _need(isinstance(entry, dict), where, "must be an object")
            for key in ("fingerprint", "analysis", "status"):
                _need(isinstance(entry.get(key), str) and entry[key], where,
                      f"needs a non-empty string {key!r}")
    return {"records": data["records"], "corrupt": len(corrupt),
            "undetected_corrupt": data["undetected_corrupt"]}


def validate_store_stats(data: Any) -> Dict[str, int]:
    """Validate a ``repro-store-stats-v1`` census (``repro cache stats
    --json``)."""
    _need(isinstance(data, dict), "store-stats", "must be an object")
    _need(data.get("schema") == STORE_STATS_SCHEMA, "store-stats",
          f"schema must be {STORE_STATS_SCHEMA!r}, got {data.get('schema')!r}")
    _need(isinstance(data.get("root"), str) and data["root"], "store-stats",
          "needs a non-empty string 'root'")
    for key in ("hits", "misses", "puts", "put_skips", "put_errors",
                "quarantined", "evictions", "read_errors", "records",
                "bytes", "quarantined_records", "tmp_files", "max_bytes"):
        value = data.get(key)
        _need(isinstance(value, int) and not isinstance(value, bool)
              and value >= 0, "store-stats",
              f"{key!r} must be a non-negative integer, got {value!r}")
    rate = data.get("hit_rate")
    _need(isinstance(rate, (int, float)) and not isinstance(rate, bool)
          and 0.0 <= rate <= 1.0, "store-stats",
          f"'hit_rate' must be in [0, 1], got {rate!r}")
    return {"records": data["records"], "bytes": data["bytes"]}


# ----------------------------------------------------------------------
# benchmark baselines
# ----------------------------------------------------------------------

def validate_bench(data: Any) -> Dict[str, int]:
    """Validate a ``repro-bench-v1`` baseline: a ``suite`` name plus a
    flat list of ``{name, unit, value, baseline, meta}`` entries."""
    _need(isinstance(data, dict), "bench", "must be an object")
    _need(data.get("schema") == BENCH_SCHEMA, "bench",
          f"schema must be {BENCH_SCHEMA!r}, got {data.get('schema')!r}")
    _need(isinstance(data.get("suite"), str) and data["suite"], "bench",
          "needs a non-empty 'suite' string")
    host = data.get("host")
    if host is not None:
        _need(isinstance(host, dict), "bench", "'host' must be an object")
        for key in ("platform", "python", "git_sha"):
            _need(key in host, "bench.host", f"missing {key!r}")
            _need(host[key] is None or isinstance(host[key], str),
                  "bench.host", f"{key!r} must be a string or null")
    entries = data.get("entries")
    _need(isinstance(entries, list) and entries, "bench",
          "'entries' must be a non-empty array")
    names = set()
    for index, entry in enumerate(entries):
        where = f"entries[{index}]"
        _need(isinstance(entry, dict), where, "must be an object")
        missing = [k for k in ("name", "unit", "value", "baseline", "meta")
                   if k not in entry]
        _need(not missing, where, f"missing keys {missing}")
        _need(isinstance(entry["name"], str) and entry["name"], where,
              "'name' must be a non-empty string")
        _need(entry["name"] not in names, where,
              f"duplicate entry name {entry['name']!r}")
        names.add(entry["name"])
        _need(isinstance(entry["unit"], str) and entry["unit"], where,
              "'unit' must be a non-empty string")
        _need(isinstance(entry["value"], (int, float))
              and not isinstance(entry["value"], bool), where,
              "'value' must be a number")
        _need(entry["baseline"] is None
              or (isinstance(entry["baseline"], (int, float))
                  and not isinstance(entry["baseline"], bool)), where,
              "'baseline' must be a number or null")
        _need(isinstance(entry["meta"], dict), where, "'meta' must be an object")
    return {"entries": len(entries)}


def validate_history(text: str) -> Dict[str, int]:
    """Validate a benchmark history journal (``history.jsonl``).

    Stricter than per-line :func:`validate_bench`: the journal is the
    regression sentinel's feed, so every line additionally needs a
    ``host`` stamp with non-null ``platform``/``python`` (verdicts are
    computed per host — an unstamped line poisons every series in its
    suite), and within each suite the ``git_sha`` sequence must be
    *contiguous*: once a suite's runs move to a new commit, an earlier
    commit must not reappear (that is interleaved or rewritten history
    the journal order cannot date).  Unknown shas (``null``) are
    exempt — a non-git environment still gets a usable journal.
    """
    runs = 0
    seen_shas: Dict[str, set] = {}
    current_sha: Dict[str, Any] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as error:
            raise SchemaError(f"{where}: not valid JSON ({error})") from None
        try:
            validate_bench(doc)
        except SchemaError as error:
            raise SchemaError(f"{where}: {error}") from None
        host = doc.get("host")
        _need(isinstance(host, dict), where,
              "history entries need a host stamp (see bench_common.host_stamp)")
        for key in ("platform", "python"):
            _need(isinstance(host.get(key), str) and host[key], where,
                  f"host stamp needs a non-empty {key!r} "
                  "(verdicts are computed per host)")
        suite = doc["suite"]
        sha = host.get("git_sha")
        if sha is not None:
            if current_sha.get(suite) != sha:
                _need(sha not in seen_shas.setdefault(suite, set()), where,
                      f"suite {suite!r}: git_sha {sha[:12]} reappears after "
                      "a different commit (non-contiguous history)")
                seen_shas[suite].add(sha)
                current_sha[suite] = sha
        runs += 1
    return {"runs": runs}


# ----------------------------------------------------------------------
# trace analytics (repro obs analyze / flame / diff / regress)
# ----------------------------------------------------------------------

def _need_number(value: Any, where: str, what: str,
                 minimum: float = None) -> None:
    _need(isinstance(value, (int, float)) and not isinstance(value, bool),
          where, f"{what} must be a number, got {value!r}")
    if minimum is not None:
        _need(value >= minimum, where,
              f"{what} must be >= {minimum}, got {value!r}")


def validate_trace_summary(data: Any) -> Dict[str, int]:
    """Validate a ``repro-trace-summary-v1`` analytics document.

    Beyond shape, this enforces the structural invariant the analyzer
    guarantees: self times decompose total time, so the stage self-time
    sum may not exceed the summed root durations (``wall_seconds``),
    and the critical path is a root-to-leaf chain — depths consecutive
    from 0 and each hop no longer than its parent.
    """
    _need(isinstance(data, dict), "trace-summary", "must be an object")
    _need(data.get("schema") == TRACE_SUMMARY_SCHEMA, "trace-summary",
          f"schema must be {TRACE_SUMMARY_SCHEMA!r}, got {data.get('schema')!r}")
    sources = data.get("sources")
    _need(isinstance(sources, list) and sources
          and all(isinstance(s, str) for s in sources),
          "trace-summary", "'sources' must be a non-empty array of strings")
    for key in ("spans", "roots", "processes"):
        value = data.get(key)
        _need(isinstance(value, int) and not isinstance(value, bool)
              and value >= 0, "trace-summary",
              f"{key!r} must be a non-negative integer, got {value!r}")
    _need_number(data.get("wall_seconds"), "trace-summary",
                 "'wall_seconds'", minimum=0.0)

    stages = data.get("stages")
    _need(isinstance(stages, list), "trace-summary",
          "'stages' must be an array")
    self_sum = 0.0
    for index, row in enumerate(stages):
        where = f"trace-summary.stages[{index}]"
        _need(isinstance(row, dict), where, "must be an object")
        _need(isinstance(row.get("stage"), str) and row["stage"], where,
              "needs a non-empty string 'stage'")
        for key in ("graph", "kernel"):
            _need(row.get(key) is None or isinstance(row[key], str), where,
                  f"{key!r} must be a string or null")
        _need(isinstance(row.get("count"), int) and row["count"] >= 1,
              where, f"'count' must be a positive integer, got {row.get('count')!r}")
        for key in ("total_seconds", "self_seconds", "p50_seconds",
                    "p90_seconds", "p99_seconds", "max_seconds"):
            _need_number(row.get(key), where, repr(key), minimum=0.0)
        _need(row["self_seconds"] <= row["total_seconds"] + 1e-9, where,
              "self time cannot exceed total time")
        _need(row["p50_seconds"] <= row["p90_seconds"] + 1e-9
              and row["p90_seconds"] <= row["p99_seconds"] + 1e-9
              and row["p99_seconds"] <= row["max_seconds"] + 1e-9, where,
              "percentiles must be non-decreasing (p50 <= p90 <= p99 <= max)")
        self_sum += row["self_seconds"]
    _need(self_sum <= data["wall_seconds"] + 1e-6, "trace-summary",
          f"stage self-time sum {self_sum!r} exceeds the summed root "
          f"durations {data['wall_seconds']!r}: self times must "
          "partition the span forest")

    lanes = data.get("lanes", [])
    _need(isinstance(lanes, list), "trace-summary", "'lanes' must be an array")
    for index, lane in enumerate(lanes):
        where = f"trace-summary.lanes[{index}]"
        _need(isinstance(lane, dict), where, "must be an object")
        _need(isinstance(lane.get("pid"), int), where,
              "needs an integer 'pid'")
        _need(isinstance(lane.get("spans"), int) and lane["spans"] >= 1,
              where, "'spans' must be a positive integer")
        _need_number(lane.get("self_seconds"), where,
                     "'self_seconds'", minimum=0.0)

    path = data.get("critical_path")
    _need(isinstance(path, list), "trace-summary",
          "'critical_path' must be an array")
    previous = None
    for index, hop in enumerate(path):
        where = f"trace-summary.critical_path[{index}]"
        _need(isinstance(hop, dict), where, "must be an object")
        _need(isinstance(hop.get("name"), str) and hop["name"], where,
              "needs a non-empty string 'name'")
        _need(hop.get("depth") == index, where,
              f"depths must be consecutive from 0, got {hop.get('depth')!r}")
        _need_number(hop.get("duration_seconds"), where,
                     "'duration_seconds'", minimum=0.0)
        _need_number(hop.get("self_seconds"), where,
                     "'self_seconds'", minimum=0.0)
        if previous is not None:
            _need(hop["duration_seconds"] <= previous + 1e-9, where,
                  "a child hop cannot outlast its parent")
        previous = hop["duration_seconds"]
    return {"stages": len(stages), "spans": data["spans"],
            "critical_path": len(path)}


_DIFF_DIRECTIONS = ("regressed", "improved", "unchanged", "added", "removed")


def validate_trace_diff(data: Any) -> Dict[str, int]:
    """Validate a ``repro-trace-diff-v1`` A/B diff document."""
    _need(isinstance(data, dict), "trace-diff", "must be an object")
    _need(data.get("schema") == TRACE_DIFF_SCHEMA, "trace-diff",
          f"schema must be {TRACE_DIFF_SCHEMA!r}, got {data.get('schema')!r}")
    _need(data.get("kind") in ("trace-summary", "metrics"), "trace-diff",
          f"kind must be 'trace-summary' or 'metrics', got {data.get('kind')!r}")
    for key in ("a", "b"):
        _need(isinstance(data.get(key), str) and data[key], "trace-diff",
              f"needs a non-empty string {key!r} label")
    _need_number(data.get("noise_floor"), "trace-diff",
                 "'noise_floor'", minimum=0.0)
    rows = data.get("rows")
    _need(isinstance(rows, list), "trace-diff", "'rows' must be an array")
    for index, row in enumerate(rows):
        where = f"trace-diff.rows[{index}]"
        _need(isinstance(row, dict), where, "must be an object")
        _need(isinstance(row.get("key"), str) and row["key"], where,
              "needs a non-empty string 'key'")
        direction = row.get("direction")
        _need(direction in _DIFF_DIRECTIONS, where,
              f"direction must be one of {_DIFF_DIRECTIONS}, got {direction!r}")
        _need(direction != "added" or row.get("a") is None, where,
              "an 'added' row cannot have an 'a' value")
        _need(direction != "removed" or row.get("b") is None, where,
              "a 'removed' row cannot have a 'b' value")
        if direction not in ("added", "removed"):
            for key in ("a", "b", "delta"):
                _need_number(row.get(key), where, repr(key))
        if row.get("noise_floored"):
            _need(row.get("relative") == 0.0, where,
                  "a noise-floored row must publish relative == 0")
            _need_number(row.get("measured_relative"), where,
                         "'measured_relative'")
    counts = data.get("counts")
    _need(isinstance(counts, dict), "trace-diff", "'counts' must be an object")
    for direction in _DIFF_DIRECTIONS:
        _need(isinstance(counts.get(direction), int), "trace-diff.counts",
              f"missing integer count for {direction!r}")
        _need(counts[direction]
              == sum(1 for r in rows if r.get("direction") == direction),
              "trace-diff.counts",
              f"count for {direction!r} does not match the rows")
    return {"rows": len(rows), "regressed": counts["regressed"]}


_REGRESS_VERDICTS = ("ok", "regressed", "improved", "noisy",
                     "insufficient-data")


def validate_regress(data: Any) -> Dict[str, int]:
    """Validate a ``repro-regress-v1`` sentinel verdict document,
    including its internal consistency: counts match the results, and
    ``regressed`` lists exactly the regressed ``suite/entry`` pairs."""
    _need(isinstance(data, dict), "regress", "must be an object")
    _need(data.get("schema") == REGRESS_SCHEMA, "regress",
          f"schema must be {REGRESS_SCHEMA!r}, got {data.get('schema')!r}")
    _need(isinstance(data.get("history"), str) and data["history"], "regress",
          "needs a non-empty string 'history'")
    params = data.get("params")
    _need(isinstance(params, dict), "regress", "'params' must be an object")
    for key in ("window", "min_samples"):
        _need(isinstance(params.get(key), int) and params[key] >= 1,
              "regress.params", f"{key!r} must be a positive integer")
    for key in ("threshold", "noise_rel", "mad_mult"):
        _need_number(params.get(key), "regress.params", repr(key), minimum=0.0)
    results = data.get("results")
    _need(isinstance(results, list), "regress", "'results' must be an array")
    regressed = []
    for index, result in enumerate(results):
        where = f"regress.results[{index}]"
        _need(isinstance(result, dict), where, "must be an object")
        for key in ("suite", "entry", "unit"):
            _need(isinstance(result.get(key), str) and result[key], where,
                  f"needs a non-empty string {key!r}")
        _need_number(result.get("value"), where, "'value'")
        verdict = result.get("verdict")
        _need(verdict in _REGRESS_VERDICTS, where,
              f"verdict must be one of {_REGRESS_VERDICTS}, got {verdict!r}")
        _need(verdict == "ok" or isinstance(result.get("reason"), str),
              where, f"a {verdict!r} verdict needs a string 'reason'")
        _need(result.get("direction") in ("higher-is-better",
                                          "lower-is-better"), where,
              f"bad direction {result.get('direction')!r}")
        _need(isinstance(result.get("samples"), int)
              and result["samples"] >= 0, where,
              "'samples' must be a non-negative integer")
        if verdict == "regressed":
            regressed.append(f"{result['suite']}/{result['entry']}")
    _need(data.get("entries") == len(results), "regress",
          f"'entries' ({data.get('entries')!r}) must equal the number of "
          f"results ({len(results)})")
    counts = data.get("counts")
    _need(isinstance(counts, dict), "regress", "'counts' must be an object")
    for verdict in _REGRESS_VERDICTS:
        _need(isinstance(counts.get(verdict), int), "regress.counts",
              f"missing integer count for {verdict!r}")
        _need(counts[verdict]
              == sum(1 for r in results if r.get("verdict") == verdict),
              "regress.counts", f"count for {verdict!r} does not match results")
    _need(sorted(data.get("regressed", [])) == sorted(regressed), "regress",
          "'regressed' must list exactly the regressed suite/entry pairs")
    return {"entries": len(results), "regressed": len(regressed)}


_COLLAPSED_LINE = re.compile(r"^(?P<stack>[^ ]+(?:;[^ ]+)*) (?P<count>\d+)$")


def validate_collapsed(text: str) -> Dict[str, int]:
    """Validate a collapsed-stack flamegraph file: every line is
    ``frame;frame;... <positive int>`` (Brendan Gregg's format, the
    input contract of ``flamegraph.pl`` and speedscope), no duplicate
    stacks."""
    stacks = 0
    frames = 0
    seen = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        where = f"line {lineno}"
        match = _COLLAPSED_LINE.match(line)
        _need(match is not None, where,
              f"not a collapsed-stack line {line!r} "
              "(expected 'a;b;c <integer>')")
        _need(int(match.group("count")) > 0, where,
              "sample count must be positive")
        stack = match.group("stack")
        _need(stack not in seen, where, f"duplicate stack {stack!r}")
        seen.add(stack)
        stacks += 1
        frames += stack.count(";") + 1
    _need(stacks > 0, "collapsed", "no stacks present")
    return {"stacks": stacks, "frames": frames}


# ----------------------------------------------------------------------
# CLI driver (used by CI to gate the emitted artefacts)
# ----------------------------------------------------------------------

def check_file(path: Union[str, pathlib.Path]) -> Dict[str, int]:
    """Validate one artefact, inferring its kind from name/content."""
    path = str(path)
    name = path.rsplit("/", 1)[-1]
    if name.endswith(".rec"):
        with open(path, "rb") as handle:
            raw = handle.read()
        stem = name[: -len(".rec")]
        # Quarantined records carry a ".reason" suffix after the digest
        # and are expected to be corrupt — only live records (a bare
        # 64-hex stem) must round-trip their content address.
        digest = stem if re.fullmatch(r"[0-9a-f]{64}", stem) else None
        return validate_store_record(raw, expected_digest=digest)
    with open(path) as handle:
        text = handle.read()
    if name.endswith((".prom", ".txt")):
        return validate_prometheus_text(text)
    if name.endswith((".folded", ".collapsed")):
        return validate_collapsed(text)
    if name.endswith(".jsonl"):
        head = next((line for line in text.splitlines() if line.strip()), "")
        try:
            first = json.loads(head)
        except json.JSONDecodeError:
            first = None
        if isinstance(first, dict) and first.get("schema") == BENCH_SCHEMA:
            # A bench history: one repro-bench-v1 document per line,
            # plus the journal-level hygiene rules (host stamps,
            # contiguous per-suite git_sha runs).
            return validate_history(text)
        return validate_span_jsonl(text)
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise SchemaError(f"{path}: not valid JSON ({error})") from None
    if isinstance(data, dict):
        if data.get("version") == "2.1.0" and "runs" in data:
            return validate_sarif(data)
        if data.get("schema") == BENCH_SCHEMA:
            return validate_bench(data)
        if data.get("schema") == PROVENANCE_SCHEMA:
            return validate_provenance(data)
        if data.get("schema") == PROFILE_SCHEMA:
            return validate_profile(data)
        if data.get("schema") == STORE_VERIFY_SCHEMA:
            return validate_store_verify(data)
        if data.get("schema") == STORE_STATS_SCHEMA:
            return validate_store_stats(data)
        if data.get("schema") == TRACE_SUMMARY_SCHEMA:
            return validate_trace_summary(data)
        if data.get("schema") == TRACE_DIFF_SCHEMA:
            return validate_trace_diff(data)
        if data.get("schema") == REGRESS_SCHEMA:
            return validate_regress(data)
        if "metrics" in data and "schema" in data:
            return validate_metrics_snapshot(data)
        if "traceEvents" in data:
            return validate_chrome_trace(data)
    if isinstance(data, list):
        return validate_chrome_trace(data)
    raise SchemaError(f"{path}: unrecognised artefact shape")


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.check ARTEFACT...", file=sys.stderr)
        return 2
    status = 0
    for path in argv:
        try:
            summary = check_file(path)
        except (SchemaError, OSError) as error:
            print(f"FAIL {path}: {error}", file=sys.stderr)
            status = 1
            continue
        detail = ", ".join(f"{k}={v}" for k, v in summary.items())
        print(f"ok   {path}: {detail}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
