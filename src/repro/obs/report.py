"""Human-readable renderings of provenance certificates.

:mod:`repro.obs.provenance` produces machine-checkable records; this
module turns one into the artefacts a person reads — the output of the
``repro explain`` CLI subcommand:

* :func:`render_text` — a terminal report: status, reduction-step
  table, the critical-cycle witness with its re-derived mean, and the
  fallback-tier history when the record came from a tiered policy;
* :func:`render_html` — the same content as one self-contained HTML
  page (inline CSS, no external assets), plus the DOT rendering of the
  graph with the critical cycle highlighted and a span timeline when
  the caller traced the run;
* :func:`witness_highlights` — maps a witness onto the actors/edges of
  the original graph so :func:`repro.sdf.dot.to_dot` can colour the
  critical cycle, shared by the HTML report and ``repro explain --dot``.

Everything degrades gracefully: a record without a witness renders the
``witness_unavailable`` reason, a record outside a policy renders no
tier table, and a missing graph simply omits the DOT section.
"""

from __future__ import annotations

import html
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ValidationError
from repro.obs.provenance import (
    CycleWitness,
    ProvenanceRecord,
    WitnessError,
    verify_witness,
)

__all__ = [
    "html_page",
    "html_table",
    "render_html",
    "render_text",
    "witness_highlights",
]


# ----------------------------------------------------------------------
# witness -> graph highlights
# ----------------------------------------------------------------------

def witness_highlights(
    record: ProvenanceRecord, graph
) -> Tuple[Set[str], Set]:
    """The actors and edges of ``graph`` that carry the critical cycle.

    Returns ``(actors, edges)`` suitable for
    :func:`repro.sdf.dot.to_dot`'s ``highlight_actors`` /
    ``highlight_edges``.  Token-space witnesses highlight the channels
    holding the witnessed tokens plus their endpoint actors; actor-space
    witnesses highlight the actors and the carrying channels;
    abstract-space witnesses highlight the original members of every
    abstract actor on the cycle.  Unknown labels are skipped — a
    highlight is a visual aid, never a verification.
    """
    actors: Set[str] = set()
    edges: Set = set()
    witness = record.witness if isinstance(record, ProvenanceRecord) else record
    if witness is None:
        return actors, edges
    if witness.space == "token":
        for arc in witness.arcs:
            for label in (arc.source, arc.target):
                edge_name = label.rpartition("[")[0] if "[" in label else label
                try:
                    edge = graph.edge(edge_name)
                except ValidationError:
                    continue
                edges.add(edge_name)
                actors.add(edge.source)
                actors.add(edge.target)
    elif witness.space == "actor":
        for arc in witness.arcs:
            if graph.has_actor(arc.source):
                actors.add(arc.source)
            if graph.has_actor(arc.target):
                actors.add(arc.target)
            if arc.key is not None:
                edges.add(arc.key)
            else:
                edges.add((arc.source, arc.target))
    elif witness.space == "abstract":
        on_cycle = {arc.source for arc in witness.arcs}
        on_cycle.update(arc.target for arc in witness.arcs)
        for abstract_actor in on_cycle:
            for member in witness.groups.get(abstract_actor, ()):
                if graph.has_actor(member):
                    actors.add(member)
    return actors, edges


# ----------------------------------------------------------------------
# shared pieces
# ----------------------------------------------------------------------

def _size(d: Dict[str, int]) -> str:
    if not d:
        return "-"
    return f"{d.get('actors', '?')}a/{d.get('edges', '?')}e/{d.get('tokens', '?')}t"


def _fmt(value) -> str:
    if value is None:
        return "unbounded"
    value = Fraction(value)
    if value.denominator != 1:
        return f"{value} (~{float(value):.6g})"
    return str(value)


def _check(record: ProvenanceRecord, graph) -> Tuple[str, Optional[Fraction]]:
    """(verification verdict line, re-derived mean or None)."""
    if record.witness is None:
        reason = record.witness_unavailable or "no witness in record"
        return f"no witness: {reason}", None
    try:
        mean = verify_witness(graph, record)
    except WitnessError as error:
        return f"FAILED: {error}", None
    claim = (
        record.bound_abstract_cycle_time
        if record.status == "conservative-bound"
        else record.cycle_time
    )
    return f"verified: re-derived cycle mean {mean} = claimed {claim}", mean


def _status_line(record: ProvenanceRecord) -> str:
    line = f"{record.status} ({record.algorithm} via {record.method})"
    if record.status == "conservative-bound" and record.bound_phase_count:
        line += (
            f", Theorem 1 bound = {record.bound_phase_count}"
            f" x {record.bound_abstract_cycle_time}"
        )
    return line


def _step_rows(record: ProvenanceRecord) -> List[Tuple[str, str, str, str, str]]:
    rows = []
    for index, step in enumerate(record.steps, 1):
        detail = ", ".join(
            f"{k}={v}" for k, v in step.detail.items()
            if not isinstance(v, (dict, list))
        )
        rows.append((
            str(index),
            step.kind,
            _size(step.before_size),
            _size(step.after_size),
            detail,
        ))
    return rows


def _witness_rows(witness: CycleWitness) -> List[Tuple[str, str, str, str]]:
    return [
        (
            f"{arc.source} -> {arc.target}",
            str(arc.weight),
            str(arc.tokens),
            arc.key or "",
        )
        for arc in witness.arcs
    ]


# ----------------------------------------------------------------------
# text report
# ----------------------------------------------------------------------

def render_text(record: ProvenanceRecord, graph=None) -> str:
    """The terminal report ``repro explain`` prints.

    ``graph`` (the *original* analysed graph) enables the full witness
    re-check; without it the witness is checked for closure and mean
    only (``verify_witness(None, ...)``).
    """
    lines = [
        f"provenance of {record.graph} [{record.fingerprint[:16]}]",
        f"status:     {_status_line(record)}",
        f"cycle time: {_fmt(record.cycle_time)}",
    ]

    lines.append("")
    if record.steps:
        lines.append("reduction steps")
        rows = _step_rows(record)
        kind_w = max(len(r[1]) for r in rows)
        size_w = max(max(len(r[2]), len(r[3])) for r in rows)
        for number, kind, before, after, detail in rows:
            lines.append(
                f"  {number:>2}. {kind:<{kind_w}}  "
                f"{before:>{size_w}} -> {after:<{size_w}}"
                + (f"  ({detail})" if detail else "")
            )
    else:
        lines.append("reduction steps: none recorded")

    lines.append("")
    if record.witness is not None:
        witness = record.witness
        lines.append(
            f"critical-cycle witness ({witness.space} space, "
            f"{witness.source}, {len(witness.arcs)} arc(s))"
        )
        rows = _witness_rows(witness)
        arc_w = max(len(r[0]) for r in rows)
        shown = rows if len(rows) <= 20 else rows[:20]
        for arc, weight, tokens, key in shown:
            via = f"  via {key}" if key else ""
            lines.append(
                f"  {arc:<{arc_w}}  weight {weight:>8}  transit {tokens}{via}"
            )
        if len(rows) > len(shown):
            lines.append(f"  ... {len(rows) - len(shown)} more arc(s)")
        if witness.groups:
            for name, members in sorted(witness.groups.items()):
                preview = ", ".join(members[:4]) + (", ..." if len(members) > 4 else "")
                lines.append(f"  group {name}: {preview}")
    verdict, _ = _check(record, graph)
    lines.append(f"witness check: {verdict}")

    if record.tiers:
        lines.append("")
        lines.append("fallback tiers")
        tier_w = max(len(t.tier) for t in record.tiers)
        for tier in record.tiers:
            reason = f"  ({tier.reason})" if tier.reason else ""
            lines.append(f"  {tier.tier:<{tier_w}}  {tier.status}{reason}")
        if record.degradation_reason:
            lines.append(f"degraded because: {record.degradation_reason}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML report
# ----------------------------------------------------------------------

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
code, pre { font-family: 'SF Mono', Consolas, monospace; font-size: 0.85rem; }
pre { background: #f6f6f4; padding: 0.8rem; overflow-x: auto;
      border-radius: 4px; }
table { border-collapse: collapse; margin: 0.6rem 0; }
th, td { text-align: left; padding: 0.25rem 0.9rem 0.25rem 0;
         border-bottom: 1px solid #e4e4e0; font-size: 0.9rem; }
th { font-weight: 600; }
.badge { display: inline-block; padding: 0.1rem 0.55rem; border-radius: 9px;
         font-size: 0.8rem; color: #fff; }
.ok { background: #1e8e3e; } .warn { background: #b8860b; }
.fail { background: #c0392b; }
.muted { color: #777; }
.lane { position: relative; height: 1.35rem; margin: 2px 0;
        background: #f6f6f4; border-radius: 3px; }
.bar { position: absolute; top: 2px; bottom: 2px; border-radius: 3px;
       background: #4a7db5; opacity: 0.85; }
.bar.err { background: #c0392b; }
.lane span { position: relative; z-index: 1; font-size: 0.75rem;
             padding-left: 0.4rem; line-height: 1.35rem; }
"""


def html_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """One styled ``<table>``; every cell is escaped.  Shared by the
    provenance report and the ``repro obs diff`` HTML rendering."""
    head = "".join(f"<th>{html.escape(h)}</th>" for h in headers)
    body = "\n".join(
        "<tr>" + "".join(f"<td>{html.escape(str(c))}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return f"<table><tr>{head}</tr>\n{body}</table>"


_table = html_table


def html_page(title: str, parts: Sequence[str]) -> str:
    """Wrap pre-rendered body fragments into one self-contained page
    (inline CSS, no external assets) — the house style for every HTML
    artefact the CLI emits."""
    return "\n".join([
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        *parts,
        "</body></html>",
    ])


def _timeline(spans) -> str:
    """Nested horizontal bars from a list of closed trace spans."""
    closed = [s for s in spans if s.end is not None]
    if not closed:
        return ""
    epoch = min(s.start for s in closed)
    total = max(s.end for s in closed) - epoch or 1e-9
    depth = {}
    for s in sorted(closed, key=lambda s: s.start):
        depth[s.id] = depth.get(s.parent_id, -1) + 1
    lanes = []
    for s in sorted(closed, key=lambda s: (s.start, depth[s.id])):
        left = (s.start - epoch) / total * 100
        width = max((s.end - s.start) / total * 100, 0.3)
        label = ("&nbsp;" * 2 * depth[s.id]) + html.escape(s.name)
        ms = (s.end - s.start) * 1e3
        err = " err" if s.args.get("error") else ""
        lanes.append(
            f'<div class="lane"><div class="bar{err}" '
            f'style="left:{left:.2f}%;width:{width:.2f}%"></div>'
            f"<span>{label} <span class=\"muted\">{ms:.1f} ms</span></span></div>"
        )
    return "<h2>Timeline</h2>\n" + "\n".join(lanes)


def render_html(
    record: ProvenanceRecord,
    graph=None,
    spans=None,
    dot: Optional[str] = None,
) -> str:
    """One self-contained HTML page for ``record``.

    ``graph`` enables the full witness re-check and (unless ``dot`` is
    given) the highlighted DOT rendering; ``spans`` (a
    :meth:`repro.obs.trace.Tracer.spans` list) adds the stage timeline.
    No external assets are referenced — the page works offline and can
    be attached to a CI run as a single artifact.
    """
    verdict, _ = _check(record, graph)
    if record.witness is None:
        badge = f'<span class="badge warn">{html.escape(verdict)}</span>'
    elif verdict.startswith("FAILED"):
        badge = f'<span class="badge fail">{html.escape(verdict)}</span>'
    else:
        badge = f'<span class="badge ok">{html.escape(verdict)}</span>'

    parts = [
        f"<h1>Analysis provenance: <code>{html.escape(record.graph)}</code></h1>",
        _table(
            ("", ""),
            [
                ("fingerprint", record.fingerprint),
                ("status", _status_line(record)),
                ("cycle time", _fmt(record.cycle_time)),
                ("schema", "repro-provenance-v1"),
            ],
        ),
        f"<p>Witness check: {badge}</p>",
    ]

    parts.append("<h2>Reduction steps</h2>")
    if record.steps:
        parts.append(_table(
            ("#", "kind", "before", "after", "detail"),
            _step_rows(record),
        ))
    else:
        parts.append("<p class='muted'>none recorded</p>")

    parts.append("<h2>Critical-cycle witness</h2>")
    if record.witness is not None:
        witness = record.witness
        parts.append(
            f"<p>{witness.space} space, extracted by "
            f"<code>{html.escape(witness.source)}</code>; the cycle mean "
            "&Sigma;weight/&Sigma;transit re-derives the reported number "
            "in O(|cycle|).</p>"
        )
        parts.append(_table(
            ("arc", "weight", "transit", "channel"),
            _witness_rows(witness),
        ))
        if witness.groups:
            parts.append(_table(
                ("abstract actor", "original members"),
                [(k, ", ".join(v)) for k, v in sorted(witness.groups.items())],
            ))
    else:
        parts.append(
            f"<p class='muted'>{html.escape(record.witness_unavailable or 'unavailable')}</p>"
        )

    if record.tiers:
        parts.append("<h2>Fallback tiers</h2>")
        parts.append(_table(
            ("tier", "status", "reason"),
            [(t.tier, t.status, t.reason or "") for t in record.tiers],
        ))
        if record.degradation_reason:
            parts.append(
                "<p>Degraded because: "
                f"<code>{html.escape(record.degradation_reason)}</code></p>"
            )

    if dot is None and graph is not None:
        from repro.sdf.dot import to_dot

        actors, edges = witness_highlights(record, graph)
        dot = to_dot(graph, highlight_actors=actors, highlight_edges=edges)
    if dot is not None:
        parts.append("<h2>Graph (critical cycle highlighted)</h2>")
        parts.append(
            "<p class='muted'>Graphviz DOT; render with <code>dot -Tsvg</code> "
            "or paste into any Graphviz viewer. The coloured actors/channels "
            "carry the witnessed cycle.</p>"
        )
        parts.append(f"<pre>{html.escape(dot)}</pre>")

    if spans:
        parts.append(_timeline(spans))

    return html_page(f"repro explain: {record.graph}", parts)
