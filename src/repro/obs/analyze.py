"""Trace analytics: span trees, self-time attribution, critical paths.

The tracing layer (:mod:`repro.obs.trace`) *emits* spans; this module
*consumes* them.  It reconstructs the span forest from either export
format — the span-JSONL log (explicit ``parent`` links, including the
cross-process worker lanes :meth:`~repro.obs.trace.Tracer.adopt` folded
into the parent file) or a Chrome ``trace_event`` file (parentage
re-derived by interval containment per ``(pid, tid)`` lane) — and turns
it into answers:

* **self-time attribution** — for every span, the wall time spent in
  the span *itself*, children subtracted; aggregated into a percentile
  table keyed by ``(stage, graph, kernel)`` so many runs fold into one
  ranking of where time actually goes;
* **the critical path** — the root-to-leaf chain of nested spans that
  dominates the wall clock, each hop annotated with its self time;
* **per-lane attribution** — self time per OS process, so a batch run
  shows how much each worker lane actually contributed (the regression
  guard for the ``adopt()`` path);
* **flamegraphs** — collapsed-stack output (``a;b;c <int>`` lines,
  Brendan Gregg's format) loadable by ``flamegraph.pl`` and
  https://www.speedscope.app.

The machine-readable form is the ``repro-trace-summary-v1`` document
(:func:`summarize_traces`), validated by
:func:`repro.obs.check.validate_trace_summary` and produced by the
``repro obs analyze`` / ``repro obs flame`` CLI subcommands.

Structural invariant (checked by the validator): the per-stage self
times partition the forest, so their sum never exceeds the summed root
span durations.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "TRACE_SUMMARY_SCHEMA",
    "SpanNode",
    "build_forest",
    "collapsed_stacks",
    "load_trace",
    "render_summary_text",
    "summarize_traces",
    "write_collapsed",
]

TRACE_SUMMARY_SCHEMA = "repro-trace-summary-v1"

#: Percentiles published per (stage, graph, kernel) key.
PERCENTILES = (50, 90, 99)


# ----------------------------------------------------------------------
# loading: both trace export formats normalise to span rows
# ----------------------------------------------------------------------

def _rows_from_jsonl(text: str) -> List[Dict[str, Any]]:
    rows = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {lineno}: not valid JSON ({error})") from None
        if not isinstance(row, dict) or "id" not in row:
            raise ValueError(f"line {lineno}: not a span row")
        rows.append(row)
    return rows


def _rows_from_chrome(data: Any) -> List[Dict[str, Any]]:
    """Span rows from a Chrome ``trace_event`` object.

    ``X`` events carry no parent link — the exporter encodes nesting
    positionally — so parentage is re-derived by interval containment
    within each ``(pid, tid)`` lane: a span's parent is the innermost
    span whose interval contains it.  ``M`` metadata events contribute
    lane/process names; instants are ignored.
    """
    events = data["traceEvents"] if isinstance(data, dict) else data
    lane_names: Dict[Tuple[int, int], str] = {}
    process_names: Dict[int, str] = {}
    complete = []
    for event in events:
        phase = event.get("ph")
        if phase == "M":
            if event.get("name") == "thread_name":
                lane_names[(event["pid"], event["tid"])] = \
                    event.get("args", {}).get("name", "")
            elif event.get("name") == "process_name":
                process_names[event["pid"]] = \
                    event.get("args", {}).get("name", "")
        elif phase == "X":
            complete.append(event)

    rows: List[Dict[str, Any]] = []
    counter = 0
    by_lane: Dict[Tuple[int, int], List[Dict[str, Any]]] = {}
    for event in complete:
        by_lane.setdefault((event["pid"], event["tid"]), []).append(event)
    for (pid, tid), lane_events in sorted(by_lane.items()):
        # Innermost-containment: sweep by start time, longest-first on
        # ties so a parent always opens before its zero-offset child.
        lane_events.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
        stack: List[Dict[str, Any]] = []
        for event in lane_events:
            start = event["ts"] / 1e6
            end = (event["ts"] + event.get("dur", 0)) / 1e6
            args = dict(event.get("args", {}))
            counter += 1
            span_id = args.pop("span_id", None) or f"chrome.{counter:x}"
            while stack and end > stack[-1]["end"] + 1e-9:
                stack.pop()
            row = {
                "id": span_id,
                "parent": stack[-1]["id"] if stack else None,
                "name": event["name"],
                "pid": pid,
                "tid": tid,
                "start": start,
                "end": end,
                "dur": end - start,
                "cpu": args.pop("cpu_ms", 0) / 1e3 if "cpu_ms" in args else None,
                "args": args,
            }
            rows.append(row)
            stack.append(row)
    for row in rows:
        row.setdefault("lane_name", lane_names.get((row["pid"], row["tid"])))
        row.setdefault("process_name", process_names.get(row["pid"]))
    return rows


def load_trace(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Span rows from either export format, auto-detected by content:
    a JSON document (Chrome trace) or one-span-per-line JSONL."""
    text = pathlib.Path(path).read_text()
    stripped = text.lstrip()
    if stripped.startswith(("{", "[")):
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            data = None
        if isinstance(data, dict) and "traceEvents" in data:
            return _rows_from_chrome(data)
        if isinstance(data, list):
            return _rows_from_chrome(data)
    return _rows_from_jsonl(text)


# ----------------------------------------------------------------------
# forest construction + self-time decomposition
# ----------------------------------------------------------------------

class SpanNode:
    """One span in the reconstructed forest."""

    __slots__ = ("row", "children", "self_seconds")

    def __init__(self, row: Dict[str, Any]) -> None:
        self.row = row
        self.children: List["SpanNode"] = []
        self.self_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.row["name"]

    @property
    def duration(self) -> float:
        return self.row["dur"] or 0.0

    @property
    def pid(self) -> int:
        return self.row["pid"]

    def __repr__(self) -> str:  # pragma: no cover
        return f"SpanNode({self.name!r}, dur={self.duration:.6f})"


def build_forest(rows: Iterable[Dict[str, Any]]) -> List[SpanNode]:
    """Roots of the span forest, children attached and self time
    decomposed (``dur`` minus the children's summed ``dur``, floored at
    zero — overlapping children cannot make a parent's own work
    negative).  Open spans (no ``end``) are skipped: a torn trace still
    analyses.  A row whose parent is missing from the export becomes a
    root (worker lanes adopted without their coordinator, trace
    excerpts)."""
    nodes: Dict[str, SpanNode] = {}
    ordered: List[SpanNode] = []
    for row in rows:
        if row.get("end") is None or row.get("dur") is None:
            continue
        node = SpanNode(row)
        nodes[row["id"]] = node
        ordered.append(node)
    roots: List[SpanNode] = []
    for node in ordered:
        parent = nodes.get(node.row.get("parent"))
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in ordered:
        child_time = sum(child.duration for child in node.children)
        node.self_seconds = max(node.duration - child_time, 0.0)
    return roots


def _walk(roots: Sequence[SpanNode]) -> Iterable[Tuple[SpanNode, List[SpanNode]]]:
    """Every node with its ancestor chain (root first)."""
    stack: List[Tuple[SpanNode, List[SpanNode]]] = [(r, []) for r in roots]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        chain = ancestors + [node]
        for child in node.children:
            stack.append((child, chain))


def _inherited(node: SpanNode, ancestors: Sequence[SpanNode],
               keys: Sequence[str]) -> Optional[str]:
    """The nearest self-or-ancestor span arg under any of ``keys``."""
    for candidate in (node, *reversed(ancestors)):
        args = candidate.row.get("args") or {}
        for key in keys:
            value = args.get(key)
            if value is not None:
                return str(value)
    return None


def _percentile(sorted_values: Sequence[float], q: int) -> float:
    """Nearest-rank percentile over pre-sorted values."""
    rank = max(math.ceil(q / 100 * len(sorted_values)), 1)
    return sorted_values[rank - 1]


# ----------------------------------------------------------------------
# the summary document
# ----------------------------------------------------------------------

def summarize_traces(
    traces: Sequence[Tuple[str, Sequence[Dict[str, Any]]]],
) -> Dict[str, Any]:
    """Aggregate one or more traces into a ``repro-trace-summary-v1``.

    ``traces`` is a list of ``(source_name, span_rows)`` pairs — many
    runs fold into one percentile table, keyed by
    ``(stage, graph, kernel)`` where ``graph``/``kernel`` are inherited
    from the nearest annotated ancestor span.  The critical path is
    extracted from the single longest root span across all sources.
    """
    stages: Dict[Tuple[str, Optional[str], Optional[str]], Dict[str, Any]] = {}
    lanes: Dict[int, Dict[str, Any]] = {}
    all_roots: List[Tuple[str, SpanNode]] = []
    total_spans = 0
    skipped_open = 0
    wall_seconds = 0.0

    for source, rows in traces:
        rows = list(rows)
        skipped_open += sum(1 for r in rows if r.get("end") is None)
        roots = build_forest(rows)
        all_roots.extend((source, root) for root in roots)
        wall_seconds += sum(root.duration for root in roots)
        for node, ancestors in _walk(roots):
            total_spans += 1
            key = (
                node.name,
                _inherited(node, ancestors, ("graph",)),
                _inherited(node, ancestors, ("kernel_used", "kernel")),
            )
            bucket = stages.setdefault(key, {
                "count": 0, "total": 0.0, "self": 0.0, "durations": [],
            })
            bucket["count"] += 1
            bucket["total"] += node.duration
            bucket["self"] += node.self_seconds
            bucket["durations"].append(node.duration)
            lane = lanes.setdefault(node.pid, {
                "spans": 0, "self": 0.0,
                "name": node.row.get("process_name"),
            })
            lane["spans"] += 1
            lane["self"] += node.self_seconds

    stage_rows = []
    for (stage, graph, kernel), bucket in stages.items():
        durations = sorted(bucket["durations"])
        row = {
            "stage": stage,
            "graph": graph,
            "kernel": kernel,
            "count": bucket["count"],
            "total_seconds": bucket["total"],
            "self_seconds": bucket["self"],
            "self_fraction": (bucket["self"] / wall_seconds
                              if wall_seconds else 0.0),
            "max_seconds": durations[-1],
        }
        for q in PERCENTILES:
            row[f"p{q}_seconds"] = _percentile(durations, q)
        stage_rows.append(row)
    stage_rows.sort(key=lambda r: (-r["self_seconds"], r["stage"]))

    critical_path: List[Dict[str, Any]] = []
    critical_source = None
    if all_roots:
        critical_source, node = max(all_roots, key=lambda sr: sr[1].duration)
        depth = 0
        while node is not None:
            critical_path.append({
                "name": node.name,
                "span": node.row["id"],
                "depth": depth,
                "duration_seconds": node.duration,
                "self_seconds": node.self_seconds,
            })
            node = max(node.children, key=lambda c: c.duration, default=None)
            depth += 1

    return {
        "schema": TRACE_SUMMARY_SCHEMA,
        "sources": [source for source, _ in traces],
        "spans": total_spans,
        "open_spans_skipped": skipped_open,
        "roots": len(all_roots),
        "processes": len(lanes),
        "wall_seconds": wall_seconds,
        "stages": stage_rows,
        "lanes": [
            {
                "pid": pid,
                "name": lane["name"] or f"pid-{pid}",
                "spans": lane["spans"],
                "self_seconds": lane["self"],
            }
            for pid, lane in sorted(lanes.items())
        ],
        "critical_path": critical_path,
        "critical_path_source": critical_source,
        "critical_path_seconds": (
            critical_path[0]["duration_seconds"] if critical_path else 0.0
        ),
    }


def summarize_files(paths: Sequence[Union[str, pathlib.Path]]) -> Dict[str, Any]:
    """:func:`summarize_traces` over trace files of either format."""
    return summarize_traces([(str(path), load_trace(path)) for path in paths])


# ----------------------------------------------------------------------
# flamegraphs (collapsed-stack format)
# ----------------------------------------------------------------------

def collapsed_stacks(
    traces: Sequence[Tuple[str, Sequence[Dict[str, Any]]]],
) -> List[str]:
    """Collapsed-stack lines: ``root;child;leaf <self-µs>`` per unique
    stack, integer microseconds of *self* time, aggregated across all
    sources (the input to ``flamegraph.pl`` / speedscope).  Stacks with
    zero accumulated self time are dropped — they would render as
    invisible slivers."""
    totals: Dict[Tuple[str, ...], int] = {}
    for _, rows in traces:
        for node, ancestors in _walk(build_forest(rows)):
            stack = tuple(
                a.name.replace(";", ":") for a in (*ancestors, node)
            )
            totals[stack] = totals.get(stack, 0) + round(node.self_seconds * 1e6)
    return [
        ";".join(stack) + f" {value}"
        for stack, value in sorted(totals.items())
        if value > 0
    ]


def write_collapsed(paths: Sequence[Union[str, pathlib.Path]],
                    output) -> int:
    """Write collapsed stacks for trace files; returns the line count."""
    lines = collapsed_stacks([(str(p), load_trace(p)) for p in paths])
    pathlib.Path(output).write_text("\n".join(lines) + "\n" if lines else "")
    return len(lines)


# ----------------------------------------------------------------------
# text rendering (the `repro obs analyze` terminal report)
# ----------------------------------------------------------------------

def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.1f}ms"


def render_summary_text(summary: Dict[str, Any], top: int = 20) -> str:
    lines = [
        f"trace summary over {len(summary['sources'])} source(s): "
        f"{summary['spans']} span(s), {summary['roots']} root(s), "
        f"{summary['processes']} process(es), "
        f"wall {summary['wall_seconds']:.4f}s",
    ]
    if summary.get("open_spans_skipped"):
        lines.append(f"  ({summary['open_spans_skipped']} open span(s) "
                     "skipped: trace ended mid-run)")

    lines.append("")
    lines.append("self-time attribution by (stage, graph, kernel)")
    header = (f"  {'stage':<28} {'graph':<16} {'kernel':<8} {'n':>4} "
              f"{'self':>10} {'total':>10} {'p50':>9} {'p90':>9} {'max':>9}")
    lines.append(header)
    shown = summary["stages"][:top]
    for row in shown:
        lines.append(
            f"  {row['stage']:<28} {(row['graph'] or '-'):<16} "
            f"{(row['kernel'] or '-'):<8} {row['count']:>4} "
            f"{_ms(row['self_seconds']):>10} {_ms(row['total_seconds']):>10} "
            f"{_ms(row['p50_seconds']):>9} {_ms(row['p90_seconds']):>9} "
            f"{_ms(row['max_seconds']):>9}"
        )
    if len(summary["stages"]) > len(shown):
        lines.append(f"  ... {len(summary['stages']) - len(shown)} more stage(s)")

    if len(summary.get("lanes", ())) > 1:
        lines.append("")
        lines.append("per-process attribution")
        for lane in summary["lanes"]:
            lines.append(f"  {lane['name']:<24} {lane['spans']:>5} span(s) "
                         f"{_ms(lane['self_seconds']):>10} self")

    if summary["critical_path"]:
        lines.append("")
        lines.append(
            f"critical path ({summary['critical_path_seconds']:.4f}s, "
            f"from {summary['critical_path_source']})"
        )
        for hop in summary["critical_path"]:
            indent = "  " * hop["depth"]
            lines.append(
                f"  {indent}{hop['name']}  "
                f"{_ms(hop['duration_seconds'])} "
                f"(self {_ms(hop['self_seconds'])})"
            )
    return "\n".join(lines)
