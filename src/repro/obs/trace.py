"""Structured tracing: nested spans with live progress counters.

A :class:`Tracer` records *spans* — named, timed intervals that nest —
and *instant events*.  Installation is global (``with tracer:``), the
nesting structure is per-context (a :mod:`contextvars` variable), so
concurrent threads build independent, correctly nested span stacks that
land in one trace with one lane (``tid``) per thread.

Tracing is **off by default** and engineered for near-zero disabled
overhead: :func:`span` and the :meth:`repro.analysis.deadline.Deadline.
checkpoint` hook first read one module global and return a shared no-op
object when no tracer is installed (measured in
``benchmarks/bench_obs.py``; budget ≤ 2% on the MCM hot loop).

Progress piggybacking
---------------------
Every analysis hot loop already registers a *live* progress dict via
``Deadline.checkpoint(stage, progress)`` and mutates its counters in
place.  The checkpoint hook attaches that same dict (by reference) to
the innermost open span; when the span closes, the counters' final
values are snapshotted into the span's ``args["progress"]`` — so traces
show e.g. how many Karp levels or simulation events a stage ran,
without any per-iteration tracing cost.

Exports
-------
* :meth:`Tracer.write_jsonl` — one span per line, with stable ids and
  parent links (the machine-readable form; schema in
  ``docs/observability.md``).
* :meth:`Tracer.write_chrome_trace` — Chrome ``trace_event`` JSON,
  loadable in ``chrome://tracing`` and https://ui.perfetto.dev.
* :meth:`Tracer.adopt` — merge span dicts exported by another process
  (the batch runner's per-worker tracers) into this trace under their
  own process lane.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Span",
    "Tracer",
    "add_event",
    "current_span",
    "current_span_id",
    "current_tracer",
    "note_checkpoint",
    "span",
]

#: The installed tracer, or ``None`` (the common, fast case).  A module
#: global — not a contextvar — so worker threads spawned by executors
#: (which do not inherit the submitter's context) still trace.
_tracer: Optional["Tracer"] = None

#: The innermost open span of the *current* context (nesting is
#: per-thread/per-context even though the tracer is global).
_current: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro-obs-span", default=None
)

#: Monotonic tracer-instance serial, part of every span id: each job in
#: a process-pool worker builds a fresh ``Tracer``, and merged exports
#: must never see the same id twice (``repro obs check`` rejects it).
_tracer_serial = 0
_serial_lock = threading.Lock()


class _NullSpan:
    """The shared no-op returned while tracing is disabled."""

    __slots__ = ()
    id: Optional[str] = None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args: Any) -> "_NullSpan":
        return self

    def __repr__(self) -> str:  # pragma: no cover
        return "<no-op span (tracing disabled)>"


_NULL_SPAN = _NullSpan()


class Span:
    """One named, timed interval in a trace (a context manager).

    Spans are created by :func:`span` (never directly) and close on
    ``with``-block exit — including exceptional exits, which stamp the
    exception type into ``args["error"]``.  ``start``/``end`` are
    seconds relative to the tracer's epoch; ``cpu`` is thread CPU time
    consumed between open and close; ``mem_peak`` is the peak traced
    allocation (bytes, inclusive of children) when the tracer profiles
    memory.
    """

    __slots__ = (
        "id", "name", "args", "parent_id", "tid", "pid",
        "start", "end", "cpu", "mem_peak",
        "_tracer", "_parent", "_token", "_cpu_start", "_progress", "closed",
    )

    def __init__(self, tracer: "Tracer", span_id: str, name: str,
                 args: Dict[str, Any], parent: Optional["Span"], tid: int):
        self.id = span_id
        self.name = name
        self.args = args
        self._parent = parent
        self.parent_id = None if parent is None else parent.id
        self.tid = tid
        self.pid = tracer.pid
        self.start = tracer._now()
        self.end: Optional[float] = None
        self.cpu: Optional[float] = None
        self.mem_peak: int = 0
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None
        self._cpu_start = time.thread_time()
        self._progress: List[Tuple[str, Dict[str, Any]]] = []
        self.closed = False

    # -- public span surface -------------------------------------------

    def set(self, **args: Any) -> "Span":
        """Attach key/value annotations to this span (chainable)."""
        self.args.update(args)
        return self

    def attach_progress(self, stage: str, progress: Dict[str, Any]) -> None:
        """Hold ``progress`` *by reference*; its final counter values are
        snapshotted into ``args["progress"][stage]`` when the span
        closes (this is what ``Deadline.checkpoint`` piggybacks on)."""
        for index, (existing, ref) in enumerate(self._progress):
            if existing == stage and ref is progress:
                return
        self._progress.append((stage, progress))

    def note_peak(self, peak_bytes: int) -> None:
        if peak_bytes > self.mem_peak:
            self.mem_peak = peak_bytes

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._end_span(self, exc_type, exc)
        return False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "parent": self.parent_id,
            "name": self.name,
            "pid": self.pid,
            "tid": self.tid,
            "start": self.start,
            "end": self.end,
            "dur": self.duration,
            "cpu": self.cpu,
            "mem_peak": self.mem_peak or None,
            "args": self.args,
        }

    def __repr__(self) -> str:
        state = f"{self.duration:.6f}s" if self.closed else "open"
        return f"Span({self.name!r}, id={self.id}, {state})"


class Tracer:
    """Collects spans and instant events; exports JSONL / Chrome traces.

    ``with tracer:`` installs the tracer globally (restoring whatever —
    usually nothing — was installed before on exit); :func:`span` then
    records into it from any thread.  All mutation is lock-guarded, so
    the batch runner's thread backend can trace every worker into one
    file, one Chrome lane per thread.

    ``profile=True`` additionally records per-span thread-CPU time and
    (when :mod:`tracemalloc` is tracing — :mod:`repro.obs.profile`
    starts it) peak traced memory, attributed inclusively per span.
    """

    def __init__(self, profile: bool = False) -> None:
        self.profile = profile
        self.pid = os.getpid()
        # Span ids must stay unique when traces merge: across processes
        # (the pid) *and* across tracer instances within one process —
        # a process-pool worker builds a fresh tracer per job, so a
        # per-tracer counter alone would collide on adoption.
        with _serial_lock:
            global _tracer_serial
            _tracer_serial += 1
            self._id_prefix = f"{self.pid:x}.{_tracer_serial:x}"
        self._epoch = time.perf_counter()
        #: Wall-clock instant of the perf_counter epoch — the anchor
        #: :meth:`adopt` uses to rebase spans from a foreign tracer
        #: (whose relative clock starts at *its* construction) onto
        #: this tracer's timeline.
        self.epoch_wall = time.time()
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._events: List[Dict[str, Any]] = []
        self._foreign: List[Dict[str, Any]] = []
        self._counter = 0
        self._lanes: Dict[int, int] = {}
        self._lane_names: Dict[Tuple[int, int], str] = {}
        self._open = 0
        self._previous: Optional[Tracer] = None

    # -- installation ---------------------------------------------------

    def install(self) -> "Tracer":
        """Make this the process-wide tracer (see also ``with tracer:``)."""
        global _tracer
        self._previous = _tracer
        _tracer = self
        return self

    def uninstall(self) -> None:
        global _tracer
        if _tracer is self:
            _tracer = self._previous
        self._previous = None

    def __enter__(self) -> "Tracer":
        return self.install()

    def __exit__(self, *exc) -> bool:
        self.uninstall()
        return False

    # -- span lifecycle (called via the module-level helpers) -----------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _lane(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            lane = self._lanes.get(ident)
            if lane is None:
                lane = len(self._lanes)
                self._lanes[ident] = lane
                name = "main" if lane == 0 else f"worker-{lane}"
                self._lane_names[(self.pid, lane)] = name
            return lane

    def _begin_span(self, name: str, args: Dict[str, Any]) -> Span:
        parent = _current.get()
        if parent is not None and parent._tracer is not self:
            # A span from another tracer — a forked worker inheriting
            # the coordinator's context, or a stale contextvar across
            # install() cycles.  Its clock and id space are not ours;
            # linking to it would corrupt the exported forest.
            parent = None
        with self._lock:
            self._counter += 1
            span_id = f"{self._id_prefix}.{self._counter:x}"
            self._open += 1
        new = Span(self, span_id, name, args, parent, self._lane())
        if self.profile:
            peak = _traced_peak()
            if peak is not None:
                if parent is not None:
                    parent.note_peak(peak)
                _reset_peak()
        new._token = _current.set(new)
        return new

    def _end_span(self, span: Span, exc_type, exc) -> None:
        if span.closed:
            return
        span.closed = True
        span.end = self._now()
        span.cpu = time.thread_time() - span._cpu_start
        if exc_type is not None:
            span.args["error"] = exc_type.__name__
            if exc is not None and str(exc):
                span.args.setdefault("error_message", str(exc)[:200])
        if span._progress:
            snapshot = span.args.setdefault("progress", {})
            for stage, ref in span._progress:
                snapshot[stage] = dict(ref)
        if self.profile:
            peak = _traced_peak()
            if peak is not None:
                span.note_peak(peak)
                _reset_peak()
            if span._parent is not None:
                span._parent.note_peak(span.mem_peak)
        if span._token is not None:
            try:
                _current.reset(span._token)
            except ValueError:
                # Closed from a different context (e.g. a generator
                # finalised elsewhere): restore the parent explicitly.
                _current.set(span._parent)
        with self._lock:
            self._spans.append(span)
            self._open -= 1

    def _add_event(self, name: str, args: Dict[str, Any]) -> None:
        parent = _current.get()
        event = {
            "name": name,
            "ts": self._now(),
            "pid": self.pid,
            "tid": self._lane(),
            "span": None if parent is None else parent.id,
            "args": args,
        }
        with self._lock:
            self._events.append(event)

    # -- inspection / merging -------------------------------------------

    @property
    def open_spans(self) -> int:
        """Spans begun but not yet closed (0 after well-formed use)."""
        with self._lock:
            return self._open

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def export_spans(self) -> List[Dict[str, Any]]:
        """All spans (local + adopted) as plain dicts, start-ordered —
        the payload a batch worker ships back to the parent."""
        with self._lock:
            rows = [s.as_dict() for s in self._spans] + list(self._foreign)
        return sorted(rows, key=lambda r: (r["pid"], r["start"]))

    def adopt(self, spans: Iterable[Dict[str, Any]],
              lane_name: Optional[str] = None,
              epoch: Optional[float] = None) -> int:
        """Merge span dicts exported by another tracer (typically a
        worker process) into this trace.  Foreign spans keep their own
        ``pid``, so Chrome/Perfetto shows each worker as its own process
        lane; ``lane_name`` labels that lane.  Returns the adopted count.

        ``epoch`` is the foreign tracer's :attr:`epoch_wall`.  Span
        times are relative to their own tracer's construction, so two
        jobs traced by consecutive tracers in one worker would both sit
        at t≈0 and overlap on the lane; rebasing through the wall clock
        puts every adopted span where it actually ran on this tracer's
        timeline.
        """
        adopted = list(spans)
        if epoch is not None:
            offset = epoch - self.epoch_wall
            rebased = []
            for row in adopted:
                row = dict(row)
                row["start"] = row["start"] + offset
                if row.get("end") is not None:
                    row["end"] = row["end"] + offset
                rebased.append(row)
            adopted = rebased
        with self._lock:
            self._foreign.extend(adopted)
            if lane_name:
                for row in adopted:
                    key = (row["pid"], row["tid"])
                    self._lane_names.setdefault(key, lane_name)
        return len(adopted)

    # -- exports --------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """One span dict per line (see ``docs/observability.md`` for the
        schema).  Returns the number of lines written."""
        rows = self.export_spans()
        with open(path, "w") as handle:
            for row in rows:
                handle.write(json.dumps(row, default=str) + "\n")
        return len(rows)

    def chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome ``trace_event`` object (``X`` complete
        events for spans, ``i`` instants, ``M`` metadata lane names)."""
        trace_events: List[Dict[str, Any]] = []
        seen_lanes: Dict[Tuple[int, int], str] = {}
        for row in self.export_spans():
            end = row["end"] if row["end"] is not None else row["start"]
            args = dict(row["args"])
            args["span_id"] = row["id"]
            if row.get("cpu") is not None:
                args["cpu_ms"] = round(row["cpu"] * 1e3, 3)
            if row.get("mem_peak"):
                args["mem_peak_kb"] = round(row["mem_peak"] / 1024, 1)
            trace_events.append({
                "name": row["name"],
                "cat": "analysis",
                "ph": "X",
                "ts": round(row["start"] * 1e6, 1),
                "dur": round((end - row["start"]) * 1e6, 1),
                "pid": row["pid"],
                "tid": row["tid"],
                "args": args,
            })
            seen_lanes.setdefault((row["pid"], row["tid"]), "")
        for event in self.events():
            trace_events.append({
                "name": event["name"],
                "cat": "analysis",
                "ph": "i",
                "s": "t",
                "ts": round(event["ts"] * 1e6, 1),
                "pid": event["pid"],
                "tid": event["tid"],
                "args": dict(event["args"]),
            })
            seen_lanes.setdefault((event["pid"], event["tid"]), "")
        with self._lock:
            lane_names = dict(self._lane_names)
        for (pid, tid) in seen_lanes:
            name = lane_names.get((pid, tid)) or (
                "main" if tid == 0 else f"worker-{tid}"
            )
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": name},
            })
        pids = sorted({pid for pid, _ in seen_lanes})
        for pid in pids:
            label = "repro" if pid == self.pid else f"repro-worker[{pid}]"
            trace_events.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path) -> int:
        """Write :meth:`chrome_trace` JSON; returns the event count."""
        trace = self.chrome_trace()
        with open(path, "w") as handle:
            json.dump(trace, handle, indent=None, default=str)
            handle.write("\n")
        return len(trace["traceEvents"])

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"Tracer(spans={len(self._spans)}, open={self._open}, "
                f"events={len(self._events)}, profile={self.profile})"
            )


# ----------------------------------------------------------------------
# module-level fast-path API
# ----------------------------------------------------------------------

def span(name: str, **args: Any):
    """Open a span under the installed tracer (``with span("x"): …``).

    The disabled path — no tracer installed — is one global read and an
    identity check, returning a shared no-op object.
    """
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer._begin_span(name, args)


def add_event(name: str, **args: Any) -> None:
    """Record an instant event (e.g. a cache hit) at the current time."""
    tracer = _tracer
    if tracer is None:
        return
    tracer._add_event(name, args)


def note_checkpoint(stage: str, progress: Dict[str, Any]) -> None:
    """The ``Deadline.checkpoint`` piggyback: attach the hot loop's live
    progress dict to the innermost open span (no-op when disabled)."""
    if _tracer is None:
        return
    current = _current.get()
    if current is not None:
        current.attach_progress(stage, progress)


def current_tracer() -> Optional[Tracer]:
    """The installed tracer, or ``None`` when tracing is disabled."""
    return _tracer


def current_span() -> Optional[Span]:
    """The innermost open span of this context, or ``None``."""
    return _current.get()


def current_span_id() -> Optional[str]:
    """Id of the innermost open span (for stamping outcome records)."""
    current = _current.get()
    return None if current is None else current.id


def _traced_peak() -> Optional[int]:
    import tracemalloc

    if not tracemalloc.is_tracing():
        return None
    return tracemalloc.get_traced_memory()[1]


def _reset_peak() -> None:
    import tracemalloc

    if tracemalloc.is_tracing():  # pragma: no branch
        tracemalloc.reset_peak()
