"""Structural A/B diff of telemetry documents.

Given two ``repro-trace-summary-v1`` documents (from
:mod:`repro.obs.analyze`) or two ``repro-metrics-v1`` snapshots (from
:mod:`repro.obs.metrics`), produce the per-key delta table a reviewer
actually wants from "did my change make it faster?": keys matched
structurally (stage/graph/kernel for traces, name/type/labels for
metrics), absolute and relative deltas per key, and keys present on
only one side reported as ``added``/``removed`` instead of silently
dropped.

Relative deltas get the same *noise-floor* treatment
``benchmarks/bench_common.py`` applies to A/B overhead measurements:
two runs of the same code differ by scheduler jitter, so a relative
change whose magnitude sits below the floor (default 5%) is published
as ``unchanged`` with the raw measurement preserved in
``measured_relative`` — the diff never cries wolf over noise, and
never hides the raw number either.  :func:`apply_noise_floor` is the
single scalar-clamp primitive, shared with ``bench_common.noise_floored``.

The machine-readable form is ``repro-trace-diff-v1``
(:func:`diff_documents`), validated by
:func:`repro.obs.check.validate_trace_diff`; renderings are text
(:func:`render_diff_text`), JSON, and one self-contained HTML page
(:func:`render_diff_html`, built on :func:`repro.obs.report.html_page`)
— the ``repro obs diff`` subcommand.
"""

from __future__ import annotations

import html
import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.report import html_page, html_table

__all__ = [
    "TRACE_DIFF_SCHEMA",
    "apply_noise_floor",
    "diff_documents",
    "diff_files",
    "render_diff_html",
    "render_diff_text",
]

TRACE_DIFF_SCHEMA = "repro-trace-diff-v1"

#: Relative changes below this magnitude are indistinguishable from
#: run-to-run jitter on a shared host.
DEFAULT_NOISE_FLOOR = 0.05


def apply_noise_floor(value: float, floor: float = 0.0) -> Tuple[float, bool]:
    """Clamp ``value`` at ``floor``; returns ``(published, clamped)``.

    The scalar primitive behind both noise treatments in the repo: a
    derived cost that cannot physically be negative (an overhead
    fraction — ``bench_common.noise_floored``) is clamped from below,
    and a relative delta too small to mean anything (this module) is
    clamped toward zero by passing its magnitude through the same
    floor.  Centralising the clamp keeps "what counts as noise"
    consistent between the benchmark writers and the diff reader.
    """
    if value < floor:
        return floor, True
    return value, False


# ----------------------------------------------------------------------
# key extraction per document kind
# ----------------------------------------------------------------------

def _kind_of(doc: Dict[str, Any]) -> str:
    schema = doc.get("schema")
    if schema == "repro-trace-summary-v1":
        return "trace-summary"
    if schema == "repro-metrics-v1":
        return "metrics"
    raise ValueError(
        f"cannot diff a {schema!r} document: expected repro-trace-summary-v1 "
        "or repro-metrics-v1"
    )


def _trace_values(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """``key -> {self_seconds, total_seconds, count}`` for a summary."""
    out: Dict[str, Dict[str, float]] = {}
    for row in doc.get("stages", ()):
        key = "/".join((
            row["stage"],
            row.get("graph") or "-",
            row.get("kernel") or "-",
        ))
        out[key] = {
            "value": row["self_seconds"],
            "total": row["total_seconds"],
            "count": row["count"],
        }
    return out


def _metric_values(doc: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    """``key -> {value}`` for a metrics snapshot.  Counters and gauges
    contribute one key per label set; a histogram contributes its
    ``count`` and ``sum`` as two keys (the shape a reader can act on
    without re-deriving bucket arithmetic)."""
    out: Dict[str, Dict[str, float]] = {}
    for metric in doc.get("metrics", ()):
        name = metric["name"]
        for sample in metric.get("samples", ()):
            labels = sample.get("labels") or {}
            label_part = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            base = f"{name}{{{label_part}}}" if label_part else name
            if metric.get("type") == "histogram":
                out[f"{base}.count"] = {"value": float(sample["count"])}
                out[f"{base}.sum"] = {"value": float(sample["sum"])}
            else:
                out[base] = {"value": float(sample["value"])}
    return out


# ----------------------------------------------------------------------
# the diff document
# ----------------------------------------------------------------------

def diff_documents(
    a: Dict[str, Any],
    b: Dict[str, Any],
    *,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
    a_label: str = "a",
    b_label: str = "b",
) -> Dict[str, Any]:
    """The ``repro-trace-diff-v1`` document for ``b`` relative to ``a``.

    Both inputs must be the same kind.  Per-key rows carry the raw
    values, the absolute delta and the noise-floored relative delta;
    ``direction`` is one of ``regressed|improved|unchanged|added|removed``
    where lower is always better for trace self-time and direction is
    reported neutrally (sign of the delta) for metrics.
    """
    kind = _kind_of(a)
    if _kind_of(b) != kind:
        raise ValueError(
            f"cannot diff a {_kind_of(a)} against a {_kind_of(b)}"
        )
    extract = _trace_values if kind == "trace-summary" else _metric_values
    va, vb = extract(a), extract(b)

    rows: List[Dict[str, Any]] = []
    for key in sorted(set(va) | set(vb)):
        in_a, in_b = key in va, key in vb
        row: Dict[str, Any] = {
            "key": key,
            "a": va[key]["value"] if in_a else None,
            "b": vb[key]["value"] if in_b else None,
        }
        if not in_a:
            row.update(delta=None, relative=None, direction="added")
        elif not in_b:
            row.update(delta=None, relative=None, direction="removed")
        else:
            delta = vb[key]["value"] - va[key]["value"]
            row["delta"] = delta
            if va[key]["value"]:
                measured = delta / abs(va[key]["value"])
                magnitude, clamped = apply_noise_floor(
                    abs(measured), noise_floor
                )
                if clamped:
                    # below the floor: published as no change, raw kept
                    row["relative"] = 0.0
                    row["measured_relative"] = measured
                    row["noise_floored"] = True
                    row["direction"] = "unchanged"
                else:
                    row["relative"] = measured
                    row["direction"] = (
                        "regressed" if measured > 0 else "improved"
                    )
            else:
                row["relative"] = None
                row["direction"] = (
                    "unchanged" if delta == 0
                    else ("regressed" if delta > 0 else "improved")
                )
        rows.append(row)

    # the loudest changes first; added/removed after, then unchanged
    order = {"regressed": 0, "improved": 1, "added": 2, "removed": 3,
             "unchanged": 4}
    rows.sort(key=lambda r: (
        order[r["direction"]],
        -abs(r.get("relative") or 0.0),
        r["key"],
    ))

    total_a = sum(v["value"] for v in va.values())
    total_b = sum(v["value"] for v in vb.values())
    return {
        "schema": TRACE_DIFF_SCHEMA,
        "kind": kind,
        "a": a_label,
        "b": b_label,
        "noise_floor": noise_floor,
        "rows": rows,
        "totals": {
            "a": total_a,
            "b": total_b,
            "delta": total_b - total_a,
            "relative": ((total_b - total_a) / abs(total_a)
                         if total_a else None),
        },
        "counts": {
            direction: sum(1 for r in rows if r["direction"] == direction)
            for direction in order
        },
    }


def diff_files(
    path_a: Union[str, pathlib.Path],
    path_b: Union[str, pathlib.Path],
    *,
    noise_floor: float = DEFAULT_NOISE_FLOOR,
) -> Dict[str, Any]:
    """:func:`diff_documents` over two JSON files, labelled by path."""
    a = json.loads(pathlib.Path(path_a).read_text())
    b = json.loads(pathlib.Path(path_b).read_text())
    return diff_documents(
        a, b, noise_floor=noise_floor,
        a_label=str(path_a), b_label=str(path_b),
    )


# ----------------------------------------------------------------------
# renderings
# ----------------------------------------------------------------------

def _fmt_value(value: Optional[float], kind: str) -> str:
    if value is None:
        return "-"
    if kind == "trace-summary":
        return f"{value * 1e3:.1f}ms"
    return f"{value:g}"


def _fmt_rel(row: Dict[str, Any]) -> str:
    if row["direction"] in ("added", "removed"):
        return row["direction"]
    if row.get("noise_floored"):
        return f"~0% (measured {row['measured_relative']:+.1%})"
    if row.get("relative") is None:
        return "-"
    return f"{row['relative']:+.1%}"


def render_diff_text(diff: Dict[str, Any], top: int = 40) -> str:
    """The terminal table ``repro obs diff`` prints."""
    kind = diff["kind"]
    counts = diff["counts"]
    lines = [
        f"{kind} diff: {diff['a']} -> {diff['b']} "
        f"(noise floor {diff['noise_floor']:.0%})",
        f"  {counts['regressed']} regressed, {counts['improved']} improved, "
        f"{counts['added']} added, {counts['removed']} removed, "
        f"{counts['unchanged']} unchanged",
        "",
        f"  {'key':<48} {'a':>10} {'b':>10} {'change':>26}",
    ]
    shown = diff["rows"][:top]
    for row in shown:
        lines.append(
            f"  {row['key']:<48} {_fmt_value(row['a'], kind):>10} "
            f"{_fmt_value(row['b'], kind):>10} {_fmt_rel(row):>26}"
        )
    if len(diff["rows"]) > len(shown):
        lines.append(f"  ... {len(diff['rows']) - len(shown)} more row(s)")
    totals = diff["totals"]
    rel = (f" ({totals['relative']:+.1%})"
           if totals.get("relative") is not None else "")
    lines.append("")
    lines.append(
        f"total: {_fmt_value(totals['a'], kind)} -> "
        f"{_fmt_value(totals['b'], kind)}{rel}"
    )
    return "\n".join(lines)


def render_diff_html(diff: Dict[str, Any]) -> str:
    """One self-contained HTML page for the diff (CI artefact style)."""
    kind = diff["kind"]
    counts = diff["counts"]
    badge_class = "fail" if counts["regressed"] else "ok"
    badge_text = (
        f"{counts['regressed']} regressed" if counts["regressed"]
        else "no regressions above the noise floor"
    )
    parts = [
        f"<h1>Telemetry diff: <code>{html.escape(str(diff['a']))}</code> "
        f"&rarr; <code>{html.escape(str(diff['b']))}</code></h1>",
        f"<p><span class='badge {badge_class}'>{html.escape(badge_text)}</span> "
        f"<span class='muted'>{html.escape(kind)}, noise floor "
        f"{diff['noise_floor']:.0%}</span></p>",
        html_table(
            ("key", "a", "b", "delta", "change", "direction"),
            [
                (
                    row["key"],
                    _fmt_value(row["a"], kind),
                    _fmt_value(row["b"], kind),
                    _fmt_value(row.get("delta"), kind),
                    _fmt_rel(row),
                    row["direction"],
                )
                for row in diff["rows"]
            ],
        ),
    ]
    totals = diff["totals"]
    rel = (f" ({totals['relative']:+.1%})"
           if totals.get("relative") is not None else "")
    parts.append(
        f"<p>Total: {html.escape(_fmt_value(totals['a'], kind))} &rarr; "
        f"{html.escape(_fmt_value(totals['b'], kind))}{html.escape(rel)}</p>"
    )
    return html_page("repro obs diff", parts)
