"""A zero-dependency metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` unifies the stats previously siloed in
``CacheStats`` (hit/miss/eviction/coalesced/errors), the batch runner's
retry/quarantine/resume counts, the fallback-tier outcomes of
:class:`repro.analysis.resilience.AnalysisPolicy` and the lint engine's
per-rule fire counts — behind two exporters:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus text
  exposition format (``# TYPE``/``# HELP`` headers, cumulative
  histogram buckets), scrape- and ``promtool``-compatible;
* :meth:`MetricsRegistry.as_dict` — a JSON-stable snapshot
  (``repro-metrics-v1``) that also round-trips through
  :meth:`MetricsRegistry.merge`, which is how per-process batch workers
  are aggregated into one exported registry.

Metrics are always on (an increment is a dict probe and an int add
under a lock, at per-analysis — not per-iteration — granularity);
*collectors* (:meth:`MetricsRegistry.register_collector`) let pull-style
sources such as a live :class:`~repro.analysis.cache.CacheStats`
refresh gauges only at export time, Prometheus-client style.

>>> registry = MetricsRegistry()
>>> results = registry.counter("repro_batch_results_total",
...                            "Batch outcomes.", labels=("status",))
>>> results.labels(status="ok").inc()
>>> registry.value("repro_batch_results_total", status="ok")
1.0
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]

SCHEMA = "repro-metrics-v1"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: seconds, log-spaced from 100 µs to 100 s.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 100.0,
)


class _Child:
    """One labelled time series of a metric family."""

    __slots__ = ("_family", "_key")

    def __init__(self, family: "_Metric", key: Tuple[str, ...]):
        self._family = family
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._family._update(self._key, amount, mode="add")

    def dec(self, amount: float = 1.0) -> None:
        self._family._update(self._key, -amount, mode="add")

    def set(self, value: float) -> None:
        self._family._update(self._key, value, mode="set")

    def observe(self, value: float) -> None:
        self._family._observe(self._key, value)


class _Metric:
    """Shared machinery of one metric family (all its label children)."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labels: Tuple[str, ...]):
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = labels
        self._series: Dict[Tuple[str, ...], Any] = {}

    # -- label plumbing -------------------------------------------------

    def labels(self, **labels: Any) -> _Child:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        return _Child(self, key)

    def _default_child(self) -> _Child:
        if self.label_names:
            raise ValueError(
                f"metric {self.name!r} is labelled {self.label_names}; "
                "use .labels(...)"
            )
        return _Child(self, ())

    # -- value plumbing (all under the registry lock) -------------------

    def _update(self, key: Tuple[str, ...], amount: float, mode: str) -> None:
        if self.kind == "counter" and (mode == "set" or amount < 0):
            raise ValueError(f"counter {self.name!r} can only increase")
        if self.kind == "histogram":
            raise ValueError(f"histogram {self.name!r} needs .observe()")
        with self._registry._lock:
            if mode == "set":
                self._series[key] = float(amount)
            else:
                self._series[key] = self._series.get(key, 0.0) + amount

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        raise ValueError(f"{self.kind} {self.name!r} does not support observe()")

    def _get(self, key: Tuple[str, ...]) -> Any:
        with self._registry._lock:
            return self._series.get(key)

    # -- convenience when unlabelled ------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def value(self, **labels: Any):
        """Current value of one series (None when never touched)."""
        key = tuple(str(labels[n]) for n in self.label_names)
        return self._get(key)

    # -- export ---------------------------------------------------------

    def _samples(self) -> List[Dict[str, Any]]:
        with self._registry._lock:
            series = dict(self._series)
        rows = []
        for key in sorted(series):
            rows.append({
                "labels": dict(zip(self.label_names, key)),
                "value": series[key],
            })
        return rows

    def _merge_sample(self, labels: Dict[str, str], sample: Dict[str, Any]) -> None:
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._registry._lock:
            if self.kind == "gauge":
                # Cross-worker gauges keep the maximum: sizes/levels from
                # different processes are not additive.
                current = self._series.get(key)
                value = float(sample["value"])
                if current is None or value > current:
                    self._series[key] = value
            else:
                self._series[key] = self._series.get(key, 0.0) + float(
                    sample["value"]
                )


class Counter(_Metric):
    """A monotonically increasing count (``_total`` naming convention)."""

    kind = "counter"


class Gauge(_Metric):
    """A value that can go up and down (sizes, rates, levels)."""

    kind = "gauge"


class Histogram(_Metric):
    """A fixed-bucket distribution (durations, sizes).

    Buckets are upper bounds; an implicit ``+Inf`` bucket always exists.
    Exported cumulatively, Prometheus-style, with ``_sum`` and
    ``_count`` series.
    """

    kind = "histogram"

    def __init__(self, registry, name, help, labels,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(registry, name, help, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds!r}")
        self.buckets = bounds

    def _observe(self, key: Tuple[str, ...], value: float) -> None:
        value = float(value)
        with self._registry._lock:
            state = self._series.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1),
                         "sum": 0.0, "count": 0}
                self._series[key] = state
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    state["counts"][index] += 1
                    break
            else:
                state["counts"][-1] += 1
            state["sum"] += value
            state["count"] += 1

    def _samples(self) -> List[Dict[str, Any]]:
        with self._registry._lock:
            series = {k: {"counts": list(v["counts"]), "sum": v["sum"],
                          "count": v["count"]} for k, v in self._series.items()}
        rows = []
        for key in sorted(series):
            state = series[key]
            rows.append({
                "labels": dict(zip(self.label_names, key)),
                "buckets": {
                    _fmt_bound(bound): count
                    for bound, count in zip(
                        (*self.buckets, math.inf), state["counts"]
                    )
                },
                "sum": state["sum"],
                "count": state["count"],
            })
        return rows

    def _merge_sample(self, labels: Dict[str, str], sample: Dict[str, Any]) -> None:
        key = tuple(str(labels[n]) for n in self.label_names)
        incoming = [
            sample["buckets"].get(_fmt_bound(bound), 0)
            for bound in (*self.buckets, math.inf)
        ]
        with self._registry._lock:
            state = self._series.get(key)
            if state is None:
                state = {"counts": [0] * (len(self.buckets) + 1),
                         "sum": 0.0, "count": 0}
                self._series[key] = state
            state["counts"] = [a + b for a, b in zip(state["counts"], incoming)]
            state["sum"] += float(sample["sum"])
            state["count"] += int(sample["count"])


def _fmt_bound(bound: float) -> str:
    if math.isinf(bound):
        return "+Inf"
    text = repr(bound)
    return text[:-2] if text.endswith(".0") else text


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


class MetricsRegistry:
    """Get-or-create metric families plus the two exporters.

    Creation is idempotent: asking twice for the same name returns the
    same family, and asking with a conflicting type or label set raises
    — one name means one schema, process-wide.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, _Metric] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # -- get-or-create --------------------------------------------------

    def _register(self, cls, name: str, help: str,
                  labels: Sequence[str], **kwargs) -> _Metric:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.label_names != labels:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.label_names}"
                    )
                return existing
            metric = cls(self, name, help, labels, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=buckets)

    def register_collector(
        self, collect: Callable[["MetricsRegistry"], None]
    ) -> Callable[["MetricsRegistry"], None]:
        """Add a pull-style source invoked (once each) before every
        export/snapshot — e.g. refreshing cache gauges from live
        :class:`~repro.analysis.cache.CacheStats`."""
        with self._lock:
            self._collectors.append(collect)
        return collect

    # -- reads ----------------------------------------------------------

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, **labels: Any):
        metric = self.get(name)
        return None if metric is None else metric.value(**labels)

    def _collect(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect(self)

    # -- exports --------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """The ``repro-metrics-v1`` JSON snapshot (also the merge wire
        format for cross-process aggregation)."""
        self._collect()
        with self._lock:
            metrics = list(self._metrics.values())
        return {
            "schema": SCHEMA,
            "metrics": [
                {
                    "name": m.name,
                    "type": m.kind,
                    "help": m.help,
                    "labels": list(m.label_names),
                    **({"buckets": [_fmt_bound(b) for b in m.buckets]}
                       if isinstance(m, Histogram) else {}),
                    "samples": m._samples(),
                }
                for m in sorted(metrics, key=lambda m: m.name)
            ],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        self._collect()
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            if metric.help:
                lines.append(f"# HELP {metric.name} {_escape(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for sample in metric._samples():
                labels = sample["labels"]
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in sample["buckets"].items():
                        cumulative += count
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_label_str({**labels, 'le': bound})} {cumulative}"
                        )
                    lines.append(
                        f"{metric.name}_sum{_label_str(labels)} "
                        f"{_fmt_value(sample['sum'])}"
                    )
                    lines.append(
                        f"{metric.name}_count{_label_str(labels)} "
                        f"{sample['count']}"
                    )
                else:
                    lines.append(
                        f"{metric.name}{_label_str(labels)} "
                        f"{_fmt_value(sample['value'])}"
                    )
        return "\n".join(lines) + "\n"

    def write(self, path) -> None:
        """Write the registry to ``path``: Prometheus text for ``.prom``
        / ``.txt``, the JSON snapshot otherwise."""
        text = (
            self.to_prometheus()
            if str(path).endswith((".prom", ".txt"))
            else self.to_json() + "\n"
        )
        with open(path, "w") as handle:
            handle.write(text)

    # -- merging --------------------------------------------------------

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold another registry's :meth:`as_dict` snapshot into this
        one: counters and histograms add, gauges keep the maximum.  This
        is how per-worker registries from the process backend aggregate
        into the batch's single exported registry."""
        if snapshot.get("schema") != SCHEMA:
            raise ValueError(
                f"cannot merge metrics snapshot with schema "
                f"{snapshot.get('schema')!r}; expected {SCHEMA!r}"
            )
        kinds = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}
        for entry in snapshot["metrics"]:
            cls = kinds.get(entry["type"])
            if cls is None:
                raise ValueError(f"unknown metric type {entry['type']!r}")
            kwargs = {}
            if cls is Histogram:
                kwargs["buckets"] = [
                    math.inf if b == "+Inf" else float(b)
                    for b in entry.get("buckets", [])
                    if b != "+Inf"
                ] or DEFAULT_BUCKETS
            metric = self._register(
                cls, entry["name"], entry.get("help", ""),
                entry.get("labels", ()), **kwargs,
            )
            for sample in entry["samples"]:
                metric._merge_sample(sample["labels"], sample)

    def __repr__(self) -> str:
        with self._lock:
            return f"MetricsRegistry({len(self._metrics)} metrics)"


def _label_str(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in labels.items())
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (used when no explicit one is given)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry (returns the previous one) — the
    process-backend workers use this to record into a fresh registry
    whose snapshot ships back with each result."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
