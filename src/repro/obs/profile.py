"""Per-stage wall/CPU/peak-memory profiling of one analysis.

:func:`profile_graph` runs an analysis method under a profiling
:class:`~repro.obs.trace.Tracer` (with :mod:`tracemalloc` tracing
allocations), then reads the per-stage costs straight out of the
resulting spans — the same spans a ``--trace`` run exports, so the
profile and the trace can never disagree about stage boundaries.

The default comparison — ``symbolic`` vs. ``hsdf`` — puts numbers on
the paper's Section 6 claim: the symbolic conversion (Algorithm 1,
≤ N(N+2) actors) against the classical expansion (Σγ(a) actors), stage
by stage.  ``repro profile <graph>`` prints it as a table.

Peak-memory figures are *traced-allocation* peaks (``tracemalloc``),
attributed inclusively per span; the report also carries the process
peak RSS (``resource.getrusage``) where the platform provides it.
Note that tracemalloc instruments every allocation, so profiled wall
times run slower than production ones — compare stages against each
other, not against ``--trace`` timings.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.trace import Tracer, span
from repro.sdf.graph import SDFGraph

try:  # POSIX only; the report degrades gracefully without it.
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["ProfileReport", "StageCost", "profile_graph"]

#: Methods profiled by default: the paper's cheap exact path vs. the
#: classical expansion it replaces.
DEFAULT_METHODS: Tuple[str, ...] = ("symbolic", "hsdf")


@dataclass(frozen=True)
class StageCost:
    """Cost of one pipeline stage of one method."""

    method: str
    stage: str
    wall: float
    cpu: float
    #: Peak traced allocation in bytes (0 when memory was not profiled).
    mem_peak: int
    #: True for the whole-method row (stages sum approximately to it).
    total: bool = False
    #: Final progress counters the stage's hot loop reported.
    progress: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "method": self.method,
            "stage": self.stage,
            "wall_seconds": self.wall,
            "cpu_seconds": self.cpu,
            "mem_peak_bytes": self.mem_peak,
            "total": self.total,
            "progress": dict(self.progress),
        }


@dataclass
class ProfileReport:
    """Stage-cost table for one graph across one or more methods."""

    graph: str
    fingerprint: str
    rows: List[StageCost]
    #: Cycle time per method (stringified Fraction), as a cross-check
    #: that all profiled methods agreed.
    cycle_times: Dict[str, Optional[str]]
    #: Process peak RSS in KiB (None when `resource` is unavailable).
    max_rss_kb: Optional[int] = None

    def method_total(self, method: str) -> Optional[StageCost]:
        for row in self.rows:
            if row.method == method and row.total:
                return row
        return None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph,
            "fingerprint": self.fingerprint,
            "rows": [row.as_dict() for row in self.rows],
            "cycle_times": dict(self.cycle_times),
            "max_rss_kb": self.max_rss_kb,
        }

    def render(self) -> str:
        """The human-readable stage-cost table."""
        lines = [
            f"profile of {self.graph} [{self.fingerprint[:12]}]",
            f"{'stage':<38} {'wall ms':>10} {'cpu ms':>10} {'peak KiB':>10}",
        ]
        for method in dict.fromkeys(row.method for row in self.rows):
            for row in self.rows:
                if row.method != method:
                    continue
                label = (
                    f"[{method}] total" if row.total else f"  {row.stage}"
                )
                detail = ""
                if row.progress:
                    inner = next(iter(row.progress.values()))
                    compact = ", ".join(
                        f"{k}={v}" for k, v in list(inner.items())[:3]
                    )
                    detail = f"  ({compact})"
                lines.append(
                    f"{label:<38} {row.wall * 1e3:>10.2f} "
                    f"{row.cpu * 1e3:>10.2f} {row.mem_peak / 1024:>10.1f}"
                    f"{detail}"
                )
        cycles = ", ".join(
            f"{m}={c if c is not None else 'unbounded'}"
            for m, c in self.cycle_times.items()
        )
        lines.append(f"cycle time: {cycles}")
        if self.max_rss_kb is not None:
            lines.append(f"process peak RSS: {self.max_rss_kb} KiB")
        return "\n".join(lines)


def _profile_method(graph: SDFGraph, method: str) -> Tuple[List[StageCost], Optional[str]]:
    """One method under a fresh profiling tracer; rows from its spans."""
    from repro.analysis.throughput import throughput

    tracer = Tracer(profile=True)
    started_tracemalloc = not tracemalloc.is_tracing()
    if started_tracemalloc:
        tracemalloc.start()
    try:
        with tracer:
            result = throughput(graph, method=method)
    finally:
        if started_tracemalloc:
            tracemalloc.stop()

    spans = tracer.spans()
    root = next((s for s in spans if s.parent_id is None), None)
    rows: List[StageCost] = []
    if root is not None:
        rows.append(StageCost(
            method=method,
            stage=root.name,
            wall=root.duration or 0.0,
            cpu=root.cpu or 0.0,
            mem_peak=root.mem_peak,
            total=True,
            progress=root.args.get("progress", {}),
        ))
        for stage_span in sorted(
            (s for s in spans if s.parent_id == root.id),
            key=lambda s: s.start,
        ):
            rows.append(StageCost(
                method=method,
                stage=stage_span.name,
                wall=stage_span.duration or 0.0,
                cpu=stage_span.cpu or 0.0,
                mem_peak=stage_span.mem_peak,
                progress=stage_span.args.get("progress", {}),
            ))
    cycle = None if result.cycle_time is None else str(result.cycle_time)
    return rows, cycle


def profile_graph(
    graph: SDFGraph, methods: Sequence[str] = DEFAULT_METHODS
) -> ProfileReport:
    """Profile ``graph`` through each analysis method in ``methods``.

    Each method runs under its own profiling tracer (memory tracing
    included), serially, so the stage attributions never interleave.
    Raises whatever the underlying analysis raises (deadlock,
    inconsistency, …) — a graph that cannot be analysed cannot be
    profiled either.

    >>> from repro.graphs.examples import figure3_graph
    >>> report = profile_graph(figure3_graph(), methods=("symbolic",))
    >>> report.method_total("symbolic") is not None
    True
    """
    rows: List[StageCost] = []
    cycle_times: Dict[str, Optional[str]] = {}
    for method in methods:
        method_rows, cycle = _profile_method(graph, method)
        rows.extend(method_rows)
        cycle_times[method] = cycle
    max_rss = None
    if resource is not None:
        # Linux reports KiB; macOS reports bytes — normalise to KiB.
        raw = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        import sys

        max_rss = raw // 1024 if sys.platform == "darwin" else raw
    return ProfileReport(
        graph=graph.name,
        fingerprint=graph.fingerprint(),
        rows=rows,
        cycle_times=cycle_times,
        max_rss_kb=max_rss,
    )
