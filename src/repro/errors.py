"""Exception hierarchy of the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one clause.  Analysis errors keep
a *witness* (an edge, a cycle, an actor) whenever one exists, because a
diagnosis without a counterexample is of little use in a design flow.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all :mod:`repro` exceptions."""


class ValidationError(ReproError, ValueError):
    """A graph violates a structural well-formedness rule."""


class InconsistentGraphError(ReproError, ValueError):
    """The balance equations of an SDF graph have no non-trivial solution.

    An inconsistent graph cannot execute periodically in bounded memory
    (Lee & Messerschmitt, 1987); no repetition vector exists.
    """

    def __init__(self, message: str, witness_edge=None):
        super().__init__(message)
        self.witness_edge = witness_edge


class DeadlockError(ReproError, RuntimeError):
    """The graph cannot complete a single iteration.

    ``blocked`` maps each actor to its number of outstanding firings when
    execution got stuck.
    """

    def __init__(self, message: str, blocked=None):
        super().__init__(message)
        self.blocked = dict(blocked or {})


class UnboundedThroughputError(ReproError, RuntimeError):
    """An actor is not constrained by any dependency within an iteration.

    Self-timed semantics would let it fire infinitely often at time zero
    (typically an actor without incoming edges).  Add a self-edge with one
    initial token to model non-auto-concurrent execution, as is standard
    SDF modelling practice.
    """

    def __init__(self, message: str, actor=None):
        super().__init__(message)
        self.actor = actor


class ConvergenceError(ReproError, RuntimeError):
    """An iterative analysis exceeded its step budget without converging."""


class LintError(ReproError, ValueError):
    """A model failed a pre-analysis lint gate.

    ``report`` is the full :class:`repro.lint.LintReport`, so callers can
    render every finding instead of just the summary message.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class NotAbstractableError(ReproError, ValueError):
    """A proposed actor grouping violates the abstraction conditions of
    Definition 3 of the paper (equal repetition entries, injective indices
    per group, index-monotone zero-delay edges)."""


class NoAbstractionFoundError(ReproError, ValueError):
    """Automatic abstraction discovery produced no valid non-trivial grouping."""
