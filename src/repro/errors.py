"""Exception hierarchy of the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with one clause.  Analysis errors keep
a *witness* (an edge, a cycle, an actor) whenever one exists, because a
diagnosis without a counterexample is of little use in a design flow.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all :mod:`repro` exceptions."""


class ValidationError(ReproError, ValueError):
    """A graph violates a structural well-formedness rule."""


class InconsistentGraphError(ReproError, ValueError):
    """The balance equations of an SDF graph have no non-trivial solution.

    An inconsistent graph cannot execute periodically in bounded memory
    (Lee & Messerschmitt, 1987); no repetition vector exists.
    """

    def __init__(self, message: str, witness_edge=None):
        super().__init__(message)
        self.witness_edge = witness_edge


class DeadlockError(ReproError, RuntimeError):
    """The graph cannot complete a single iteration.

    ``blocked`` maps each actor to its number of outstanding firings when
    execution got stuck.
    """

    def __init__(self, message: str, blocked=None):
        super().__init__(message)
        self.blocked = dict(blocked or {})


class UnboundedThroughputError(ReproError, RuntimeError):
    """An actor is not constrained by any dependency within an iteration.

    Self-timed semantics would let it fire infinitely often at time zero
    (typically an actor without incoming edges).  Add a self-edge with one
    initial token to model non-auto-concurrent execution, as is standard
    SDF modelling practice.
    """

    def __init__(self, message: str, actor=None):
        super().__init__(message)
        self.actor = actor


class ConvergenceError(ReproError, RuntimeError):
    """An iterative analysis exceeded its step budget without converging."""


class AnalysisInterrupted(ReproError, RuntimeError):
    """An analysis stopped before producing a result (base of the
    deadline/cancellation family; see :mod:`repro.analysis.deadline`).

    ``stage`` names the analysis phase that was interrupted and
    ``progress`` is a small dict of partial-progress counters (e.g. the
    Karp level reached, events simulated) — enough to report how far the
    work got and to size a retry budget.
    """

    def __init__(self, message: str, stage=None, progress=None, elapsed=None):
        super().__init__(message)
        self.stage = stage
        self.progress = dict(progress or {})
        self.elapsed = elapsed


class AnalysisTimeout(AnalysisInterrupted):
    """A deadline expired mid-analysis (cooperative check, not a signal).

    ``budget`` is the wall-clock allowance in seconds; ``elapsed`` how
    long the analysis actually ran before noticing.
    """

    def __init__(self, message: str, stage=None, progress=None, elapsed=None,
                 budget=None):
        super().__init__(message, stage=stage, progress=progress, elapsed=elapsed)
        self.budget = budget


class AnalysisCancelled(AnalysisInterrupted):
    """A :class:`repro.analysis.deadline.CancelToken` was cancelled."""


class TransientWorkerError(ReproError, RuntimeError):
    """A failure presumed transient (I/O hiccup, injected flake).

    The batch runner retries these with backoff (``retries``/``backoff``
    of :func:`repro.analysis.batch.run_batch`) before recording a
    failure; any other error is treated as deterministic and fails the
    graph immediately.
    """


class WorkerCrashed(ReproError, RuntimeError):
    """A batch worker process died mid-analysis (segfault, kill, OOM).

    Raised by the batch runner's process backend after it has isolated
    the responsible graph; ``fingerprint`` identifies the quarantined
    graph.
    """

    def __init__(self, message: str, fingerprint=None):
        super().__init__(message)
        self.fingerprint = fingerprint


class LintError(ReproError, ValueError):
    """A model failed a pre-analysis lint gate.

    ``report`` is the full :class:`repro.lint.LintReport`, so callers can
    render every finding instead of just the summary message.
    """

    def __init__(self, message: str, report=None):
        super().__init__(message)
        self.report = report


class NotAbstractableError(ReproError, ValueError):
    """A proposed actor grouping violates the abstraction conditions of
    Definition 3 of the paper (equal repetition entries, injective indices
    per group, index-monotone zero-delay edges)."""


class NoAbstractionFoundError(ReproError, ValueError):
    """Automatic abstraction discovery produced no valid non-trivial grouping."""
