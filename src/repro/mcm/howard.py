"""Howard's policy iteration for the maximum cycle ratio.

Howard's algorithm (originally for Markov decision processes; adapted to
cycle-ratio problems by Cochet-Terrasson et al. and benchmarked by Dasdan
— reference [5] of the paper cites the surrounding algorithm family)
maintains a *policy*: one outgoing edge per node.  The policy graph is a
functional graph whose cycles are evaluated exactly; edges that improve
the value (first by reachable cycle ratio, then by distance) replace
policy edges until a fixed point is reached.  In practice it is the
fastest known MCR algorithm, although its worst case is not polynomially
bounded.

All arithmetic is exact (:class:`fractions.Fraction`); the returned
critical cycle is verified against the returned value.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.mcm.graphlib import (
    CycleRatioResult,
    RatioEdge,
    RatioGraph,
    ZeroTransitCycleError,
    cycle_ratio,
)


def howard_mcr(
    graph: RatioGraph,
    max_iterations: Optional[int] = None,
    deadline=None,
) -> CycleRatioResult:
    """Maximum cycle ratio of ``graph`` via policy iteration.

    Raises :class:`ZeroTransitCycleError` when a token-free cycle exists
    (the ratio would be unbounded — a deadlock in dataflow terms).
    ``deadline`` (a :class:`repro.analysis.deadline.Deadline`) is polled
    once per policy-iteration round; on expiry the raised
    :class:`repro.errors.AnalysisTimeout` reports the SCC and round.
    """
    zero_cycle = graph.find_zero_transit_cycle()
    if zero_cycle is not None:
        raise ZeroTransitCycleError(zero_cycle)

    best: Optional[Fraction] = None
    best_cycle = None
    progress = (
        deadline.checkpoint("howard-mcr", {"scc": 0, "round": 0})
        if deadline is not None
        else None
    )
    for scc_index, scc in enumerate(graph.nontrivial_sccs()):
        if progress is not None:
            progress["scc"] = scc_index
        value, cycle = _howard_scc(scc, max_iterations, deadline, progress)
        if best is None or value > best:
            best = value
            best_cycle = cycle
    return CycleRatioResult(best, best_cycle).check()


def _howard_scc(scc: RatioGraph, max_iterations: Optional[int],
                deadline=None, progress=None):
    nodes = scc.nodes
    order = {node: i for i, node in enumerate(nodes)}
    if max_iterations is None:
        max_iterations = 20 * (scc.node_count() + scc.edge_count()) + 100

    # Initial policy: the heaviest outgoing edge of each node (any choice
    # is sound; this one tends to start close to the critical cycle).
    policy: dict = {
        node: max(scc.out_edges(node), key=lambda e: (e.weight, -e.transit))
        for node in nodes
    }

    for round_index in range(max_iterations):
        if deadline is not None:
            if progress is not None:
                progress["round"] = round_index
            deadline.check_now()
        value, dist = _evaluate_policy(scc, nodes, order, policy)

        # Stage 1: value improvement — switch to edges whose target sees a
        # strictly better cycle ratio.
        improved = False
        for node in nodes:
            current = value[node]
            best_edge = None
            best_val = current
            for e in scc.out_edges(node):
                if value[e.target] > best_val:
                    best_val = value[e.target]
                    best_edge = e
            if best_edge is not None:
                policy[node] = best_edge
                improved = True
        if improved:
            continue

        # Stage 2: distance improvement at equal value.
        for node in nodes:
            lam = value[node]
            current = dist[node]
            best_edge = None
            best_d = current
            for e in scc.out_edges(node):
                if value[e.target] != lam:
                    continue
                cand = e.weight - lam * e.transit + dist[e.target]
                if cand > best_d:
                    best_d = cand
                    best_edge = e
            if best_edge is not None:
                policy[node] = best_edge
                improved = True
        if not improved:
            lam = max(value.values())
            cycle = _policy_cycle_with_value(scc, nodes, policy, lam)
            return lam, cycle

    raise RuntimeError(
        "Howard's policy iteration did not converge within "
        f"{max_iterations} iterations"
    )


def _evaluate_policy(scc, nodes, order, policy):
    """Evaluate the functional policy graph.

    Returns per node the ratio of the policy cycle it drains into and a
    distance (potential) consistent with ``d(u) = w - λ·t + d(succ(u))``,
    anchored at a deterministic handle node on each cycle.
    """
    value: dict = {}
    dist: dict = {}
    state: dict = {node: 0 for node in nodes}  # 0 unvisited, 1 in walk, 2 done

    for start in nodes:
        if state[start] != 0:
            continue
        walk = []
        node = start
        while state[node] == 0:
            state[node] = 1
            walk.append(node)
            node = policy[node].target
        if state[node] == 1:
            # Found a new policy cycle; evaluate it exactly.
            idx = walk.index(node)
            cycle_nodes = walk[idx:]
            cycle_edges = [policy[u] for u in cycle_nodes]
            total_t = sum(e.transit for e in cycle_edges)
            if total_t == 0:
                # Cannot happen: zero-transit cycles are rejected up front,
                # and every policy cycle is a graph cycle.
                raise ZeroTransitCycleError(cycle_edges)
            lam = Fraction(sum(e.weight for e in cycle_edges), total_t)
            # Deterministic handle: the smallest node in insertion order.
            handle_pos = min(range(len(cycle_nodes)), key=lambda i: order[cycle_nodes[i]])
            rotated = cycle_nodes[handle_pos:] + cycle_nodes[:handle_pos]
            handle = rotated[0]
            value[handle] = lam
            dist[handle] = Fraction(0)
            # Walk the cycle backwards from the handle:
            # d(u) = w(u,succ) - λ t + d(succ).
            for u in reversed(rotated[1:]):
                e = policy[u]
                value[u] = lam
                dist[u] = e.weight - lam * e.transit + dist[e.target]
        # Resolve the tree prefix of the walk (suffix nodes that are part
        # of the cycle were just labelled; remaining prefix drains into it).
        for u in reversed(walk):
            if u in value:
                state[u] = 2
                continue
            e = policy[u]
            value[u] = value[e.target]
            dist[u] = e.weight - value[u] * e.transit + dist[e.target]
            state[u] = 2
    return value, dist


def _policy_cycle_with_value(scc, nodes, policy, lam):
    """Extract a policy cycle whose ratio equals ``lam``."""
    seen: dict = {}
    for start in nodes:
        if start in seen:
            continue
        walk = []
        node = start
        while node not in seen:
            seen[node] = start
            walk.append(node)
            node = policy[node].target
        if seen[node] == start:
            idx = walk.index(node)
            cycle_edges = [policy[u] for u in walk[idx:]]
            if cycle_ratio(cycle_edges) == lam:
                return cycle_edges
    raise AssertionError("converged policy graph has no cycle of its own value")
