"""Maximum cycle mean (MCM) and maximum cycle ratio (MCR) solvers.

Throughput of an HSDF graph is the inverse of its maximum cycle ratio
(total execution time around a cycle divided by the number of initial
tokens on it), and the eigenvalue of a max-plus matrix is the maximum
cycle *mean* of its precedence graph.  These solvers are the paper's
analysis back-end; reference [5] of the paper (Dasdan, Irani, Gupta,
DAC'99) surveys the algorithm family implemented here.

Solvers provided (all exact, over rational weights):

* :func:`repro.mcm.karp.karp_mcm` — Karp's dynamic program, O(nm),
  transit times ≡ 1;
* :func:`repro.mcm.howard.howard_mcr` — Howard's policy iteration,
  fast in practice, general transit times;
* :func:`repro.mcm.lawler.lawler_mcr` — Lawler's binary search with a
  Bellman-Ford feasibility oracle, general transit times;
* :func:`repro.mcm.yto.yto_mcm` — Young-Tarjan-Orlin-style parametric
  search, transit times ≡ 1;
* :func:`repro.mcm.brute.brute_force_mcr` — cycle enumeration, the test
  oracle for small graphs.
"""

from repro.mcm.graphlib import RatioGraph, RatioEdge, CycleRatioResult, ZeroTransitCycleError
from repro.mcm.karp import karp_mcm
from repro.mcm.howard import howard_mcr
from repro.mcm.lawler import lawler_mcr
from repro.mcm.brute import brute_force_mcr
from repro.mcm.yto import yto_mcm

__all__ = [
    "RatioGraph",
    "RatioEdge",
    "CycleRatioResult",
    "ZeroTransitCycleError",
    "karp_mcm",
    "howard_mcr",
    "lawler_mcr",
    "brute_force_mcr",
    "yto_mcm",
]
