"""Young-Tarjan-Orlin-style parametric search for the maximum cycle mean.

The algorithm maintains, per strongly connected component, a *longest-path
tree* from a root under the parametric edge weights ``w(e) − λ`` while λ
sweeps downwards from +∞.  Each non-tree edge ``(u, v)`` that uses more
edges than the current tree path to ``v`` has a *key*: the value of λ at
which the path through ``(u, v)`` ties the tree path.  The sweep
repeatedly pivots on the largest key; the first pivot that closes a cycle
in the tree does so exactly at λ = MCM, and that tree cycle is a critical
cycle.

This implementation keeps the algorithmic structure of Young, Tarjan and
Orlin (Networks, 1991) but evaluates keys by rescanning edges instead of
maintaining a Fibonacci heap, giving O(n²·(n + m)) worst case — entirely
adequate for the graph sizes this library targets, and exact over
rationals.  Transit times must all be 1 (cycle *mean*); use
:func:`repro.mcm.howard.howard_mcr` or
:func:`repro.mcm.lawler.lawler_mcr` for general cycle ratios.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional

from repro.mcm.graphlib import CycleRatioResult, RatioGraph


def yto_mcm(graph: RatioGraph) -> CycleRatioResult:
    """Maximum cycle mean of ``graph`` (transit times must all be 1)."""
    for e in graph.edges:
        if e.transit != 1:
            raise ValueError(
                "yto_mcm requires unit transit times; "
                f"edge {e.source}->{e.target} has transit {e.transit}"
            )
    best: Optional[Fraction] = None
    best_cycle = None
    for scc in graph.nontrivial_sccs():
        value, cycle = _yto_scc(scc)
        if best is None or value > best:
            best = value
            best_cycle = cycle
    return CycleRatioResult(best, best_cycle).check()


def _yto_scc(scc: RatioGraph):
    nodes = scc.nodes
    root = nodes[0]

    # Initial tree: optimal for λ → +∞, i.e. lexicographically
    # (fewest edges, then largest weight).  BFS layers give the edge
    # counts; a per-layer relaxation maximises the weight.
    length = {root: 0}
    weight = {root: Fraction(0)}
    parent: dict = {root: None}
    frontier = [root]
    while frontier:
        # Collect the next layer (minimum edge count).
        candidates: dict = {}
        for u in frontier:
            for e in scc.out_edges(u):
                if e.target in length:
                    continue
                cand = weight[u] + e.weight
                if e.target not in candidates or cand > candidates[e.target][0]:
                    candidates[e.target] = (cand, e)
        next_frontier = []
        for v, (w, e) in candidates.items():
            length[v] = length[e.source] + 1
            weight[v] = w
            parent[v] = e
            next_frontier.append(v)
        frontier = next_frontier
        # Within the new layer, same-length improvements via same-layer
        # edges are impossible (edges add one to the length), so layers
        # are final once assigned.

    children: dict = {node: set() for node in nodes}
    for v, e in parent.items():
        if e is not None:
            children[e.source].add(v)

    def subtree(v):
        stack = [v]
        out = []
        while stack:
            x = stack.pop()
            out.append(x)
            stack.extend(children[x])
        return out

    while True:
        # Find the pivot: the non-tree edge with the largest key.
        pivot = None
        pivot_key = None
        for e in scc.edges:
            u, v = e.source, e.target
            dl = length[u] + 1 - length[v]
            if dl <= 0:
                continue
            key = Fraction(weight[u] + e.weight - weight[v], dl)
            if pivot_key is None or key > pivot_key:
                pivot_key = key
                pivot = e
        if pivot is None:
            raise AssertionError(
                "parametric sweep ran out of pivots inside a non-trivial SCC"
            )

        u, v = pivot.source, pivot.target
        # Does the pivot close a cycle?  It does iff v is an ancestor of u
        # (including u == v), in which case the tree path v → u plus the
        # pivot edge is a cycle of mean exactly pivot_key.
        ancestor = u
        on_path = [u]
        is_cycle = u == v
        while parent[ancestor] is not None and not is_cycle:
            ancestor = parent[ancestor].source
            if ancestor == v:
                is_cycle = True
                break
            on_path.append(ancestor)
        if is_cycle:
            cycle = []
            walk = u
            while walk != v:
                cycle.append(parent[walk])
                walk = parent[walk].source
            cycle.reverse()
            cycle.append(pivot)
            return pivot_key, cycle

        # Otherwise pivot: re-root v's subtree through the new edge.
        old_parent = parent[v]
        if old_parent is not None:
            children[old_parent.source].discard(v)
        parent[v] = pivot
        children[u].add(v)
        delta_l = length[u] + 1 - length[v]
        delta_w = weight[u] + pivot.weight - weight[v]
        for x in subtree(v):
            length[x] += delta_l
            weight[x] += delta_w
