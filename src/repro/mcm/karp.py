"""Karp's maximum cycle mean algorithm.

Karp's theorem (1978): for a strongly connected digraph with ``n`` nodes
and a fixed source ``s``,

    MCM = max_v min_{0 <= k < n, D_k(v) finite} ( D_n(v) - D_k(v) ) / (n - k)

where ``D_k(v)`` is the maximum weight of a walk of exactly ``k`` edges
from ``s`` to ``v`` (ε when no such walk exists).  Runs in O(n·m) time and
O(n²) space.

Transit times must all equal 1: the cycle *mean* is the cycle *ratio*
with unit transits.  This is precisely the setting of the max-plus
eigenvalue computation (each precedence-graph edge is one iteration step),
which is where the paper's HSDF conversion needs it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Optional

from repro.mcm.graphlib import CycleRatioResult, RatioGraph

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.deadline import Deadline

_EPS = float("-inf")


def karp_mcm(
    graph: RatioGraph, deadline: Optional["Deadline"] = None
) -> CycleRatioResult:
    """Maximum cycle mean of ``graph`` (all transit times must be 1).

    Returns :class:`CycleRatioResult` with the exact MCM and a critical
    cycle, or ``value=None`` for an acyclic graph.  ``deadline`` is
    polled once per dynamic-programming level per SCC (the O(n·m) hot
    loop); on expiry :class:`repro.errors.AnalysisTimeout` reports the
    SCC and level reached.
    """
    for e in graph.edges:
        if e.transit != 1:
            raise ValueError(
                "karp_mcm requires unit transit times; "
                f"edge {e.source}->{e.target} has transit {e.transit}"
            )
    best: Optional[Fraction] = None
    best_cycle = None
    progress = (
        deadline.checkpoint("karp-mcm", {"scc": 0, "level": 0, "levels": 0})
        if deadline is not None
        else None
    )
    for scc_index, scc in enumerate(graph.nontrivial_sccs()):
        if progress is not None:
            progress["scc"] = scc_index
        value, cycle = _karp_scc(scc, deadline, progress)
        if best is None or value > best:
            best = value
            best_cycle = cycle
    return CycleRatioResult(best, best_cycle).check()


def _karp_scc(scc: RatioGraph, deadline=None, progress=None):
    nodes = scc.nodes
    n = len(nodes)
    source = nodes[0]
    if progress is not None:
        progress["levels"] = n

    # D[k][v]: max weight of a k-edge walk source -> v; parent edge for traceback.
    level = {source: Fraction(0)}
    parent: list[dict] = [dict()]
    levels = [level]
    for k in range(n):
        if deadline is not None:
            if progress is not None:
                progress["level"] = k
            deadline.check()
        nxt: dict = {}
        par: dict = {}
        for u, du in levels[-1].items():
            for e in scc.out_edges(u):
                cand = du + e.weight
                if e.target not in nxt or cand > nxt[e.target]:
                    nxt[e.target] = cand
                    par[e.target] = e
        levels.append(nxt)
        parent.append(par)

    final = levels[n]
    best_value: Optional[Fraction] = None
    best_node = None
    for v, dn in final.items():
        if deadline is not None:
            deadline.check()
        v_min: Optional[Fraction] = None
        for k in range(n):
            dk = levels[k].get(v)
            if dk is None:
                continue
            mean = Fraction(dn - dk, n - k)
            if v_min is None or mean < v_min:
                v_min = mean
        if v_min is not None and (best_value is None or v_min > best_value):
            best_value = v_min
            best_node = v
    if best_value is None:
        # A non-trivial SCC always has walks of every length from the
        # source, so this cannot happen; defend anyway.
        raise AssertionError("no finite Karp value inside a non-trivial SCC")

    cycle = _extract_cycle(parent, best_node, n)
    return best_value, cycle


def _extract_cycle(parent, node, n):
    """Walk the maximising n-edge walk backwards; any repeated node on it
    encloses a cycle of mean equal to the MCM (Karp's critical cycle)."""
    walk_nodes = [node]
    walk_edges = []
    v = node
    for k in range(n, 0, -1):
        e = parent[k][v]
        walk_edges.append(e)
        v = e.source
        walk_nodes.append(v)
    walk_nodes.reverse()
    walk_edges.reverse()
    first_seen: dict = {}
    for idx, v in enumerate(walk_nodes):
        if v in first_seen:
            return walk_edges[first_seen[v] : idx]
        first_seen[v] = idx
    raise AssertionError("an n-edge walk over n nodes must repeat a node")
