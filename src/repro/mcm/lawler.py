"""Lawler's binary search for the maximum cycle ratio.

Feasibility oracle: for a trial ratio λ, the reduced weight of an edge is
``w(e) − λ·t(e)``; a cycle with positive reduced weight exists iff the
true MCR exceeds λ.  Positive cycles are detected with a Bellman-Ford
longest-path sweep and extracted explicitly, which lets the search keep
*achieved* ratios as exact lower bounds.  Because all achievable cycle
ratios are fractions with bounded denominators, the search terminates
with the exact optimum: once the bracket is narrower than the minimum
gap between distinct ratios, a final feasibility test at the incumbent
settles the answer.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Optional

from repro.mcm.graphlib import (
    CycleRatioResult,
    RatioEdge,
    RatioGraph,
    ZeroTransitCycleError,
    cycle_ratio,
)


def lawler_mcr(graph: RatioGraph) -> CycleRatioResult:
    """Maximum cycle ratio via exact binary search.

    Raises :class:`ZeroTransitCycleError` for token-free cycles.
    Returns ``value=None`` for acyclic graphs.
    """
    zero_cycle = graph.find_zero_transit_cycle()
    if zero_cycle is not None:
        raise ZeroTransitCycleError(zero_cycle)

    seed = graph.find_any_cycle()
    if seed is None:
        return CycleRatioResult(None)

    lo = cycle_ratio(seed)
    best_cycle = seed

    # Upper bound: any cycle ratio is at most the sum of positive weights
    # (total transit is at least 1 on every cycle).
    hi = sum((e.weight for e in graph.edges if e.weight > 0), Fraction(0)) + 1

    # Minimum gap between two distinct achievable ratios: with weights
    # scaled to integers by L and total transit at most T, two distinct
    # ratios differ by at least 1 / (L * T²).
    weight_lcm = lcm(*(e.weight.denominator for e in graph.edges)) if graph.edges else 1
    total_transit = max(1, sum(e.transit for e in graph.edges))
    gap = Fraction(1, weight_lcm * total_transit * total_transit)

    while hi - lo > gap:
        mid = (lo + hi) / 2
        found = _positive_cycle(graph, mid)
        if found is None:
            hi = mid
        else:
            ratio = cycle_ratio(found)
            if ratio > lo:
                lo = ratio
                best_cycle = found
            else:  # pragma: no cover - the extracted cycle beats mid > lo
                raise AssertionError("positive cycle did not improve the bound")

    # The bracket admits at most one achievable ratio above lo; one last
    # feasibility test decides whether lo is already the optimum.
    found = _positive_cycle(graph, lo)
    if found is not None:
        ratio = cycle_ratio(found)
        if ratio > lo:
            lo = ratio
            best_cycle = found
    return CycleRatioResult(lo, best_cycle).check()


def _positive_cycle(graph: RatioGraph, lam: Fraction) -> Optional[list[RatioEdge]]:
    """Find a cycle with positive total reduced weight w − λ·t, if any.

    Bellman-Ford longest-path relaxation from a virtual source connected
    to every node with distance 0; any relaxation still possible after
    |V| − 1 rounds witnesses a positive cycle, which is recovered by
    walking the predecessor chain.
    """
    nodes = graph.nodes
    n = len(nodes)
    dist = {node: Fraction(0) for node in nodes}
    pred: dict = {}

    edges = graph.edges
    for _ in range(n - 1):
        changed = False
        for e in edges:
            reduced = e.weight - lam * e.transit
            cand = dist[e.source] + reduced
            if cand > dist[e.target]:
                dist[e.target] = cand
                pred[e.target] = e
                changed = True
        if not changed:
            return None

    for e in edges:
        reduced = e.weight - lam * e.transit
        if dist[e.source] + reduced > dist[e.target]:
            # Walk back n steps to land inside the positive cycle.
            pred[e.target] = e
            node = e.target
            for _ in range(n):
                node = pred[node].source
            cycle = []
            walk = node
            while True:
                back = pred[walk]
                cycle.append(back)
                walk = back.source
                if walk == node:
                    break
            cycle.reverse()
            return cycle
    return None
