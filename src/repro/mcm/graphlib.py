"""A small weighted-digraph container shared by the cycle-ratio solvers.

Every edge carries a *weight* (rational, e.g. accumulated execution time)
and a *transit time* (non-negative int, e.g. number of initial tokens).
The quantity of interest is the **maximum cycle ratio**

    MCR(G) = max over cycles C of  ( Σ_{e∈C} weight(e) ) / ( Σ_{e∈C} transit(e) ).

For HSDF throughput analysis, ``weight(u → v)`` is the execution time of
actor ``u`` and ``transit`` is the number of initial tokens on the channel;
``1 / MCR`` is then the guaranteed steady-state firing rate.

A cycle with total transit 0 makes the ratio undefined (it corresponds to
a deadlocked dependency cycle in dataflow terms); solvers raise
:class:`ZeroTransitCycleError` for such graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Hashable, Iterable, Iterator, NamedTuple, Optional, Sequence


class ZeroTransitCycleError(ValueError):
    """Raised when a cycle has zero total transit time (a token-free cycle).

    In dataflow terms such a cycle deadlocks: no actor on it can ever fire.
    """

    def __init__(self, cycle):
        self.cycle = list(cycle)
        nodes = " -> ".join(str(e.source) for e in self.cycle)
        super().__init__(f"cycle with zero total transit time: {nodes} -> ...")


class RatioEdge(NamedTuple):
    """A directed edge with a rational weight and an integer transit time."""

    source: Hashable
    target: Hashable
    weight: Fraction
    transit: int
    key: Hashable = None


@dataclass
class CycleRatioResult:
    """Outcome of a cycle-ratio computation.

    ``value`` is the maximum cycle ratio as an exact :class:`Fraction`, or
    ``None`` when the graph has no cycle at all (the ratio of an empty set
    is undefined; for throughput purposes an acyclic graph imposes no rate
    bound).  ``cycle`` is one critical cycle achieving the ratio, as a list
    of :class:`RatioEdge` in traversal order (may be ``None`` if the solver
    does not recover cycles).
    """

    value: Optional[Fraction]
    cycle: Optional[list] = None

    @property
    def is_acyclic(self) -> bool:
        return self.value is None

    def cycle_nodes(self) -> list:
        if not self.cycle:
            return []
        return [e.source for e in self.cycle]

    def check(self) -> "CycleRatioResult":
        """Assert that the reported cycle really achieves the reported value."""
        if self.cycle:
            w = sum(e.weight for e in self.cycle)
            t = sum(e.transit for e in self.cycle)
            if t == 0:
                raise ZeroTransitCycleError(self.cycle)
            if Fraction(w, t) != self.value:
                raise AssertionError(
                    f"critical cycle ratio {Fraction(w, t)} != value {self.value}"
                )
        return self


class RatioGraph:
    """Directed multigraph with weighted/timed edges for MCR analysis."""

    def __init__(self):
        self._nodes: dict = {}
        self._edges: list[RatioEdge] = []
        self._succ: dict = {}
        self._pred: dict = {}

    # -- construction ---------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)
            self._succ[node] = []
            self._pred[node] = []

    def add_edge(
        self,
        source: Hashable,
        target: Hashable,
        weight,
        transit: int,
        key: Hashable = None,
    ) -> RatioEdge:
        if transit < 0:
            raise ValueError("transit time must be non-negative")
        self.add_node(source)
        self.add_node(target)
        edge = RatioEdge(source, target, Fraction(weight), int(transit), key)
        self._edges.append(edge)
        self._succ[source].append(edge)
        self._pred[target].append(edge)
        return edge

    # -- inspection -----------------------------------------------------

    @property
    def nodes(self) -> list:
        return list(self._nodes)

    @property
    def edges(self) -> list[RatioEdge]:
        return list(self._edges)

    def out_edges(self, node) -> Sequence[RatioEdge]:
        return self._succ[node]

    def in_edges(self, node) -> Sequence[RatioEdge]:
        return self._pred[node]

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return len(self._edges)

    def __contains__(self, node) -> bool:
        return node in self._nodes

    # -- structure ------------------------------------------------------

    def strongly_connected_components(self) -> list[list]:
        """Tarjan's algorithm, iterative (no recursion-depth limit)."""
        index: dict = {}
        lowlink: dict = {}
        on_stack: set = set()
        stack: list = []
        components: list[list] = []
        counter = 0

        for root in self._nodes:
            if root in index:
                continue
            work = [(root, iter(self._succ[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for edge in successors:
                    child = edge.target
                    if child not in index:
                        index[child] = lowlink[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def subgraph(self, nodes: Iterable) -> "RatioGraph":
        """The induced subgraph on ``nodes`` (edges with both ends inside)."""
        keep = set(nodes)
        sub = RatioGraph()
        for node in self._nodes:
            if node in keep:
                sub.add_node(node)
        for e in self._edges:
            if e.source in keep and e.target in keep:
                sub.add_edge(e.source, e.target, e.weight, e.transit, e.key)
        return sub

    def nontrivial_sccs(self) -> list["RatioGraph"]:
        """Induced subgraphs of SCCs that contain at least one cycle."""
        result = []
        for component in self.strongly_connected_components():
            if len(component) > 1:
                result.append(self.subgraph(component))
            else:
                node = component[0]
                if any(e.target == node for e in self._succ[node]):
                    result.append(self.subgraph(component))
        return result

    def find_zero_transit_cycle(self) -> Optional[list[RatioEdge]]:
        """Return a cycle whose edges all have transit 0, or ``None``.

        Works on the subgraph of zero-transit edges; a cycle there is a
        token-free dependency cycle (deadlock).
        """
        zero = RatioGraph()
        for node in self._nodes:
            zero.add_node(node)
        for e in self._edges:
            if e.transit == 0:
                zero.add_edge(e.source, e.target, e.weight, 0, e.key)
        for scc in zero.nontrivial_sccs():
            return scc.find_any_cycle()
        return None

    def find_any_cycle(self) -> Optional[list[RatioEdge]]:
        """Return any simple cycle as an edge list, or ``None`` if acyclic."""
        colour = {node: 0 for node in self._nodes}  # 0 white, 1 grey, 2 black
        parent_edge: dict = {}
        for root in self._nodes:
            if colour[root] != 0:
                continue
            stack = [(root, iter(self._succ[root]))]
            colour[root] = 1
            while stack:
                node, successors = stack[-1]
                advanced = False
                for edge in successors:
                    child = edge.target
                    if colour[child] == 0:
                        colour[child] = 1
                        parent_edge[child] = edge
                        stack.append((child, iter(self._succ[child])))
                        advanced = True
                        break
                    if colour[child] == 1:
                        # Found a back edge: unwind the cycle.
                        cycle = [edge]
                        walk = node
                        while walk != child:
                            back = parent_edge[walk]
                            cycle.append(back)
                            walk = back.source
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = 2
                    stack.pop()
        return None

    def has_cycle(self) -> bool:
        return self.find_any_cycle() is not None

    def __repr__(self) -> str:
        return (
            f"RatioGraph(nodes={self.node_count()}, edges={self.edge_count()})"
        )


def cycle_ratio(cycle: Sequence[RatioEdge]) -> Fraction:
    """The ratio Σweight/Σtransit of a cycle given as an edge list."""
    total_transit = sum(e.transit for e in cycle)
    if total_transit == 0:
        raise ZeroTransitCycleError(cycle)
    return Fraction(sum(e.weight for e in cycle), total_transit)
