"""Brute-force maximum cycle ratio by simple-cycle enumeration.

Exponential in the graph size — usable only on small graphs, where it
serves as the *oracle* for the property-based tests of the polynomial
solvers (Karp, Howard, Lawler, YTO).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterator, Optional

from repro.mcm.graphlib import (
    CycleRatioResult,
    RatioEdge,
    RatioGraph,
    ZeroTransitCycleError,
)


def simple_cycles(graph: RatioGraph) -> Iterator[list[RatioEdge]]:
    """Enumerate all simple cycles (as edge lists), multi-edges included.

    Each cycle is rooted at its smallest node in insertion order and only
    visits larger nodes, so every simple cycle is produced exactly once
    (up to rotation); parallel edges yield distinct cycles.
    """
    order = {node: i for i, node in enumerate(graph.nodes)}

    def dfs(root, node, path_edges, visited):
        for e in graph.out_edges(node):
            target = e.target
            if target == root:
                yield path_edges + [e]
            elif order[target] > order[root] and target not in visited:
                visited.add(target)
                yield from dfs(root, target, path_edges + [e], visited)
                visited.remove(target)

    for root in graph.nodes:
        yield from dfs(root, root, [], {root})


def brute_force_mcr(graph: RatioGraph, max_cycles: int = 2_000_000) -> CycleRatioResult:
    """Maximum cycle ratio by exhaustive enumeration (test oracle).

    Raises :class:`ZeroTransitCycleError` if any cycle is token-free and
    :class:`RuntimeError` if more than ``max_cycles`` cycles are visited.
    """
    best: Optional[Fraction] = None
    best_cycle = None
    count = 0
    for cycle in simple_cycles(graph):
        count += 1
        if count > max_cycles:
            raise RuntimeError(f"more than {max_cycles} simple cycles; graph too large")
        transit = sum(e.transit for e in cycle)
        if transit == 0:
            raise ZeroTransitCycleError(cycle)
        ratio = Fraction(sum(e.weight for e in cycle), transit)
        if best is None or ratio > best:
            best = ratio
            best_cycle = cycle
    return CycleRatioResult(best, best_cycle).check()
