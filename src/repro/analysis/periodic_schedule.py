"""Rate-optimal static periodic schedules from max-plus eigenvectors.

A *static periodic schedule* (SPS) starts firing ``i`` of actor ``a`` at
``σ(a, i) + k·λ`` in iteration ``k``.  Classical result (Govindarajan &
Gao — reference [10] of the paper; Baccelli et al. [1]): evaluating the
symbolic firing-start stamps at a max-plus *eigenvector* of the
iteration matrix yields an admissible SPS whose period is the eigenvalue
λ — i.e. a schedule that provably sustains the graph's maximal
throughput.  This module constructs that schedule and double-checks
admissibility token by token.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.symbolic import SymbolicIteration, symbolic_iteration
from repro.errors import ValidationError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusVector
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class PeriodicSchedule:
    """A static periodic schedule: per-firing offsets and a period.

    ``offsets[(actor, i)]`` is σ(a, i); firing ``i`` of ``a`` in
    iteration ``k`` starts at ``σ(a, i) + k·period``.
    """

    period: Fraction
    offsets: Dict[Tuple[str, int], Fraction]

    def start_time(self, actor: str, firing: int, iteration: int = 0) -> Fraction:
        return self.offsets[(actor, firing)] + iteration * self.period

    def actor_offsets(self, actor: str) -> List[Fraction]:
        firings = sorted(k[1] for k in self.offsets if k[0] == actor)
        return [self.offsets[(actor, i)] for i in firings]

    def normalised(self) -> "PeriodicSchedule":
        """Shift all offsets so the earliest one is 0."""
        earliest = min(self.offsets.values())
        return PeriodicSchedule(
            period=self.period,
            offsets={key: value - earliest for key, value in self.offsets.items()},
        )


def rate_optimal_schedule(
    graph: SDFGraph, iteration: Optional[SymbolicIteration] = None
) -> PeriodicSchedule:
    """Construct a rate-optimal SPS for a consistent, live, token-bound
    SDF graph.

    The schedule's period equals the graph's exact iteration period
    (maximal throughput); admissibility is verified by
    :func:`verify_periodic_schedule` before returning.
    """
    if iteration is None:
        iteration = symbolic_iteration(graph)
    lam, vector = sub_eigenvector(iteration.matrix)
    offsets: Dict[Tuple[str, int], Fraction] = {}
    for key, stamp in iteration.firing_starts.items():
        value = stamp.inner(vector)
        if value == EPSILON:
            raise ValidationError(
                f"firing {key} does not depend on any initial token; "
                "the graph is not token-bound"
            )
        offsets[key] = Fraction(value)
    schedule = PeriodicSchedule(period=lam, offsets=offsets).normalised()
    verify_periodic_schedule(graph, schedule, iteration)
    return schedule


def sub_eigenvector(matrix):
    """λ plus a finite v with ``M ⊗ v ≤ λ + v`` (a *sub*-eigenvector).

    For strongly connected (irreducible) matrices the true eigenvector
    works, but its entries are ε outside the critical cycle's reach in
    reducible matrices — e.g. any pipeline, where token influence flows
    one way.  The classical remedy: ``v = (M_λ)* ⊗ 0`` (row maxima of
    the λ-normalised Kleene star) is finite everywhere, and the star's
    fixpoint property gives exactly the inequality an admissible
    periodic schedule needs.  λ is the exact period, so optimality is
    untouched.
    """
    from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
    from repro.maxplus.spectral import eigenvalue

    lam = eigenvalue(matrix)
    if lam is None:
        raise ValidationError(
            "nilpotent iteration matrix: no recurrent constraint, no "
            "finite-period schedule is forced (any period works)"
        )
    normalised = MaxPlusMatrix(
        [
            (entry - lam if entry != EPSILON else EPSILON)
            for entry in row
        ]
        for row in matrix.rows
    )
    star = normalised.star()
    vector = star.apply(MaxPlusVector.zeros(matrix.nrows))
    check = matrix.apply(vector)
    bound = vector.add_scalar(lam)
    for i in range(matrix.nrows):
        if check[i] != EPSILON and check[i] > bound[i]:
            raise AssertionError("sub-eigenvector property violated (bug)")
    return Fraction(lam), vector


def verify_periodic_schedule(
    graph: SDFGraph,
    schedule: PeriodicSchedule,
    iteration: Optional[SymbolicIteration] = None,
    horizon: int = 4,
) -> None:
    """Check an SPS is admissible: no channel ever goes negative.

    Replays ``horizon`` iterations of the schedule as a timed event list
    — production at firing end, consumption at firing start, FIFO
    irrelevant for counts — and raises :class:`ValidationError` at the
    first channel underflow.  (For an SPS, a bounded replay suffices: the
    token count evolution is itself periodic after one period.)
    """
    if iteration is None:
        iteration = symbolic_iteration(graph)
    counts = {a: 0 for a in graph.actor_names}
    for actor, _ in iteration.firing_starts:
        counts[actor] += 1

    events: List[Tuple[Fraction, int, str, str, int]] = []
    for k in range(horizon):
        for (actor, index) in iteration.firing_starts:
            start = schedule.start_time(actor, index, k)
            end = start + graph.execution_time(actor)
            # Standard SDF timing: tokens produced at time t are
            # available at t, so production (kind 0) sorts before
            # consumption (kind 1) at equal times.
            events.append((start, 1, "consume", actor, k))
            events.append((end, 0, "produce", actor, k))
    events.sort()

    tokens = {e.name: e.tokens for e in graph.edges}
    for time, _, kind, actor, k in events:
        if kind == "consume":
            for e in graph.in_edges(actor):
                tokens[e.name] -= e.consumption
                if tokens[e.name] < 0:
                    raise ValidationError(
                        f"schedule underflows channel {e.name!r} at time {time} "
                        f"(iteration {k}, firing of {actor!r})"
                    )
        else:
            for e in graph.out_edges(actor):
                tokens[e.name] += e.production
