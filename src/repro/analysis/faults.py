"""Deterministic fault injection for the analysis runtime.

Robustness code is only trustworthy if its failure paths run in CI, so
this module lets tests (and the ``batch --inject`` CLI) plant precise
faults into the batch pipeline: a *delay* (a cooperative hang that
honours deadlines), a *raise* (any named exception, e.g. a transient
flake or a ``MemoryError``), or a *kill* (hard ``os._exit`` of the
worker process, provoking ``BrokenProcessPool`` recovery).

A second, orthogonal mechanism targets the *durable I/O boundaries* of
the on-disk result store (:mod:`repro.analysis.store`): **named crash
points**.  Each store I/O site calls :func:`crash_point` with its name
(``store.tmp-write``, ``store.publish``, …); an armed plan — from
:func:`arm_crash_points` or the ``REPRO_CRASH_POINTS`` environment
variable, which is how chaos tests reach into subprocesses — kills the
process (``os._exit(86)``) or raises at exactly that site, on exactly
the Nth arrival.  Crash-consistency tests kill a process at every site
in turn and assert the store recovers to a consistent state on restart.

Faults select their victims by graph **fingerprint prefix**, by graph
**name**, or by **probability** — the probabilistic choice is derived
from a seeded hash of ``(seed, fingerprint, rule)``, so it is fully
deterministic per graph and independent of scheduling order, worker
count or backend.  Rules can be limited to the first ``attempts``
attempts of a graph, which is how the retry-with-backoff path is
exercised: fail attempt 0, succeed on the retry.

The whole plan is a value object of primitives, so it pickles cleanly
into process-pool workers.

>>> from repro.analysis.faults import FaultPlan, FaultRule
>>> plan = FaultPlan((FaultRule(action="raise", name="modem",
...                             exception="TransientWorkerError",
...                             attempts=1),), seed=7)
>>> plan  # doctest: +ELLIPSIS
FaultPlan(1 rule, seed=7)
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Tuple

from repro import errors as _errors
from repro.errors import ReproError, TransientWorkerError, WorkerCrashed

__all__ = [
    "CRASH_POINT_ENV",
    "CRASH_SITES",
    "CrashPoint",
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "arm_crash_points",
    "crash_point",
    "disarm_crash_points",
    "parse_crash_point",
    "parse_fault",
]

#: Actions a rule may take when it matches.
ACTIONS = ("delay", "hang", "raise", "kill")

#: Exceptions injectable by name: the :mod:`repro.errors` family plus a
#: small allow-list of builtins that matter for isolation testing.
_BUILTIN_EXCEPTIONS = {
    "ValueError": ValueError,
    "RuntimeError": RuntimeError,
    "MemoryError": MemoryError,
    "KeyboardInterrupt": KeyboardInterrupt,
    "OSError": OSError,
}


class FaultInjected(ReproError, RuntimeError):
    """Default exception of a ``raise`` rule with no explicit class."""


def _resolve_exception(name: Optional[str]):
    if name is None:
        return FaultInjected
    if name in _BUILTIN_EXCEPTIONS:
        return _BUILTIN_EXCEPTIONS[name]
    candidate = getattr(_errors, name, None)
    if isinstance(candidate, type) and issubclass(candidate, BaseException):
        return candidate
    if name == "FaultInjected":
        return FaultInjected
    raise ValueError(
        f"unknown injectable exception {name!r}; use a repro.errors class "
        f"or one of {', '.join(sorted(_BUILTIN_EXCEPTIONS))}"
    )


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: *who* (selector) and *what* (action).

    Exactly one selector should be set: ``fingerprint`` (a hex prefix of
    the victim's content hash), ``name`` (exact graph name) or
    ``probability`` (per-graph seeded coin flip).  ``attempts`` limits
    the rule to the first N attempts of each graph (``None`` = every
    attempt), which lets tests model transient faults that a retry
    clears.
    """

    action: str
    fingerprint: Optional[str] = None
    name: Optional[str] = None
    probability: Optional[float] = None
    #: Seconds for ``delay``; ignored by other actions.
    seconds: float = 0.0
    #: Exception class name for ``raise`` (see :func:`_resolve_exception`).
    exception: Optional[str] = None
    #: Fire only on attempt numbers < ``attempts`` (None = always).
    attempts: Optional[int] = None

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; use one of {ACTIONS}"
            )
        selectors = [
            s for s in (self.fingerprint, self.name, self.probability)
            if s is not None
        ]
        if len(selectors) != 1:
            raise ValueError(
                "exactly one of fingerprint=, name=, probability= must be set"
            )
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability!r}"
            )
        if self.exception is not None:
            _resolve_exception(self.exception)  # validate eagerly

    def matches(self, name: str, fingerprint: str, attempt: int, seed: int,
                index: int) -> bool:
        if self.attempts is not None and attempt >= self.attempts:
            return False
        if self.fingerprint is not None:
            return fingerprint.startswith(self.fingerprint)
        if self.name is not None:
            return name == self.name
        # Probability: a coin flip keyed on (seed, fingerprint, rule index)
        # only — the same graph draws the same verdict in any backend, any
        # worker, any order.
        digest = hashlib.sha256(
            f"{seed}:{fingerprint}:{index}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < self.probability


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of fault rules with a seed.

    ``fire`` is the single entry point: the batch pipeline calls it once
    per analysis attempt, and the plan sleeps/raises/kills according to
    the first matching rule.  ``allow_kill`` distinguishes real process
    workers (where ``kill`` may hard-exit) from thread/serial contexts
    (where it degrades to raising :class:`repro.errors.WorkerCrashed`,
    so a test cannot take the whole interpreter down by accident).
    """

    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    def matching(self, name: str, fingerprint: str, attempt: int) -> Tuple[FaultRule, ...]:
        return tuple(
            rule
            for index, rule in enumerate(self.rules)
            if rule.matches(name, fingerprint, attempt, self.seed, index)
        )

    def fire(
        self,
        name: str,
        fingerprint: str,
        attempt: int = 0,
        deadline=None,
        allow_kill: bool = False,
    ) -> None:
        """Trigger every matching rule (deterministic order).

        ``delay``/``hang`` sleep cooperatively in 1 ms slices, polling
        ``deadline`` between slices — an injected hang therefore ends in
        a clean :class:`repro.errors.AnalysisTimeout` whenever the
        caller set a budget, never in a real hang.
        """
        for rule in self.matching(name, fingerprint, attempt):
            if rule.action in ("delay", "hang"):
                self._sleep(rule, deadline)
            elif rule.action == "raise":
                exc = _resolve_exception(rule.exception)
                raise exc(
                    f"injected fault for graph {name!r} "
                    f"[{fingerprint[:12]}] (attempt {attempt})"
                )
            elif rule.action == "kill":
                if allow_kill:
                    os._exit(KILL_EXIT_STATUS)  # hard death: no cleanup
                raise WorkerCrashed(
                    f"injected worker kill for graph {name!r} "
                    f"[{fingerprint[:12]}] (thread/serial backend: "
                    "simulated as an error)",
                    fingerprint=fingerprint,
                )

    @staticmethod
    def _sleep(rule: FaultRule, deadline) -> None:
        # "hang" = sleep forever (cooperatively); "delay" = bounded sleep.
        end = None if rule.action == "hang" else time.monotonic() + rule.seconds
        while end is None or time.monotonic() < end:
            if deadline is not None:
                deadline.check_now()
            elif end is None:
                raise FaultInjected(
                    "injected hang with no deadline to honour; set a "
                    "timeout or the analysis would block forever"
                )
            time.sleep(0.001)

    def __bool__(self) -> bool:
        return bool(self.rules)

    def __repr__(self) -> str:
        n = len(self.rules)
        return f"FaultPlan({n} rule{'s' if n != 1 else ''}, seed={self.seed})"


def parse_fault(spec: str) -> FaultRule:
    """Parse a CLI fault spec: ``<selector>:<action>[:<arg>][@attempts]``.

    Selectors: ``fp=<hex-prefix>``, ``name=<graph name>``, ``p=<prob>``.
    Actions: ``hang``, ``delay:<seconds>``, ``raise[:<ExceptionName>]``,
    ``kill``.  A trailing ``@N`` fires only on the first N attempts.

    >>> parse_fault("name=modem:kill")
    FaultRule(action='kill', fingerprint=None, name='modem', probability=None, seconds=0.0, exception=None, attempts=None)
    >>> parse_fault("p=0.25:raise:TransientWorkerError@1").attempts
    1
    """
    attempts: Optional[int] = None
    body = spec
    if "@" in spec:
        body, _, suffix = spec.rpartition("@")
        try:
            attempts = int(suffix)
        except ValueError:
            raise ValueError(f"bad attempts suffix in fault spec {spec!r}")
    kind, eq, rest = body.partition("=")
    pieces = rest.split(":")
    # The selector value may itself contain ':' (fingerprints look like
    # 'sdfg-v1:...'), so locate the action token instead of splitting at
    # the first colon: it is the first piece past the value that names
    # an action.
    action_at = next(
        (i for i in range(1, len(pieces)) if pieces[i] in ACTIONS), None
    )
    if not eq or action_at is None:
        raise ValueError(
            f"bad fault spec {spec!r}; expected "
            "'<fp|name|p>=<value>:<action>[:<arg>][@attempts]'"
        )
    value = ":".join(pieces[:action_at])
    action, args = pieces[action_at], pieces[action_at + 1:]

    kwargs: Dict[str, Any] = {"attempts": attempts}
    if kind == "fp":
        kwargs["fingerprint"] = value
    elif kind == "name":
        kwargs["name"] = value
    elif kind == "p":
        kwargs["probability"] = float(value)
    else:
        raise ValueError(
            f"unknown fault selector {kind!r} in {spec!r}; use fp=, name= or p="
        )

    if action == "delay":
        if len(args) != 1:
            raise ValueError(f"delay needs seconds, e.g. 'delay:0.5' ({spec!r})")
        kwargs["seconds"] = float(args[0])
    elif action == "raise":
        if len(args) > 1:
            raise ValueError(f"raise takes at most one exception name ({spec!r})")
        kwargs["exception"] = args[0] if args else None
    elif action in ("hang", "kill"):
        if args:
            raise ValueError(f"{action} takes no argument ({spec!r})")
    else:
        raise ValueError(
            f"unknown fault action {action!r} in {spec!r}; use one of {ACTIONS}"
        )
    return FaultRule(action=action, **kwargs)


# ---------------------------------------------------------------------------
# Named crash points (durable-store chaos harness)
# ---------------------------------------------------------------------------

#: Environment variable carrying a comma-separated crash-point plan into
#: subprocesses (workers, CLI invocations under chaos tests).
CRASH_POINT_ENV = "REPRO_CRASH_POINTS"

#: The exit status of an injected ``kill`` (both fault rules and crash
#: points), so harnesses can tell an injected death from a real one.
KILL_EXIT_STATUS = 86

#: Every named I/O boundary of the durable result store.  A crash plan
#: may only name sites from this list — a typo in a chaos test must be
#: a loud parse error, not a silently-never-firing kill.
CRASH_SITES = (
    "store.read",          # start of a record read
    "store.tmp-write",     # temp file half-written (torn payload)
    "store.tmp-sync",      # temp fully written, not yet fsynced
    "store.publish",       # fsynced, immediately before os.replace
    "store.publish-done",  # after os.replace, before the directory fsync
    "store.quarantine",    # before moving a corrupt record aside
    "store.evict",         # before each eviction unlink in compact()
)

#: Crash-point actions (``delay``/``hang`` make no sense at a torn-write
#: boundary; the store's I/O is not deadline-polled).
CRASH_ACTIONS = ("kill", "raise")


@dataclass(frozen=True)
class CrashPoint:
    """One armed crash site: *where* (a :data:`CRASH_SITES` name),
    *what* (``kill`` hard-exits with status 86, ``raise`` throws —
    ``OSError`` by default, the honest disguise for an I/O boundary) and
    *when* (``hits``: fire on the Nth arrival at the site, default the
    first)."""

    action: str
    site: str
    exception: Optional[str] = None
    hits: int = 1

    def __post_init__(self):
        if self.action not in CRASH_ACTIONS:
            raise ValueError(
                f"unknown crash-point action {self.action!r}; "
                f"use one of {CRASH_ACTIONS}"
            )
        if self.site not in CRASH_SITES:
            raise ValueError(
                f"unknown crash site {self.site!r}; "
                f"known sites: {', '.join(CRASH_SITES)}"
            )
        if self.hits < 1:
            raise ValueError(f"hits must be >= 1, got {self.hits!r}")
        if self.exception is not None:
            if self.action == "kill":
                raise ValueError(
                    "kill crash points take no exception name "
                    "(the process dies, nothing catches it)"
                )
            _resolve_exception(self.exception)  # validate eagerly


def parse_crash_point(spec: str) -> CrashPoint:
    """Parse ``<action>@<site>[:<Exception>][#<hits>]``.

    >>> parse_crash_point("kill@store.publish")
    CrashPoint(action='kill', site='store.publish', exception=None, hits=1)
    >>> parse_crash_point("raise@store.read:MemoryError#2").hits
    2
    """
    body = spec.strip()
    hits = 1
    if "#" in body:
        body, _, suffix = body.rpartition("#")
        try:
            hits = int(suffix)
        except ValueError:
            raise ValueError(f"bad hits suffix in crash-point spec {spec!r}")
    action, at, site = body.partition("@")
    if not at or not action or not site:
        raise ValueError(
            f"bad crash-point spec {spec!r}; expected "
            "'<kill|raise>@<site>[:<Exception>][#<hits>]'"
        )
    exception = None
    if ":" in site:
        site, _, exception = site.partition(":")
    return CrashPoint(action=action, site=site, exception=exception, hits=hits)


# The armed plan.  ``None`` means "not yet initialised from the
# environment"; after the lazy init (or an explicit arm/disarm) it is a
# tuple, possibly empty.  Counts are per-process, guarded by the lock —
# the store is used from many threads at once.
_crash_plan: Optional[Tuple[CrashPoint, ...]] = None
_crash_counts: Dict[str, int] = {}
_crash_lock = threading.Lock()


def arm_crash_points(specs: Iterable) -> Tuple[CrashPoint, ...]:
    """Arm a crash plan in this process (specs or :class:`CrashPoint`
    instances); replaces any armed plan and resets the hit counters."""
    global _crash_plan
    plan = tuple(
        spec if isinstance(spec, CrashPoint) else parse_crash_point(spec)
        for spec in specs
    )
    with _crash_lock:
        _crash_plan = plan
        _crash_counts.clear()
    return plan


def disarm_crash_points() -> None:
    """Disarm every crash point (also forgets the environment plan)."""
    global _crash_plan
    with _crash_lock:
        _crash_plan = ()
        _crash_counts.clear()


def _ensure_crash_plan() -> Tuple[CrashPoint, ...]:
    global _crash_plan
    with _crash_lock:
        if _crash_plan is None:
            raw = os.environ.get(CRASH_POINT_ENV, "")
            _crash_plan = tuple(
                parse_crash_point(piece)
                for piece in raw.split(",") if piece.strip()
            )
        return _crash_plan


def crash_point(site: str) -> None:
    """Fire any armed crash point for ``site``.

    Called by the durable store at every named I/O boundary.  Unarmed
    (the overwhelmingly common case) this is one lock-free tuple read
    after the first call; armed, the per-site arrival counter decides
    whether this is the Nth hit the plan targets.
    """
    plan = _crash_plan
    if plan is None:
        plan = _ensure_crash_plan()
    if not plan:
        return
    with _crash_lock:
        count = _crash_counts.get(site, 0) + 1
        _crash_counts[site] = count
    for point in plan:
        if point.site != site or point.hits != count:
            continue
        if point.action == "kill":
            os._exit(KILL_EXIT_STATUS)  # hard death: no cleanup, no atexit
        exc = (_resolve_exception(point.exception)
               if point.exception is not None else OSError)
        raise exc(
            f"injected crash-point failure at {site} (arrival {count})"
        )
