"""Throughput/buffer-size trade-off exploration (references [18, 19]).

Stuijk, Geilen & Basten explore the Pareto space between total buffer
capacity and throughput; Wiggers et al. compute capacities for a rate
target.  This module implements the classic storage-distribution
exploration loop on top of this library's exact analyses:

1. start from the minimal live capacities;
2. analyse the buffered graph;
3. probe each channel with one extra token of capacity and keep the
   single increment that lowers the cycle time the most (when a plateau
   needs several buffers to grow together, grow them together);
4. stop when the unbounded-buffer throughput is reached (or capacities
   hit a budget).

Note a subtlety this design dodges deliberately: one cannot simply grow
"the channel whose space token lies on the critical cycle", because a
buffer constraint can bind through a dependency chain that *rests* on
other tokens entirely (the space tokens are consumed and reproduced
within one iteration).  Probing sidesteps the attribution problem at the
cost of one analysis per channel per step — exact and simple.

The points produced are cycle-time-monotone (buffer growth only removes
dependencies), and the final point provably achieves the graph's own
maximal throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.analysis.buffer import buffer_aware_graph, minimal_buffer_sizes
from repro.analysis.throughput import throughput
from repro.errors import DeadlockError, ValidationError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class ParetoPoint:
    """One explored design point."""

    capacities: Dict[str, int]
    cycle_time: Fraction

    @property
    def total_buffer(self) -> int:
        return sum(self.capacities.values())

    @property
    def throughput(self) -> Fraction:
        return 1 / self.cycle_time


def _buffered_cycle_time(graph: SDFGraph, capacities: Dict[str, int]) -> Fraction:
    return throughput(buffer_aware_graph(graph, capacities)).cycle_time


def explore_buffer_throughput(
    graph: SDFGraph,
    max_total_buffer: int = 100_000,
    capacities: Optional[Dict[str, int]] = None,
) -> List[ParetoPoint]:
    """The buffer/throughput trade-off curve of ``graph``.

    Returns the sequence of explored points, cycle times non-increasing;
    the last point matches the unbounded-buffer cycle time unless the
    budget ran out first.  ``capacities`` overrides the starting point
    (default: the minimal live sizes).
    """
    unbounded = throughput(graph)
    if unbounded.unbounded:
        raise ValidationError(
            "the unbounded-buffer throughput is itself unbounded; add "
            "self-loops (with_self_loops) to make the target well defined"
        )
    target = unbounded.cycle_time
    if capacities is None:
        capacities = minimal_buffer_sizes(graph)
    else:
        capacities = dict(capacities)
    if not capacities:
        # Nothing to size (all channels are self-loops): a single point.
        return [ParetoPoint(capacities={}, cycle_time=target)]

    current = _buffered_cycle_time(graph, capacities)
    points: List[ParetoPoint] = [ParetoPoint(dict(capacities), current)]
    while current != target and sum(capacities.values()) < max_total_buffer:
        # Probe each single-channel increment.
        best_channel = None
        best_time = current
        for channel in capacities:
            probe = dict(capacities)
            probe[channel] += 1
            time = _buffered_cycle_time(graph, probe)
            if time < best_time:
                best_time = time
                best_channel = channel
        if best_channel is not None:
            capacities[best_channel] += 1
            current = best_time
        else:
            # Plateau: several buffers must grow together; grow them all.
            for channel in capacities:
                capacities[channel] += 1
            current = _buffered_cycle_time(graph, capacities)
        points.append(ParetoPoint(dict(capacities), current))
    return points


def capacities_for_throughput(
    graph: SDFGraph,
    max_cycle_time: Fraction,
    max_total_buffer: int = 100_000,
) -> Dict[str, int]:
    """Small buffer capacities meeting a throughput constraint.

    The problem of reference [19] (Wiggers et al., DAC'07): find channel
    capacities such that the buffered graph sustains at least the given
    rate (cycle time at most ``max_cycle_time``).  Strategy: walk the
    exploration loop until the constraint holds, then greedily shrink
    each channel while the constraint still holds — a locally minimal
    (not necessarily globally minimal: the problem is NP-hard) solution.

    Raises :class:`ValidationError` when the constraint is below the
    graph's own bound (unreachable with any buffering) and
    :class:`DeadlockError`-family errors propagate from sizing.
    """
    best = throughput(graph)
    if best.unbounded or best.cycle_time > max_cycle_time:
        raise ValidationError(
            f"cycle time {max_cycle_time} is unreachable: the unbounded-buffer "
            f"bound is {None if best.unbounded else best.cycle_time}"
        )
    points = explore_buffer_throughput(graph, max_total_buffer=max_total_buffer)
    feasible = next(
        (p for p in points if p.cycle_time <= max_cycle_time), None
    )
    if feasible is None:
        raise ValidationError(
            f"no capacities within budget {max_total_buffer} meet cycle "
            f"time {max_cycle_time}"
        )
    capacities = dict(feasible.capacities)

    # Greedy shrink: channels in decreasing capacity, repeatedly.
    improved = True
    while improved:
        improved = False
        for channel in sorted(capacities, key=lambda c: -capacities[c]):
            while capacities[channel] > 0:
                probe = dict(capacities)
                probe[channel] -= 1
                try:
                    time = _buffered_cycle_time(graph, probe)
                except (DeadlockError, ValidationError):
                    break  # deadlocked or below initial tokens: stop here
                if time <= max_cycle_time:
                    capacities = probe
                    improved = True
                else:
                    break
    return capacities


def pareto_frontier(points: List[ParetoPoint]) -> List[ParetoPoint]:
    """Filter explored points down to the non-dominated frontier
    (smaller total buffer, smaller cycle time)."""
    frontier: List[ParetoPoint] = []
    for point in sorted(points, key=lambda p: (p.total_buffer, p.cycle_time)):
        if all(point.cycle_time < kept.cycle_time for kept in frontier):
            frontier.append(point)
    return frontier
