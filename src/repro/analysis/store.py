"""Durable content-addressed result store: the disk tier of the cache.

ROADMAP item 1 (analysis-as-a-service) and item 5 (sharded batch tier)
both need analysis results that outlive one process: a fleet of workers
— or tomorrow's restart of today's sweep — must serve repeat traffic at
warm-cache speed.  :class:`ResultStore` persists one record per
``(fingerprint, analysis, params)`` key under a root directory, and it
is built so that a process killed at *any* instruction never makes the
store serve a corrupt or stale result afterwards:

**Publish protocol** (the only way a record reaches its final path)
    Serialise → write to a private file under ``tmp/`` → ``flush`` →
    ``fsync`` → ``os.replace`` onto the final path → fsync the
    directory.  ``os.replace`` is atomic on POSIX, so a reader sees
    either no record or a complete one; a crash before the replace
    leaves only temp garbage, which compaction sweeps.

**Self-verifying records** (``repro-store-v1``)
    Every record carries a magic line, a JSON header echoing its own
    key (fingerprint, analysis, canonical params) plus the payload
    length and SHA-256, and then the pickled payload.  A read verifies
    all of it; the typed result object — provenance certificate and all
    — comes back exactly as stored.

**Quarantine, never trust**
    Torn writes, bit flips, truncations, renamed files and unpicklable
    payloads are *detected* (checksum/length/key-echo mismatch) and the
    bad file is atomically moved to ``quarantine/`` — the caller sees a
    miss and recomputes.  Corruption can cost a recomputation, never a
    wrong answer.

**Size budget**
    :meth:`compact` evicts least-recently-used records (by file mtime;
    reads touch their record) until the store fits ``max_bytes``, and
    sweeps temp garbage.  Writers trigger it opportunistically.

**Multi-process safety**
    Reads and publishes are lock-free (atomicity comes from
    ``os.replace``; concurrent publishers of one key write the same
    content).  Only :meth:`compact` takes an exclusive ``flock`` on
    ``root/.lock`` so two compactions do not fight; the lock dies with
    its process, so a crashed compaction cannot wedge the store.

Every I/O boundary calls :func:`repro.analysis.faults.crash_point` with
a named site (``store.tmp-write``, ``store.publish``, …), which is how
the chaos suite in ``tests/test_store.py`` kills a real process at each
boundary and asserts recovery-to-consistency on restart.  See
``docs/robustness.md`` for the durability model.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.analysis.faults import crash_point
from repro.obs.trace import add_event

__all__ = [
    "DEFAULT_MAX_BYTES",
    "STORE_SCHEMA",
    "ResultStore",
    "StoreStats",
    "VerifyReport",
]

#: Schema tag of record files and the first line of every record.
STORE_SCHEMA = "repro-store-v1"
_MAGIC = (STORE_SCHEMA + "\n").encode("ascii")

#: Default size budget: plenty for every registry sweep, small enough
#: that a forgotten store cannot eat a build machine.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Outcomes of :meth:`ResultStore.get` (the cache's disk-tier probe).
HIT, MISS, QUARANTINED, READ_ERROR = "hit", "miss", "quarantined", "error"

#: Pickle protocol pinned for stable record bytes across minor versions.
_PICKLE_PROTOCOL = 4


def canonical_params(params: Optional[Dict[str, Any]]) -> str:
    """The canonical JSON encoding of an analysis parameter dict.

    Sorted keys and ``repr`` for non-JSON values make the encoding a
    pure function of the logical key, so the same parameters always
    address the same record — across processes, dict orders and runs.
    """
    if not params:
        return "{}"
    return json.dumps(dict(params), sort_keys=True, default=repr,
                      separators=(",", ":"))


def key_digest(fingerprint: str, analysis: str,
               params: Optional[Dict[str, Any]] = None) -> str:
    """The content address of one record: SHA-256 over the full key."""
    blob = "\x00".join((fingerprint, analysis, canonical_params(params)))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class StoreStats:
    """Runtime counters plus an on-disk census of one store.

    The counters (hits/misses/…) are this process's traffic since the
    store object was created; the census fields (``records``/``bytes``/
    ``quarantined_records``/``tmp_files``) are a fresh directory scan at
    snapshot time, so they reflect every process writing to the root.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: Publishes skipped because the record already existed on disk.
    put_skips: int = 0
    #: Publishes that failed (disk full, permissions, injected faults).
    put_errors: int = 0
    #: Corrupt records detected and moved aside by reads/verify.
    quarantined: int = 0
    #: Records evicted by compaction in this process.
    evictions: int = 0
    #: Reads that failed with an I/O error (treated as misses).
    read_errors: int = 0
    records: int = 0
    bytes: int = 0
    quarantined_records: int = 0
    tmp_files: int = 0
    max_bytes: int = 0
    root: str = ""

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "put_skips": self.put_skips,
            "put_errors": self.put_errors,
            "quarantined": self.quarantined,
            "evictions": self.evictions,
            "read_errors": self.read_errors,
            "records": self.records,
            "bytes": self.bytes,
            "quarantined_records": self.quarantined_records,
            "tmp_files": self.tmp_files,
            "max_bytes": self.max_bytes,
            "hit_rate": self.hit_rate,
            "root": self.root,
        }


@dataclass
class VerifyReport:
    """Outcome of a full-store :meth:`ResultStore.verify` scan.

    ``undetected_corrupt`` is the store's core promise: corrupt records
    that are *still live* after the scan (detection or quarantine
    failed).  It must be zero after any crash; the chaos suite and the
    CI smoke assert exactly that.  Serialises as a
    ``repro-store-verify-v1`` document (validated by
    :mod:`repro.obs.check`).
    """

    root: str
    records: int = 0
    valid: int = 0
    corrupt: List[Dict[str, str]] = field(default_factory=list)
    quarantined_now: int = 0
    quarantined_records: int = 0
    tmp_files: int = 0
    bytes: int = 0
    journal: Optional[Dict[str, Any]] = None

    SCHEMA = "repro-store-verify-v1"

    @property
    def undetected_corrupt(self) -> int:
        return len(self.corrupt) - self.quarantined_now

    @property
    def ok(self) -> bool:
        missing = (self.journal or {}).get("missing", [])
        return self.undetected_corrupt == 0 and not missing

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.SCHEMA,
            "root": self.root,
            "records": self.records,
            "valid": self.valid,
            "corrupt": list(self.corrupt),
            "quarantined_now": self.quarantined_now,
            "quarantined_records": self.quarantined_records,
            "undetected_corrupt": self.undetected_corrupt,
            "tmp_files": self.tmp_files,
            "bytes": self.bytes,
            "journal": self.journal,
        }


class _RecordError(ValueError):
    """A record failed structural verification (reason in ``args[0]``)."""


def _decode_record(raw: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Split and verify a record's magic/header/payload (no unpickling).

    Raises :class:`_RecordError` with a short machine-readable reason on
    the first violation.
    """
    if not raw.startswith(_MAGIC):
        raise _RecordError("bad-magic")
    buffer = io.BytesIO(raw[len(_MAGIC):])
    header_line = buffer.readline()
    if not header_line.endswith(b"\n"):
        raise _RecordError("truncated-header")
    try:
        header = json.loads(header_line)
    except (json.JSONDecodeError, UnicodeDecodeError):
        raise _RecordError("corrupt-header") from None
    if not isinstance(header, dict):
        raise _RecordError("corrupt-header")
    for key in ("fingerprint", "analysis", "params"):
        if not isinstance(header.get(key), str):
            raise _RecordError("corrupt-header")
    length = header.get("payload_len")
    checksum = header.get("checksum")
    if not isinstance(length, int) or length < 0 \
            or not isinstance(checksum, str):
        raise _RecordError("corrupt-header")
    payload = buffer.read()
    if len(payload) != length:
        raise _RecordError("torn-payload")
    if hashlib.sha256(payload).hexdigest() != checksum:
        raise _RecordError("checksum-mismatch")
    return header, payload


class ResultStore:
    """A crash-consistent, content-addressed analysis-result store.

    >>> import tempfile
    >>> from repro.graphs.examples import figure3_graph
    >>> from repro.analysis.throughput import throughput
    >>> g = figure3_graph()
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = ResultStore(root)
    ...     _ = store.put(g.fingerprint(), "throughput", throughput(g),
    ...                   params={"method": "symbolic"})
    ...     status, value = store.get(g.fingerprint(), "throughput",
    ...                               params={"method": "symbolic"})
    >>> status, value.cycle_time
    ('hit', Fraction(7, 1))
    """

    def __init__(self, root: Union[str, Path],
                 max_bytes: int = DEFAULT_MAX_BYTES):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be positive, got {max_bytes!r}")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self._records = self.root / "records"
        self._tmp = self.root / "tmp"
        self._quarantine = self.root / "quarantine"
        self._lock = threading.Lock()
        self._tmp_seq = 0
        # Approximate live size, maintained incrementally by this
        # process's puts; compact() rescans authoritatively.  -1 means
        # "not yet measured" (first put scans once).
        self._size_estimate = -1
        self._hits = self._misses = 0
        self._puts = self._put_skips = self._put_errors = 0
        self._quarantined = self._evictions = self._read_errors = 0
        for directory in (self._records, self._tmp, self._quarantine):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------

    def _record_path(self, digest: str) -> Path:
        return self._records / digest[:2] / f"{digest}.rec"

    def _tmp_path(self, digest: str) -> Path:
        with self._lock:
            self._tmp_seq += 1
            seq = self._tmp_seq
        return self._tmp / f"{digest}.{os.getpid()}.{seq}.tmp"

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        # Durability of the rename itself: without this, a power cut can
        # forget the directory entry even though the data blocks exist.
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. dirs not openable (win)
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # read path (lock-free)
    # ------------------------------------------------------------------

    def get(self, fingerprint: str, analysis: str,
            params: Optional[Dict[str, Any]] = None) -> Tuple[str, Any]:
        """Probe the store: ``(status, value)``.

        ``status`` is :data:`HIT` (value is the stored result),
        :data:`MISS`, :data:`QUARANTINED` (a record existed but failed
        verification and was moved aside) or :data:`READ_ERROR` (an I/O
        failure; the record — if any — was left alone).  Never raises:
        a broken disk degrades the tier to a miss, not the analysis to
        an error.
        """
        digest = key_digest(fingerprint, analysis, params)
        path = self._record_path(digest)
        try:
            crash_point("store.read")
            raw = path.read_bytes()
        except FileNotFoundError:
            self._count("_misses")
            return MISS, None
        except OSError:
            self._count("_read_errors")
            self._count("_misses")
            return READ_ERROR, None
        try:
            header, payload = _decode_record(raw)
            if (header["fingerprint"] != fingerprint
                    or header["analysis"] != analysis
                    or header["params"] != canonical_params(params)):
                # A renamed/aliased record answers for the wrong key:
                # stale data wearing a fresh address.  Never serve it.
                raise _RecordError("key-mismatch")
            value = self._unpickle(payload)
        except _RecordError as error:
            self._quarantine_record(path, str(error))
            self._count("_misses")
            return QUARANTINED, None
        # LRU by mtime: a hit refreshes the record's eviction clock.
        try:
            os.utime(path)
        except OSError:
            pass  # eviction order degrades gracefully; the data is fine
        self._count("_hits")
        add_event("store-hit", analysis=analysis)
        return HIT, value

    @staticmethod
    def _unpickle(payload: bytes) -> Any:
        try:
            return pickle.loads(payload)
        except (pickle.UnpicklingError, EOFError, ValueError, TypeError,
                AttributeError, ImportError, IndexError, KeyError):
            # The checksum passed, so these bytes are what was written —
            # but written by an incompatible or buggy producer.  Treat
            # exactly like corruption: quarantine, recompute.
            raise _RecordError("unpicklable-payload") from None

    def _quarantine_record(self, path: Path, reason: str) -> bool:
        """Atomically move a bad record aside; True when it is no longer
        live (moved, or already gone)."""
        destination = self._quarantine / f"{path.stem}.{reason}.rec"
        try:
            crash_point("store.quarantine")
            os.replace(path, destination)
        except FileNotFoundError:
            pass  # another process already dealt with it
        except OSError:
            # Could not move it — last resort: delete, so the corrupt
            # bytes can never be served.
            try:
                path.unlink()
            except OSError:
                return False
        self._count("_quarantined")
        add_event("store-quarantine", reason=reason)
        return True

    # ------------------------------------------------------------------
    # write path (lock-free; atomicity via os.replace)
    # ------------------------------------------------------------------

    def put(self, fingerprint: str, analysis: str, value: Any,
            params: Optional[Dict[str, Any]] = None) -> bool:
        """Publish one result durably; True when a valid record exists.

        Timed-out values are refused (a budget-shaped answer must never
        become a durable fact); unpicklable values and I/O failures are
        swallowed into ``put_errors`` — persistence is an optimisation,
        the caller already holds the computed result.
        """
        provenance = getattr(value, "provenance", None)
        if getattr(provenance, "status", None) == "timed-out":
            self._count("_put_errors")
            return False
        digest = key_digest(fingerprint, analysis, params)
        final = self._record_path(digest)
        if final.exists():
            # Content-addressed: same key, same value.  First publisher
            # wins; everyone else skips the I/O entirely.
            self._count("_put_skips")
            return True
        try:
            payload = pickle.dumps(value, protocol=_PICKLE_PROTOCOL)
        except (pickle.PicklingError, TypeError, AttributeError):
            self._count("_put_errors")
            return False
        header = json.dumps({
            "fingerprint": fingerprint,
            "analysis": analysis,
            "params": canonical_params(params),
            "payload_len": len(payload),
            "checksum": hashlib.sha256(payload).hexdigest(),
        }, sort_keys=True).encode("utf-8") + b"\n"
        tmp = self._tmp_path(digest)
        try:
            with open(tmp, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(header)
                handle.write(payload[: len(payload) // 2])
                crash_point("store.tmp-write")
                handle.write(payload[len(payload) // 2:])
                handle.flush()
                crash_point("store.tmp-sync")
                os.fsync(handle.fileno())
            final.parent.mkdir(parents=True, exist_ok=True)
            crash_point("store.publish")
            os.replace(tmp, final)
            crash_point("store.publish-done")
            self._fsync_dir(final.parent)
        except OSError:
            self._count("_put_errors")
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        grown = len(_MAGIC) + len(header) + len(payload)
        with self._lock:
            self._puts += 1
            if self._size_estimate < 0:
                self._size_estimate = self._census()[1]
            else:
                self._size_estimate += grown
            over_budget = self._size_estimate > self.max_bytes
        add_event("store-publish", analysis=analysis, bytes=grown)
        if over_budget:
            self.compact(blocking=False)
        return True

    # ------------------------------------------------------------------
    # maintenance: census, verify, compact, purge
    # ------------------------------------------------------------------

    def _iter_records(self) -> Iterator[Path]:
        if not self._records.exists():
            return
        for shard in sorted(self._records.iterdir()):
            if not shard.is_dir():
                continue
            yield from sorted(shard.glob("*.rec"))

    def _census(self) -> Tuple[int, int]:
        """(record count, total record bytes) by directory scan."""
        count = total = 0
        for path in self._iter_records():
            try:
                total += path.stat().st_size
                count += 1
            except OSError:
                continue  # racing eviction/quarantine
        return count, total

    def stats(self) -> StoreStats:
        records, total = self._census()
        quarantined = sum(1 for _ in self._quarantine.glob("*.rec")) \
            if self._quarantine.exists() else 0
        tmp_files = sum(1 for _ in self._tmp.glob("*.tmp")) \
            if self._tmp.exists() else 0
        with self._lock:
            return StoreStats(
                hits=self._hits, misses=self._misses,
                puts=self._puts, put_skips=self._put_skips,
                put_errors=self._put_errors,
                quarantined=self._quarantined, evictions=self._evictions,
                read_errors=self._read_errors,
                records=records, bytes=total,
                quarantined_records=quarantined, tmp_files=tmp_files,
                max_bytes=self.max_bytes, root=str(self.root),
            )

    def verify(self, quarantine: bool = True) -> VerifyReport:
        """Scan every record; quarantine (default) the corrupt ones.

        Verification re-runs the full read-path checks — magic, header,
        payload length, checksum, key-echo against the header itself,
        and unpickling — so a report with ``undetected_corrupt == 0``
        means every surviving record would deserialise correctly.
        """
        report = VerifyReport(root=str(self.root))
        for path in self._iter_records():
            try:
                size = path.stat().st_size
                raw = path.read_bytes()
            except OSError:
                continue  # racing writer/evictor; nothing live to judge
            report.records += 1
            reason = None
            try:
                header, payload = _decode_record(raw)
                if key_digest(header["fingerprint"], header["analysis"],
                              json.loads(header["params"])) != path.stem:
                    reason = "key-mismatch"
                else:
                    self._unpickle(payload)
            except _RecordError as error:
                reason = str(error)
            if reason is None:
                report.valid += 1
                report.bytes += size
                continue
            entry = {"path": str(path), "reason": reason}
            report.corrupt.append(entry)
            if quarantine and self._quarantine_record(path, reason):
                report.quarantined_now += 1
        report.quarantined_records = sum(
            1 for _ in self._quarantine.glob("*.rec"))
        report.tmp_files = sum(1 for _ in self._tmp.glob("*.tmp"))
        return report

    def check_journal(self, journal_path: Union[str, Path],
                      report: Optional[VerifyReport] = None) -> Dict[str, Any]:
        """Cross-check a batch journal against the store: every analysis
        a journal line records as completed must have a live, valid
        record here.  (The batch pipeline publishes to the store before
        appending to the journal, so the journal is always the subset.)
        """
        from repro.analysis.journal import BatchJournal

        checked = matched = 0
        missing: List[Dict[str, str]] = []
        for fingerprint, record in BatchJournal(journal_path).load().items():
            if not record.ok:
                continue
            for analysis, summary in record.values.items():
                params = None
                if analysis == "throughput" and isinstance(summary, dict) \
                        and summary.get("method"):
                    params = {"method": summary["method"]}
                checked += 1
                status, _ = self.get(fingerprint, analysis, params=params)
                if status == HIT:
                    matched += 1
                else:
                    missing.append({
                        "fingerprint": fingerprint,
                        "analysis": analysis,
                        "status": status,
                    })
        agreement = {"path": str(journal_path), "checked": checked,
                     "matched": matched, "missing": missing}
        if report is not None:
            report.journal = agreement
        return agreement

    def compact(self, max_bytes: Optional[int] = None,
                blocking: bool = True) -> Dict[str, int]:
        """Sweep temp garbage and evict LRU records down to the budget.

        Takes the exclusive store lock; with ``blocking=False`` (the
        opportunistic call inside :meth:`put`) a busy lock means another
        process is already compacting and this call returns at once.
        """
        budget = self.max_bytes if max_bytes is None else max_bytes
        with self._exclusive_lock(blocking=blocking) as acquired:
            if not acquired:
                return {"evicted": 0, "freed_bytes": 0, "tmp_removed": 0,
                        "remaining_bytes": -1, "skipped": 1}
            tmp_removed = 0
            for leftover in self._tmp.glob("*.tmp"):
                # Any temp file is either crash debris or a write that
                # compaction is about to race; deleting the latter makes
                # that writer's os.replace fail cleanly (a counted
                # put_error), never a corrupt record.
                try:
                    leftover.unlink()
                    tmp_removed += 1
                except OSError:
                    continue
            entries = []
            for path in self._iter_records():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
            total = sum(size for _, size, _ in entries)
            entries.sort(key=lambda item: (item[0], str(item[2])))
            evicted = freed = 0
            for _, size, path in entries:
                if total <= budget:
                    break
                crash_point("store.evict")
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                freed += size
                evicted += 1
            with self._lock:
                self._evictions += evicted
                self._size_estimate = total
        return {"evicted": evicted, "freed_bytes": freed,
                "tmp_removed": tmp_removed, "remaining_bytes": total,
                "skipped": 0}

    def purge(self, analysis: Optional[str] = None,
              quarantine_only: bool = False) -> int:
        """Delete records: all of them, one analysis, or only the
        quarantine directory.  Returns the number of files removed."""
        removed = 0
        if not quarantine_only:
            for path in list(self._iter_records()):
                if analysis is not None:
                    try:
                        header, _ = _decode_record(path.read_bytes())
                    except (_RecordError, OSError):
                        header = None
                    if header is not None and header["analysis"] != analysis:
                        continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        if analysis is None:
            for path in list(self._quarantine.glob("*.rec")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        with self._lock:
            self._size_estimate = -1
        return removed

    def _exclusive_lock(self, blocking: bool = True):
        return _StoreLock(self.root / ".lock", blocking=blocking)

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    def __repr__(self) -> str:
        return f"ResultStore({str(self.root)!r}, max_bytes={self.max_bytes})"


class _StoreLock:
    """Context manager for the store's exclusive maintenance lock.

    ``flock`` on POSIX (released by the kernel when the holder dies, so
    a crashed compaction never wedges the store); degrades to a no-op
    that always "acquires" where ``fcntl`` is unavailable — single
    process assumed there.  Yields whether the lock was acquired.
    """

    def __init__(self, path: Path, blocking: bool):
        self.path = path
        self.blocking = blocking
        self._fd: Optional[int] = None

    def __enter__(self) -> bool:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return True
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR)
        except OSError:
            return False
        flags = fcntl.LOCK_EX | (0 if self.blocking else fcntl.LOCK_NB)
        try:
            fcntl.flock(fd, flags)
        except OSError:
            os.close(fd)
            return False
        self._fd = fd
        return True

    def __exit__(self, *exc_info) -> None:
        if self._fd is not None:
            try:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            finally:
                os.close(self._fd)
            self._fd = None
