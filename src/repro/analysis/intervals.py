"""Interval (BCET/WCET) timing analysis.

Worst-case execution times are often known only as intervals.  Because
the iteration period is monotone in every actor's execution time
(Proposition 1 of the paper again: slowing an actor only adds to the
max-plus stamps), evaluating the exact analysis at the interval's two
endpoints yields exact *bounds* on everything in between — no interval
arithmetic, no over-approximation beyond the inputs themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from numbers import Rational
from typing import Dict, Mapping, Tuple

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class IntervalThroughput:
    """Guaranteed period bounds under interval execution times.

    Any concrete timing T with lo(a) ≤ T(a) ≤ hi(a) for all actors has
    an iteration period within [best_case, worst_case].
    """

    best_case: Fraction
    worst_case: Fraction

    @property
    def spread(self) -> Fraction:
        return self.worst_case - self.best_case

    def contains(self, cycle_time) -> bool:
        return self.best_case <= cycle_time <= self.worst_case


def _with_times(graph: SDFGraph, times: Mapping[str, Rational]) -> SDFGraph:
    probe = graph.copy()
    for actor, value in times.items():
        probe.set_execution_time(actor, value)
    return probe


def interval_throughput(
    graph: SDFGraph,
    intervals: Mapping[str, Tuple[Rational, Rational]],
    method: str = "symbolic",
) -> IntervalThroughput:
    """Exact period bounds when some actors' times are intervals.

    ``intervals`` maps actor names to (best-case, worst-case) execution
    times; unlisted actors keep their graph times.  Raises
    :class:`ValidationError` on inverted intervals or unknown actors.
    """
    lo: Dict[str, Rational] = {}
    hi: Dict[str, Rational] = {}
    for actor, (low, high) in intervals.items():
        graph.actor(actor)
        if low > high:
            raise ValidationError(
                f"interval for {actor!r} is inverted: [{low}, {high}]"
            )
        lo[actor] = low
        hi[actor] = high

    best = throughput(_with_times(graph, lo), method=method)
    worst = throughput(_with_times(graph, hi), method=method)
    if best.unbounded or worst.unbounded:
        raise ValidationError(
            "throughput unbounded at an interval endpoint; bounds undefined"
        )
    return IntervalThroughput(
        best_case=Fraction(best.cycle_time), worst_case=Fraction(worst.cycle_time)
    )
