"""Transient analysis: the start-up behaviour before the periodic regime.

Self-timed executions of timed SDF graphs converge to a periodic regime
with rate 1/λ, but the first iterations can be faster or slower — the
transient matters for latency-critical start-up (first video frame,
codec priming).  With the iteration matrix M, the token availability
times after k iterations are ``x(k) = M^k ⊗ 0``, and the max-plus
recurrence solver gives the whole trajectory in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.symbolic import SymbolicIteration, symbolic_iteration
from repro.maxplus.recurrence import Recurrence, solve_recurrence
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class TransientAnalysis:
    """Start-up profile of a timed SDF graph.

    ``iteration_completions[k]`` is the time by which the tokens of
    iteration k are all available (iteration 0 = the initial tokens at
    time 0).  ``transient_iterations`` is the number of iterations before
    the inter-iteration gap settles to the period pattern; ``period`` is
    λ (time per iteration, averaged over one cyclicity window).
    """

    recurrence: Recurrence
    iteration_completions: Tuple[Fraction, ...]
    transient_iterations: int
    period: Fraction

    def completion(self, k: int) -> Fraction:
        """Completion time of iteration ``k`` (any k, closed form)."""
        if k < len(self.iteration_completions):
            return self.iteration_completions[k]
        return Fraction(self.recurrence.completion_time(k))

    def gaps(self, count: int) -> List[Fraction]:
        """The first ``count`` inter-iteration gaps."""
        return [
            Fraction(self.completion(k + 1)) - Fraction(self.completion(k))
            for k in range(count)
        ]


def transient_analysis(
    graph: SDFGraph,
    horizon: int = 64,
    iteration: Optional[SymbolicIteration] = None,
) -> TransientAnalysis:
    """Closed-form start-up profile of ``graph``.

    ``horizon`` bounds how many explicit iteration completions are
    tabulated (the closed form continues beyond it).
    """
    if iteration is None:
        iteration = symbolic_iteration(graph)
    recurrence = solve_recurrence(iteration.matrix)
    explicit = max(horizon, recurrence.transient + 2 * recurrence.cyclicity)
    completions = tuple(
        Fraction(recurrence.completion_time(k)) for k in range(explicit + 1)
    )
    period = recurrence.rate
    # Find when the gap sequence becomes periodic with the cyclicity:
    gaps = [completions[k + 1] - completions[k] for k in range(explicit)]
    cyc = recurrence.cyclicity
    settle = recurrence.transient
    while settle > 0:
        candidate = settle - 1
        if candidate + cyc < len(gaps) and all(
            gaps[candidate + i] == gaps[candidate + i + cyc]
            for i in range(min(cyc, len(gaps) - candidate - cyc))
        ):
            settle = candidate
        else:
            break
    return TransientAnalysis(
        recurrence=recurrence,
        iteration_completions=completions,
        transient_iterations=settle,
        period=period,
    )
