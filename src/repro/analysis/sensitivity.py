"""Sensitivity of the iteration period to actor execution times.

For a timed SDF graph with period λ, each actor ``a`` has an exact
directional derivative ``dλ/dT(a)``: if the critical cycle of the
(traditional-HSDF) cycle-ratio view contains ``m`` firings of ``a`` over
``t`` tokens, then slowing every firing of ``a`` by δ increases the
critical cycle's ratio by ``(m/t)·δ`` — and λ by exactly that, for small
enough δ.  Actors off every critical cycle have derivative 0 and a
positive *slack*: the largest slowdown that leaves λ unchanged.

This is the "what should I optimise" companion to
:mod:`repro.analysis.bottleneck`: sensitivity says how much each actor's
speed matters, slack says how much head-room non-critical actors have.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional

from repro.analysis.throughput import hsdf_cycle_ratio_graph, throughput
from repro.errors import ValidationError
from repro.mcm.howard import howard_mcr
from repro.sdf.graph import SDFGraph
from repro.sdf.transform import traditional_hsdf


def _copy_owner(copy_name: str) -> str:
    """Original actor of an HSDF copy name ('a#3' → 'a')."""
    base, _, _ = copy_name.rpartition("#")
    return base or copy_name


@dataclass(frozen=True)
class SensitivityReport:
    """Exact first-order sensitivities of the iteration period."""

    cycle_time: Fraction
    #: dλ/dT(a) per actor (0 for actors off every critical cycle).
    derivative: Dict[str, Fraction]

    def critical_actors(self) -> list:
        return [a for a, d in self.derivative.items() if d > 0]


def sensitivity(graph: SDFGraph) -> SensitivityReport:
    """Exact dλ/dT(a) for every actor of a consistent live graph.

    Computed from one critical cycle of the firing-granular cycle-ratio
    view: the derivative of a cycle's ratio w.r.t. T(a) is (number of
    a-firings on the cycle)/(tokens on the cycle).  When several cycles
    are simultaneously critical the reported values are those of the one
    found — a valid subgradient (the true dλ/dT is their maximum).
    """
    expanded = graph if graph.is_homogeneous() else traditional_hsdf(graph)
    result = howard_mcr(hsdf_cycle_ratio_graph(expanded))
    if result.value is None:
        raise ValidationError("acyclic graph: the period is unbounded below")
    tokens = sum(e.transit for e in result.cycle)
    counts: Dict[str, int] = {}
    for edge in result.cycle:
        # Edge weights carry the *source* actor's execution time.
        owner = _copy_owner(str(edge.source)) if not graph.is_homogeneous() else edge.source
        counts[owner] = counts.get(owner, 0) + 1
    derivative = {
        a: Fraction(counts.get(a, 0), tokens) for a in graph.actor_names
    }
    return SensitivityReport(cycle_time=Fraction(result.value), derivative=derivative)


def slack(graph: SDFGraph, actor: str, max_slack: int = 10**9) -> Fraction:
    """How much ``actor`` may slow down (per firing) without changing λ.

    0 for critical actors; exact value found by analysing the graph with
    the actor's time replaced symbolically — concretely, by re-running
    the analysis at candidate times and bisecting on the exact rationals
    (the map T(a) → λ is piecewise linear and non-decreasing).
    """
    graph.actor(actor)
    base = throughput(graph, method="hsdf").cycle_time

    def period_with(extra: Fraction) -> Fraction:
        probe = graph.copy()
        probe.set_execution_time(actor, graph.execution_time(actor) + extra)
        return throughput(probe, method="hsdf").cycle_time

    if period_with(Fraction(0)) != base:  # pragma: no cover - sanity
        raise AssertionError("non-deterministic analysis")

    # Exponential search for an upper bound where λ changes.
    high = Fraction(1)
    while period_with(high) == base:
        high *= 2
        if high > max_slack:
            return Fraction(max_slack)
    low = Fraction(0)
    # λ(T) is piecewise linear with breakpoints at rationals whose
    # denominators divide some cycle's token count; bisect until the
    # bracket pins the unique breakpoint, then return the lower end.
    token_bound = max(
        1, sum(e.tokens for e in (graph if graph.is_homogeneous() else traditional_hsdf(graph)).edges)
    )
    gap = Fraction(1, token_bound * token_bound)
    while high - low > gap:
        mid = (low + high) / 2
        if period_with(mid) == base:
            low = mid
        else:
            high = mid
    # The breakpoint is the largest t with λ(t) == base in [low, high];
    # scan the few candidate rationals with denominator <= token_bound.
    from fractions import Fraction as F

    best = low
    for denominator in range(1, token_bound + 1):
        numerator = int(high * denominator)
        for num in (numerator - 1, numerator, numerator + 1):
            candidate = F(num, denominator)
            if low <= candidate <= high and period_with(candidate) == base:
                if candidate > best:
                    best = candidate
    return best
