"""Buffer-capacity modelling and sizing.

SDF channels are conceptually unbounded; a finite buffer of capacity
``β`` on channel ``a → b`` is modelled by a *reverse* edge ``b → a`` with
``β − d`` initial tokens (space), consumption = the forward production
rate and production = the forward consumption rate — the standard
construction used in throughput/buffer trade-off exploration (Stuijk et
al., reference [18] of the paper; Wiggers et al., reference [19]).

On top of that model this module offers:

* :func:`channel_occupancy_bounds` — exact peak occupancy per channel in
  the periodic regime of self-timed execution;
* :func:`minimal_buffer_sizes` — the smallest per-channel capacities that
  keep the graph deadlock-free (liveness-oriented sizing);
* :func:`buffer_aware_throughput` — throughput under given capacities.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import DeadlockError, ValidationError
from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import is_live
from repro.sdf.simulation import SelfTimedSimulation, simulation_throughput


def buffer_aware_graph(
    graph: SDFGraph, capacities: Dict[str, int], name: Optional[str] = None
) -> SDFGraph:
    """A copy of ``graph`` with finite buffers modelled by reverse edges.

    ``capacities`` maps edge names to capacities (in tokens); channels not
    listed stay unbounded.  A capacity smaller than a channel's initial
    tokens is rejected — the initial state would already overflow.
    """
    result = graph.copy(name or f"{graph.name}-buffered")
    for edge_name, capacity in capacities.items():
        edge = graph.edge(edge_name)
        if capacity < edge.tokens:
            raise ValidationError(
                f"capacity {capacity} of {edge_name!r} is below its "
                f"{edge.tokens} initial tokens"
            )
        result.add_edge(
            edge.target,
            edge.source,
            production=edge.consumption,
            consumption=edge.production,
            tokens=capacity - edge.tokens,
            name=f"space_{edge_name}",
        )
    return result


def buffer_aware_throughput(
    graph: SDFGraph, capacities: Dict[str, int], method: str = "symbolic"
):
    """Throughput of ``graph`` under finite buffer capacities.

    Returns a :class:`repro.analysis.throughput.ThroughputResult`; smaller
    capacities can only lower throughput (more dependencies — the same
    monotonicity as Proposition 1 of the paper).

    ``method`` selects the throughput back-end.  The symbolic default is
    usually fastest, but its cost grows with the *total token count* —
    which includes the space tokens this model introduces — so for very
    generous capacities the ``"hsdf"`` back-end (whose cost depends on
    the repetition vector instead) can be the better choice.
    """
    from repro.analysis.throughput import throughput  # local: avoid cycle

    return throughput(buffer_aware_graph(graph, capacities), method=method)


def channel_occupancy_bounds(graph: SDFGraph) -> Dict[str, int]:
    """Peak token count per channel over the transient and one full period
    of self-timed execution (an exact bound for the unbounded execution,
    since the behaviour is periodic afterwards).

    Requires a periodic self-timed execution — in practice a strongly
    connected graph (or one made so by finite buffers, see
    :func:`buffer_aware_graph`); raises
    :class:`repro.errors.ConvergenceError` when tokens build up without
    bound and no period exists."""
    measured = simulation_throughput(graph)  # establishes periodicity exists
    sim = SelfTimedSimulation(graph)
    peak = {e.name: e.tokens for e in graph.edges}
    horizon = measured.transient + measured.period
    while not sim.is_deadlocked and sim.now <= horizon:
        for edge_name, count in sim.tokens.items():
            if count > peak[edge_name]:
                peak[edge_name] = count
        sim.step()
    return peak


def minimal_buffer_sizes(
    graph: SDFGraph, max_capacity: int = 10_000
) -> Dict[str, int]:
    """Smallest per-channel capacities preserving liveness.

    Greedy per-channel binary search against a liveness check, starting
    from the structural lower bound ``max(p, c, d)`` for each channel.
    Channels are processed in insertion order with all *other* channels
    unbounded, then the combination is verified live (and capacities are
    bumped jointly if the combination deadlocks — rare, but buffer
    minimality is not channel-separable in general).
    """
    lower: Dict[str, int] = {}
    for edge in graph.edges:
        if edge.is_self_loop:
            continue  # a self-loop already bounds itself
        lower[edge.name] = max(edge.production, edge.consumption, edge.tokens)

    sizes: Dict[str, int] = {}
    for edge_name, start in lower.items():
        lo, hi = start, None
        probe = start
        while probe <= max_capacity:
            if is_live(buffer_aware_graph(graph, {edge_name: probe})):
                hi = probe
                break
            probe *= 2
        if hi is None:
            raise DeadlockError(
                f"channel {edge_name!r} needs more than {max_capacity} tokens "
                "of buffer space to stay live"
            )
        while lo < hi:
            mid = (lo + hi) // 2
            if is_live(buffer_aware_graph(graph, {edge_name: mid})):
                hi = mid
            else:
                lo = mid + 1
        sizes[edge_name] = hi

    # Joint verification: grow capacities together until the combination
    # is live (monotone, so this terminates).
    combined = dict(sizes)
    while not is_live(buffer_aware_graph(graph, combined)):
        grew = False
        for edge_name in combined:
            if combined[edge_name] < max_capacity:
                combined[edge_name] += 1
                grew = True
        if not grew:
            raise DeadlockError(
                f"no live buffer assignment within capacity {max_capacity}"
            )
    return combined
