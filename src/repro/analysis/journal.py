"""Crash-safe, fingerprint-keyed journaling of batch runs.

A long registry sweep that dies at graph 900 of 1000 — a worker
segfault, an OOM kill, an operator Ctrl-C — should not cost the first
899 results.  :class:`BatchJournal` appends one JSON line per finished
graph, flushed and fsynced immediately, so the journal on disk is
always a prefix of the truth: every line describes an analysis that
really completed (or really failed), and a half-written trailing line
from a mid-write crash is detected and ignored on load.

Records are keyed by the graph's content fingerprint
(:meth:`repro.sdf.graph.SDFGraph.fingerprint`), not its name or its
position in the input list, so a resumed run may reorder, rename or
extend the graph list and still skip exactly the work that is already
done.  ``run_batch(..., resume=True)`` replays completed fingerprints
from the journal and analyses only the rest.

Values are journaled as JSON *summaries* (cycle times as exact
fraction strings, repetition vectors as dicts) — enough to rebuild the
report a human reads; replaying a resumed graph's full typed result
object requires re-analysis (which the content-addressed cache makes
cheap if the process is still warm).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import IO, Any, Dict, List, Optional, Union

__all__ = ["BatchJournal", "JournalRecord", "summarise_value"]


def summarise_value(analysis: str, value: Any) -> Any:
    """A JSON-able summary of one analysis value."""
    if value is None:
        return None
    if analysis == "throughput":
        summary = {
            "cycle_time": None if value.cycle_time is None else str(value.cycle_time),
            "method": value.method,
            "unbounded": value.unbounded,
        }
        if getattr(value, "provenance", None) is not None:
            summary["provenance"] = value.provenance.as_dict()
        return summary
    if analysis == "latency":
        return {"makespan": str(value.makespan)}
    if analysis == "repetition":
        return dict(value)
    if analysis == "symbolic_iteration":
        return {
            "tokens": value.token_count,
            "firings": len(value.schedule),
        }
    if isinstance(value, Fraction):
        return str(value)
    return repr(value)


@dataclass
class JournalRecord:
    """One journaled per-graph outcome."""

    name: str
    fingerprint: str
    ok: bool
    values: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    duration: float = 0.0
    quarantined: bool = False
    attempts: int = 1

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": "result",
            "name": self.name,
            "fingerprint": self.fingerprint,
            "ok": self.ok,
            "values": self.values,
            "error": self.error,
            "error_type": self.error_type,
            "duration": self.duration,
            "quarantined": self.quarantined,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JournalRecord":
        return cls(
            name=data["name"],
            fingerprint=data["fingerprint"],
            ok=bool(data.get("ok", False)),
            values=dict(data.get("values") or {}),
            error=data.get("error"),
            error_type=data.get("error_type"),
            duration=float(data.get("duration", 0.0)),
            quarantined=bool(data.get("quarantined", False)),
            attempts=int(data.get("attempts", 1)),
        )


class BatchJournal:
    """Append-only JSONL journal of one (possibly resumed) batch run.

    Opened lazily on the first write; every record is flushed *and*
    fsynced before :meth:`record` returns, so a crash immediately after
    a graph finishes cannot lose that graph.  Reading tolerates a
    truncated final line (the crash landed mid-write) and later records
    for a fingerprint supersede earlier ones (a resumed run re-analysing
    a previously failed graph rewrites its verdict).
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._file: Optional[IO[str]] = None

    # -- writing --------------------------------------------------------

    def record(self, record: JournalRecord) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a", encoding="utf-8")
        line = json.dumps(record.as_dict(), sort_keys=True)
        self._file.write(line + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "BatchJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- reading --------------------------------------------------------

    def load(self) -> Dict[str, JournalRecord]:
        """All journaled records, keyed by fingerprint (last one wins).

        Missing file → empty dict (a fresh run).  A corrupt *trailing*
        line is skipped (interrupted write); a corrupt line in the
        middle raises, because it means the file is not ours.
        """
        if not self.path.exists():
            return {}
        records: Dict[str, JournalRecord] = {}
        lines = self.path.read_text(encoding="utf-8").splitlines()
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                if index == len(lines) - 1:
                    break  # torn tail from a crash mid-write: ignore
                raise ValueError(
                    f"corrupt journal line {index + 1} in {self.path}: {line[:80]!r}"
                )
            if data.get("kind") != "result":
                continue
            record = JournalRecord.from_dict(data)
            records[record.fingerprint] = record
        return records

    def completed_fingerprints(self) -> List[str]:
        """Fingerprints whose latest record is a success (resume skips these)."""
        return [fp for fp, rec in self.load().items() if rec.ok]

    def __repr__(self) -> str:
        return f"BatchJournal({str(self.path)!r})"
