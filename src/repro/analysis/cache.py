"""Content-addressed memoization of SDF analyses.

Parametric sweeps, scenario analyses and design-space exploration call
the same exact analyses on the same graphs over and over (hundreds of
variants differing in a single rate or token count).  This module makes
repeated analysis O(1): results are keyed on the graph's canonical
content hash (:meth:`repro.sdf.graph.SDFGraph.fingerprint`) plus the
analysis name and its parameters, and kept in a bounded LRU store.

Invalidation contract
---------------------
A cache entry is *never* invalidated in place — it is addressed by
content.  Mutating a graph through the builder API changes its
fingerprint, so the mutated graph simply misses the cache and the stale
entry ages out of the LRU.  Two structurally identical graphs (same
actors, execution times and edge multiset, regardless of insertion
order or display name) share entries; results that enumerate initial
tokens (``LatencyResult.token_times``) follow the token order of the
graph that populated the entry, which for equal-fingerprint graphs can
only permute slots of identically named edges.

Concurrency
-----------
All operations are thread-safe.  Concurrent misses on the same key are
*coalesced* (single-flight): one thread computes, the others wait and
share the result — this is what lets the batch runner dedupe scenario
suites full of repeated graphs.

Disk tier
---------
:meth:`AnalysisCache.attach_store` adds a durable second tier (a
:class:`repro.analysis.store.ResultStore`): lookups go memory → disk →
compute.  Only the single-flight *leader* probes the disk (so a key is
read at most once per miss storm) and publishes the freshly computed
result back; waiters share whatever the leader found.  Timed-out
computations raise before any insert, so — exactly as for the memory
tier — budget-shaped results are never persisted.  Disk traffic is
observable through the ``disk_*`` fields of :class:`CacheStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from repro.obs.trace import add_event
from repro.sdf.graph import SDFGraph

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "default_cache",
    "set_default_cache",
]


@dataclass
class CacheStats:
    """Observability counters of one :class:`AnalysisCache`.

    Instances are immutable-by-convention *snapshots*: every counter is
    read in one critical section of the cache lock (:meth:`AnalysisCache.
    stats`), so a snapshot is internally consistent even while other
    threads keep hitting the cache — ``hits + misses == lookups`` and
    ``size <= maxsize`` hold in every snapshot, never just eventually
    (property-tested under the thread backend in ``tests/test_cache.py``).
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    coalesced: int = 0
    #: Computations that raised instead of producing a value.  Errors are
    #: never cached: the in-flight entry is evicted so later callers
    #: retry (transient failures — timeouts, cancellations — must not
    #: poison the key).
    errors: int = 0
    #: Disk-tier traffic (all zero when no store is attached).  Probes
    #: happen only on leader misses, so every snapshot satisfies
    #: ``disk_hits + disk_misses <= misses``; quarantines and read
    #: errors are subsets of ``disk_misses`` (both degrade to a miss).
    disk_hits: int = 0
    disk_misses: int = 0
    disk_quarantined: int = 0
    disk_errors: int = 0
    #: Results durably published to the disk tier by this cache.
    disk_puts: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "coalesced": self.coalesced,
            "errors": self.errors,
            "disk_hits": self.disk_hits,
            "disk_misses": self.disk_misses,
            "disk_quarantined": self.disk_quarantined,
            "disk_errors": self.disk_errors,
            "disk_puts": self.disk_puts,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class _InFlight:
    """A computation in progress: waiters block on ``done``."""

    __slots__ = ("done", "value", "error")

    def __init__(self):
        self.done = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


def _freeze(params: Optional[Dict[str, Any]]) -> Tuple:
    """A hashable canonical form of a parameter dict."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


#: Sentinel distinguishing "the disk tier had nothing" from a stored
#: ``None`` value.
_DISK_MISS = object()


class AnalysisCache:
    """A bounded, thread-safe LRU cache of analysis results.

    Keys are ``(fingerprint, analysis, frozen-params)``; values are
    whatever the analysis returned.  Use :meth:`get_or_compute` for
    arbitrary analyses, or the typed conveniences
    (:meth:`repetition_vector`, :meth:`symbolic_iteration`,
    :meth:`throughput`, :meth:`latency`) which pair the key with the
    right library call.

    >>> from repro.graphs.examples import figure3_graph
    >>> cache = AnalysisCache(maxsize=64)
    >>> cold = cache.throughput(figure3_graph())
    >>> warm = cache.throughput(figure3_graph())
    >>> cold is warm, cache.stats().hits
    (True, 1)
    """

    def __init__(self, maxsize: int = 1024, store=None):
        if maxsize < 1:
            raise ValueError(f"maxsize must be positive, got {maxsize!r}")
        self.maxsize = maxsize
        self._store: "OrderedDict[Tuple[str, str, Tuple], Any]" = OrderedDict()
        self._inflight: Dict[Tuple[str, str, Tuple], _InFlight] = {}
        self._lock = threading.Lock()
        # Counter increments happen ONLY inside self._lock (including the
        # error path of get_or_compute): under the thread backend many
        # workers hammer one cache, and unguarded "+= 1" on these would
        # lose updates and break CacheStats snapshot consistency.
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._coalesced = 0
        self._errors = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_quarantined = 0
        self._disk_errors = 0
        self._disk_puts = 0
        self._metrics_registries: set = set()
        #: The durable second tier (a ResultStore), or None.
        self._disk = store

    def attach_store(self, store) -> "AnalysisCache":
        """Attach a :class:`repro.analysis.store.ResultStore` as the
        durable second tier (replacing any previous one; ``None``
        detaches).  Returns ``self`` for chaining.

        A bare reference swap (atomic in CPython): readers snapshot
        ``self._disk`` once per operation, so no lock is needed and a
        concurrent probe simply finishes against the tier it started
        with.
        """
        self._disk = store
        return self

    @property
    def disk_store(self):
        """The attached :class:`ResultStore`, or ``None``."""
        return self._disk

    # ------------------------------------------------------------------
    # core protocol
    # ------------------------------------------------------------------

    def key(
        self,
        graph: SDFGraph,
        analysis: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Tuple[str, str, Tuple]:
        return (graph.fingerprint(), analysis, _freeze(params))

    def lookup(
        self,
        graph: SDFGraph,
        analysis: str,
        params: Optional[Dict[str, Any]] = None,
    ) -> Optional[Any]:
        """The cached result, or ``None`` (counts as a hit/miss)."""
        key = self.key(graph, analysis, params)
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                self._hits += 1
                return self._store[key]
            self._misses += 1
            return None

    def store(
        self,
        graph: SDFGraph,
        analysis: str,
        value: Any,
        params: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """Insert a result computed elsewhere (e.g. by a worker process).

        With a disk tier attached the result is also published durably,
        so worker-computed results survive the parent process.
        """
        key = self.key(graph, analysis, params)
        with self._lock:
            self._insert(key, value)
        self._disk_publish(key[0], analysis, value, params)
        return value

    # ------------------------------------------------------------------
    # disk tier
    # ------------------------------------------------------------------

    def _disk_probe(
        self, fingerprint: str, analysis: str, params: Optional[Dict[str, Any]]
    ) -> Any:
        """Probe the durable tier; :data:`_DISK_MISS` when it has
        nothing (or no store is attached).  Runs outside the cache lock
        — disk latency must never block the memory tier."""
        disk = self._disk
        if disk is None:
            return _DISK_MISS
        status, value = disk.get(fingerprint, analysis, params=params)
        with self._lock:
            if status == "hit":
                self._disk_hits += 1
            else:
                self._disk_misses += 1
                if status == "quarantined":
                    self._disk_quarantined += 1
                elif status == "error":
                    self._disk_errors += 1
        return value if status == "hit" else _DISK_MISS

    def _disk_publish(
        self, fingerprint: str, analysis: str, value: Any,
        params: Optional[Dict[str, Any]],
    ) -> None:
        disk = self._disk
        if disk is None:
            return
        if disk.put(fingerprint, analysis, value, params=params):
            with self._lock:
                self._disk_puts += 1

    def _insert(self, key: Tuple[str, str, Tuple], value: Any) -> None:
        # Caller holds the lock.
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)
            # devlint: ignore[lock-discipline] every caller of _insert holds self._lock; the counter write is lock-protected one frame up
            self._evictions += 1

    def get_or_compute(
        self,
        graph: SDFGraph,
        analysis: str,
        compute: Callable[[], Any],
        params: Optional[Dict[str, Any]] = None,
    ) -> Any:
        """The cached result for ``(graph, analysis, params)``, computing
        it with ``compute()`` on a miss.

        Concurrent misses on one key run ``compute`` exactly once; the
        other threads wait for it.  A ``compute`` that raises poisons
        nothing: the in-flight entry is evicted *unconditionally* (even
        if bookkeeping itself fails), the error is re-raised in the
        leader and every waiter retries from scratch — so a transient
        failure (an :class:`repro.errors.AnalysisTimeout`, a cancelled
        token, an injected fault) never leaves a stale error or a
        wedged in-flight marker behind.  Failed computations count in
        ``stats().errors``.
        """
        key = self.key(graph, analysis, params)
        while True:
            with self._lock:
                if key in self._store:
                    self._store.move_to_end(key)
                    self._hits += 1
                    value = self._store[key]
                    hit = True
                else:
                    flight = self._inflight.get(key)
                    if flight is None:
                        flight = _InFlight()
                        self._inflight[key] = flight
                        self._misses += 1
                        leader = True
                    else:
                        self._coalesced += 1
                        leader = False
                    hit = False
            if hit:
                add_event("cache-hit", analysis=analysis, graph=graph.name)
                return value
            add_event(
                "cache-miss" if leader else "cache-coalesced",
                analysis=analysis, graph=graph.name,
            )
            if leader:
                try:
                    # Second tier: only the leader probes the disk, so a
                    # miss storm costs one read; waiters share the result
                    # through the normal single-flight protocol.
                    value = self._disk_probe(key[0], analysis, params)
                    if value is _DISK_MISS:
                        value = compute()
                        # A timed-out compute() raised above, so only
                        # final results ever reach the durable tier.
                        self._disk_publish(key[0], analysis, value, params)
                    else:
                        add_event("cache-disk-hit", analysis=analysis,
                                  graph=graph.name)
                    with self._lock:
                        self._insert(key, value)
                    flight.value = value
                    return value
                # devlint: ignore[broad-except] single-flight protocol: the error (whatever it is, KeyboardInterrupt included) must reach the waiters before re-raising, or they deadlock
                except BaseException as error:
                    flight.error = error
                    with self._lock:
                        self._errors += 1
                    raise
                finally:
                    # Unconditional eviction: whatever happened, the key
                    # must not stay in flight, and waiters must wake.
                    with self._lock:
                        self._inflight.pop(key, None)
                    flight.done.set()
            flight.done.wait()
            if flight.error is None:
                return flight.value
            # The leader failed; loop and recompute (or fail) ourselves.

    # ------------------------------------------------------------------
    # typed conveniences
    # ------------------------------------------------------------------

    def repetition_vector(self, graph: SDFGraph) -> Dict[str, int]:
        from repro.sdf.repetition import repetition_vector

        value = self.get_or_compute(
            graph, "repetition", lambda: repetition_vector(graph)
        )
        return dict(value)  # defensive copy: callers often scale γ in place

    def symbolic_iteration(self, graph: SDFGraph, deadline=None):
        from repro.core.symbolic import symbolic_iteration

        return self.get_or_compute(
            graph,
            "symbolic_iteration",
            lambda: symbolic_iteration(graph, deadline=deadline),
        )

    def throughput(self, graph: SDFGraph, method: str = "symbolic",
                   deadline=None, kernel: str = "auto"):
        """Cached exact throughput.

        ``deadline`` bounds a cache-miss computation but is *not* part
        of the key: an exact result does not depend on how long it was
        allowed to take, and a timed-out computation raises before
        anything is inserted — timed-out results are never cached as
        final, so a later call with a larger budget recomputes.

        ``kernel`` is likewise *not* part of the key: the numpy and
        exact backends return bit-identical results (the numpy path
        certifies its answers exactly, see :mod:`repro.kernels`), so a
        hit produced by one kernel is a correct answer for the other
        and cache entries stay shared across kernels.
        """
        from repro.analysis.throughput import throughput

        return self.get_or_compute(
            graph,
            "throughput",
            lambda: throughput(graph, method=method, deadline=deadline,
                               kernel=kernel),
            params={"method": method},
        )

    def latency(self, graph: SDFGraph):
        from repro.analysis.latency import latency

        return self.get_or_compute(graph, "latency", lambda: latency(graph))

    def lint(self, graph: SDFGraph, config=None):
        """The cached lint report of ``graph`` (see :mod:`repro.lint`).

        Keyed on the graph fingerprint plus the config digest, so runs
        with different rule selections or severity overrides do not
        alias; any builder mutation invalidates via the fingerprint.
        """
        from repro.lint.engine import run_lint

        return run_lint(graph, config=config, cache=self)

    # ------------------------------------------------------------------
    # observability / management
    # ------------------------------------------------------------------

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                coalesced=self._coalesced,
                errors=self._errors,
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
                disk_quarantined=self._disk_quarantined,
                disk_errors=self._disk_errors,
                disk_puts=self._disk_puts,
                size=len(self._store),
                maxsize=self.maxsize,
            )

    def register_metrics(self, registry=None) -> None:
        """Expose this cache through a :class:`repro.obs.metrics.
        MetricsRegistry` (the process-wide default when none is given).

        Registers a pull-style collector that, at every export, folds
        the *delta* of each stat since the previous export into the
        unified ``repro_cache_*_total`` counters and refreshes the
        ``repro_cache_size``/``repro_cache_maxsize`` gauges — so many
        caches (e.g. per-worker ones) aggregate additively into one
        registry.  Idempotent per (cache, registry) pair.
        """
        from repro.obs.metrics import default_registry

        registry = registry if registry is not None else default_registry()
        with self._lock:
            if id(registry) in self._metrics_registries:
                return
            self._metrics_registries.add(id(registry))

        fields = ("hits", "misses", "evictions", "coalesced", "errors",
                  "disk_hits", "disk_misses", "disk_quarantined",
                  "disk_errors", "disk_puts")
        counters = {
            field: registry.counter(
                f"repro_cache_{field}_total",
                f"Cumulative analysis-cache {field}.",
            )
            for field in fields
        }
        size = registry.gauge("repro_cache_size", "Entries currently cached.")
        maxsize = registry.gauge("repro_cache_maxsize", "Cache capacity bound.")
        last = {field: 0 for field in fields}

        def collect(_registry) -> None:
            snapshot = self.stats()
            for field in fields:
                value = getattr(snapshot, field)
                delta = value - last[field]
                if delta > 0:
                    counters[field].inc(delta)
                    last[field] = value
            size.set(snapshot.size)
            maxsize.set(snapshot.maxsize)

        registry.register_collector(collect)

    def clear(self) -> None:
        """Drop all entries (counters are kept; see :meth:`reset_stats`)."""
        with self._lock:
            self._store.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._evictions = 0
            self._coalesced = self._errors = 0
            self._disk_hits = self._disk_misses = 0
            self._disk_quarantined = self._disk_errors = self._disk_puts = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __contains__(self, key: Tuple[str, str, Tuple]) -> bool:
        with self._lock:
            return key in self._store

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"AnalysisCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, hit_rate={s.hit_rate:.2f})"
        )


_default_cache = AnalysisCache(maxsize=4096)
_default_lock = threading.Lock()


def default_cache() -> AnalysisCache:
    """The process-wide shared cache (used by the CLI and batch runner
    when no explicit cache is given)."""
    return _default_cache


def set_default_cache(cache: AnalysisCache) -> AnalysisCache:
    """Swap the process-wide cache (returns the previous one)."""
    global _default_cache
    with _default_lock:
        previous = _default_cache
        _default_cache = cache
    return previous
