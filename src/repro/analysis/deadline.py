"""Cooperative deadlines and cancellation for long-running analyses.

Exact SDF analyses have pathological inputs: state-space exploration can
wander through millions of states, the classical HSDF expansion is
exponential in the rates, and even Karp's O(n·m) MCM gets slow once an
expansion has blown a graph up.  A production service cannot afford to
hang on one such graph, so every hot loop in the library accepts an
optional :class:`Deadline` and polls it *cooperatively*: no signals, no
threads killed mid-mutation — the loop raises a structured
:class:`repro.errors.AnalysisTimeout` (or
:class:`repro.errors.AnalysisCancelled`) at a safe point, carrying
partial-progress metadata, and leaves every input graph untouched.

Design notes
------------
* ``Deadline.check()`` is engineered for hot loops: it consults the
  clock only every ``stride`` calls (default 64), so the common case is
  one attribute increment and a modulo.  Call sites additionally place
  checks at *outer*-loop granularity (per Karp level, per simulation
  event, per expansion row), keeping measured overhead well under the
  3% budget (see ``benchmarks/bench_resilience.py``).
* Progress metadata is attached by mutating a dict registered once per
  stage (:meth:`Deadline.checkpoint`), not by building kwargs per
  iteration — loops update counters in place for free.
* A :class:`CancelToken` can be shared across many deadlines (e.g. one
  token for a whole batch, one deadline per graph); cancelling it stops
  every analysis polling any deadline that carries it.

>>> from repro.analysis.deadline import Deadline
>>> d = Deadline.after(30.0)
>>> d.expired
False
>>> d.check()  # no-op while time remains
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import AnalysisCancelled, AnalysisTimeout
from repro.obs.trace import note_checkpoint

__all__ = ["CancelToken", "Deadline"]


class CancelToken:
    """A thread-safe, latching cancellation flag.

    Create one, hand it to any number of :class:`Deadline` objects (or
    check it directly), and call :meth:`cancel` from any thread to stop
    all of them at their next poll.  Cancellation is sticky: a token
    cannot be un-cancelled, which keeps "stop everything" semantics
    race-free.

    >>> token = CancelToken()
    >>> token.cancelled
    False
    >>> token.cancel()
    >>> token.cancelled
    True
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Request cancellation (idempotent; the first reason wins)."""
        if reason is not None and self.reason is None:
            self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def raise_if_cancelled(self, stage: Optional[str] = None,
                           progress: Optional[Dict[str, Any]] = None) -> None:
        if self._event.is_set():
            detail = f" ({self.reason})" if self.reason else ""
            raise AnalysisCancelled(
                f"analysis cancelled{detail}"
                + (f" during {stage}" if stage else ""),
                stage=stage,
                progress=progress,
            )

    def __repr__(self) -> str:
        return f"CancelToken(cancelled={self.cancelled})"


class Deadline:
    """A wall-clock budget polled cooperatively by analysis loops.

    ``Deadline.after(seconds)`` starts the clock immediately;
    ``Deadline.unlimited()`` never expires but still honours its
    :class:`CancelToken` — use it to make a loop cancellable without
    bounding it.  Deadlines nest naturally: derive a stage budget from
    the overall one with :meth:`sub` and the tighter of the two applies.

    Hot loops call :meth:`check`; the clock is consulted only every
    ``stride`` calls.  :meth:`check_now` always consults it — use that
    at coarse checkpoints (once per Karp level / simulation event).
    """

    __slots__ = (
        "budget", "token", "stride",
        "_t0", "_expires_at", "_calls", "_stage", "_progress",
    )

    def __init__(
        self,
        budget: Optional[float] = None,
        token: Optional[CancelToken] = None,
        stride: int = 64,
        _t0: Optional[float] = None,
    ) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget!r}")
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride!r}")
        self.budget = budget
        self.token = token
        self.stride = stride
        self._t0 = time.monotonic() if _t0 is None else _t0
        self._expires_at = None if budget is None else self._t0 + budget
        self._calls = 0
        self._stage: Optional[str] = None
        self._progress: Optional[Dict[str, Any]] = None

    # -- construction ---------------------------------------------------

    @classmethod
    def after(cls, seconds: float, token: Optional[CancelToken] = None,
              stride: int = 64) -> "Deadline":
        """A deadline expiring ``seconds`` from now."""
        return cls(budget=float(seconds), token=token, stride=stride)

    @classmethod
    def unlimited(cls, token: Optional[CancelToken] = None) -> "Deadline":
        """Never expires; only observes ``token`` (if any)."""
        return cls(budget=None, token=token)

    def sub(self, seconds: Optional[float]) -> "Deadline":
        """A child deadline: at most ``seconds`` from now, never later
        than this deadline, sharing the cancel token."""
        remaining = self.remaining()
        if seconds is None:
            budget = remaining
        elif remaining is None:
            budget = float(seconds)
        else:
            budget = min(float(seconds), remaining)
        return Deadline(budget=budget, token=self.token, stride=self.stride)

    # -- introspection --------------------------------------------------

    def elapsed(self) -> float:
        """Seconds since the deadline was created."""
        return time.monotonic() - self._t0

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or ``None`` for unlimited."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    @property
    def expired(self) -> bool:
        return self._expires_at is not None and time.monotonic() > self._expires_at

    @property
    def cancelled(self) -> bool:
        return self.token is not None and self.token.cancelled

    # -- the cooperative protocol --------------------------------------

    def checkpoint(self, stage: str,
                   progress: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Register the current stage and a *live* progress dict.

        The returned dict is held by reference: loops mutate its
        counters in place and the values current at expiry land in the
        raised :class:`AnalysisTimeout` — no per-iteration allocation.

        When a :class:`repro.obs.trace.Tracer` is installed, the same
        live dict is attached to the innermost open span, so traces
        carry the final progress counters of every stage for free (the
        hook is one global read when tracing is disabled).
        """
        self._stage = stage
        self._progress = {} if progress is None else progress
        note_checkpoint(stage, self._progress)
        return self._progress

    def check(self) -> None:
        """Cheap cooperative poll: consults the clock every ``stride``
        calls (always on the first)."""
        calls = self._calls
        self._calls = calls + 1
        if calls % self.stride:
            return
        self.check_now()

    def check_now(self) -> None:
        """Consult the clock/token immediately; raise if out of budget."""
        if self.token is not None and self.token.cancelled:
            self.token.raise_if_cancelled(self._stage, self._snapshot())
        if self._expires_at is not None:
            now = time.monotonic()
            if now > self._expires_at:
                elapsed = now - self._t0
                stage = f" during {self._stage}" if self._stage else ""
                raise AnalysisTimeout(
                    f"analysis exceeded its {self.budget:g}s budget"
                    f"{stage} (ran {elapsed:.3f}s)",
                    stage=self._stage,
                    progress=self._snapshot(),
                    elapsed=elapsed,
                    budget=self.budget,
                )

    def _snapshot(self) -> Dict[str, Any]:
        return dict(self._progress) if self._progress else {}

    def __repr__(self) -> str:
        budget = "unlimited" if self.budget is None else f"{self.budget:g}s"
        return (
            f"Deadline({budget}, elapsed={self.elapsed():.3f}s, "
            f"expired={self.expired}, cancelled={self.cancelled})"
        )
