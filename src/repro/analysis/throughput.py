"""Throughput analysis of timed SDF graphs.

The throughput of actor ``a`` is its guaranteed sustainable firing rate
under self-timed execution: γ(a)/λ firings per time unit, where λ is the
*iteration period* — the asymptotic time between successive iterations.
Three independent back-ends compute λ exactly:

``symbolic`` (default)
    Execute one iteration symbolically (Algorithm 1's engine); λ is the
    max-plus eigenvalue of the iteration matrix, found as the maximum
    cycle mean of its precedence graph with Karp's algorithm.  This is
    the method the paper's conversion is built on and is usually the
    fastest by far.

``simulation``
    Explicit self-timed state-space exploration until a recurrent state
    (Ghamarian et al., reference [8]); λ is period/iterations over the
    recurrence window.

``hsdf``
    Expand to the traditional HSDF and take the maximum cycle ratio
    (execution time over tokens) — the classical approach whose size
    explosion motivates Section 6 of the paper.

For graphs that are not strongly connected the guaranteed rate is still
γ(a)/λ with λ the global worst cycle; actors not dominated by the
critical cycle may run faster in simulation, which measures actual rather
than guaranteed rates (documented difference, covered by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from functools import cached_property
from typing import Dict, Optional

from repro.errors import ValidationError
from repro.kernels import (
    NumericalGuardError,
    record_fallback,
    record_selection,
    resolve_kernel,
)
from repro.maxplus.spectral import critical_cycle
from repro.obs.provenance import (
    CycleWitness,
    ProvenanceRecord,
    WitnessError,
    recording,
    verify_witness,
    witness_from_ratio_cycle,
)
from repro.obs.trace import span
from repro.mcm.graphlib import RatioGraph
from repro.mcm.howard import howard_mcr
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import binding_witness, simulation_throughput
from repro.sdf.transform import traditional_hsdf
from repro.core.symbolic import symbolic_iteration


@dataclass
class ThroughputResult:
    """Exact throughput of a timed SDF graph.

    ``cycle_time`` is the iteration period λ (``None`` when no cycle
    constrains the execution: iterations overlap without bound and every
    rate below is infinite — represented by omitting the actor from
    ``per_actor``... never silently: ``unbounded`` is set instead).

    ``provenance`` (when the analysis ran with provenance enabled, the
    default) records how the number was produced: reduction steps,
    algorithm, and a critical-cycle witness re-checkable against the
    original graph with :func:`repro.obs.provenance.verify_witness`.
    """

    cycle_time: Optional[Fraction]
    repetition: Dict[str, int]
    method: str
    provenance: Optional[ProvenanceRecord] = None

    @property
    def unbounded(self) -> bool:
        return self.cycle_time is None or self.cycle_time == 0

    @cached_property
    def per_actor(self) -> Dict[str, Fraction]:
        """Guaranteed firings per time unit for every actor: γ(a)/λ.

        Computed once and memoized on the instance (hot paths read it
        per actor in tight loops); treat the returned dict as read-only.
        """
        if self.unbounded:
            raise ValidationError(
                "throughput is unbounded (no recurrent timing constraint); "
                "check .unbounded before reading rates"
            )
        return {
            a: Fraction(g, 1) / self.cycle_time for a, g in self.repetition.items()
        }

    def of(self, actor: str) -> Fraction:
        return self.per_actor[actor]


def hsdf_cycle_ratio_graph(graph: SDFGraph) -> RatioGraph:
    """The cycle-ratio view of an HSDF graph.

    Edge ``a → b`` with ``d`` tokens becomes a ratio edge of weight
    ``T(a)`` and transit ``d``; the maximum cycle ratio is the iteration
    period.  (Completion of ``a`` feeds ``b``, so the source's execution
    time is the edge weight — the standard MCM formulation of HSDF
    throughput, cf. reference [5] of the paper.)
    """
    if not graph.is_homogeneous():
        raise ValidationError(
            "cycle-ratio throughput needs a homogeneous graph; convert first"
        )
    ratio = RatioGraph()
    for actor in graph.actor_names:
        ratio.add_node(actor)
    for edge in graph.edges:
        ratio.add_edge(
            edge.source,
            edge.target,
            Fraction(graph.execution_time(edge.source)),
            edge.tokens,
            key=edge.name,
        )
    return ratio


#: Analysis algorithm behind each back-end, named in provenance records.
_ALGORITHMS = {"symbolic": "karp", "simulation": "simulation", "hsdf": "howard"}


def _dispatch_kernel(info, method, numpy_call, exact_call):
    """Run the numpy kernel when selected, falling back to exact.

    A :class:`~repro.kernels.NumericalGuardError` from the numpy kernel
    is the designed degradation path: record it (``info["fallback"]``,
    ``repro_kernel_fallback_total``) and rerun with the reference
    implementation, which always succeeds on the same inputs.  Every
    other exception (deadlock, timeout, validation) propagates — both
    kernels raise the same error types for the same graphs.
    """
    if info["used"] == "numpy":
        try:
            return numpy_call()
        except NumericalGuardError as error:
            info["used"] = "exact"
            info["fallback"] = str(error)
            record_fallback(method)
    return exact_call()


def throughput(
    graph: SDFGraph,
    method: str = "symbolic",
    precheck: bool = False,
    deadline=None,
    provenance: bool = True,
    kernel: str = "auto",
) -> ThroughputResult:
    """Compute the exact throughput of ``graph`` (see module docstring).

    Raises :class:`DeadlockError` for deadlocked graphs,
    :class:`InconsistentGraphError` for inconsistent ones and
    :class:`UnboundedThroughputError` when an actor has no incoming edges.

    With ``precheck=True`` the graph is first run through the lint
    engine (:func:`repro.lint.ensure_lint_clean`) and any error-severity
    finding raises :class:`repro.errors.LintError` *before* analysis
    work starts — a complete structured diagnosis instead of the first
    exception an algorithm happens to trip over.

    ``deadline`` (a :class:`repro.analysis.deadline.Deadline`) bounds
    the analysis cooperatively: every back-end polls it in its hot loop
    and raises :class:`repro.errors.AnalysisTimeout` with
    partial-progress metadata instead of running on.  The input graph
    is never mutated, so a timed-out call can be retried (or degraded
    through :class:`repro.analysis.resilience.AnalysisPolicy`).

    ``provenance=True`` (the default) attaches a
    :class:`~repro.obs.provenance.ProvenanceRecord` with the applied
    reduction steps and a critical-cycle witness, self-verified before
    it is attached (a witness that fails its own O(|cycle|) check is
    dropped, with the failure recorded as ``witness_unavailable``).
    Disable for hot paths that only need the number; the simulation
    back-end then also skips its binding bookkeeping.

    ``kernel`` selects the computational backend: ``"exact"`` is the
    reference Fraction implementation, ``"numpy"`` the vectorized
    kernels (:mod:`repro.kernels`), and ``"auto"`` (default) picks
    numpy when it is importable.  Both backends return *bit-identical*
    results — the numpy path re-derives and certifies its answer
    exactly — so the choice never changes semantics (and is therefore
    not part of analysis cache keys).  When a numerical guard trips,
    the numpy path falls back to exact automatically; the provenance
    record then carries the reason as ``degradation_reason`` and its
    ``kernel`` field names the backend that produced the number.
    """
    selected = resolve_kernel(kernel)
    record_selection(selected, method)
    info = {"selected": selected, "used": selected, "fallback": None}
    if not provenance:
        return _throughput(
            graph, method, precheck, deadline, witness=False, info=info
        )[0]
    with recording() as recorder:
        result, arcs, space, extractor, reason = _throughput(
            graph, method, precheck, deadline, witness=True, info=info
        )
        witness = (
            CycleWitness(space=space, arcs=arcs, source=extractor) if arcs else None
        )
        record = ProvenanceRecord(
            graph=graph.name,
            fingerprint=graph.fingerprint(),
            algorithm=_ALGORITHMS[method],
            method=method,
            status="exact",
            cycle_time=result.cycle_time,
            steps=recorder.steps,
            witness=witness,
            witness_unavailable=None if witness else reason,
            kernel=info["used"],
            degradation_reason=(
                f"numpy kernel fell back to exact: {info['fallback']}"
                if info["fallback"] else None
            ),
        )
    if witness is not None:
        try:
            verify_witness(graph, record)
        except WitnessError as error:
            record.witness = None
            record.witness_unavailable = f"witness failed self-check: {error}"
    result.provenance = record
    return result


def _throughput(graph, method, precheck, deadline, witness, info=None):
    """The three back-ends; returns (result, arcs, space, extractor, reason)."""
    if info is None:
        info = {"selected": "exact", "used": "exact", "fallback": None}
    with span("throughput", graph=graph.name,
              fingerprint=graph.fingerprint(), method=method,
              kernel=info["selected"]) as top_span:
        if precheck:
            from repro.lint.engine import ensure_lint_clean

            ensure_lint_clean(graph)
        with span("repetition-vector"):
            gamma = repetition_vector(graph)
        if method == "symbolic":
            with span("symbolic-conversion"):
                iteration = symbolic_iteration(graph, deadline=deadline)
            with span("mcm-eigenvalue",
                      matrix_order=iteration.matrix.nrows) as mcm_span:
                mcm = _dispatch_kernel(
                    info, method,
                    lambda: critical_cycle(
                        iteration.matrix, deadline=deadline, kernel="numpy"),
                    lambda: critical_cycle(
                        iteration.matrix, deadline=deadline, kernel="exact"),
                )
                mcm_span.set(kernel_used=info["used"])
            top_span.set(kernel_used=info["used"])
            result = ThroughputResult(
                cycle_time=mcm.value, repetition=gamma, method=method
            )
            if not witness or mcm.value is None:
                return result, None, "token", "karp", (
                    "no recurrent timing constraint (acyclic precedence graph)"
                )
            # Karp's cycle connects matrix indices; token ids name the
            # same positions on the original graph's channels.
            arcs = witness_from_ratio_cycle(
                mcm.cycle,
                space="token",
                source="karp",
                relabel=lambda index: str(iteration.token_ids[index]),
            ).arcs
            return result, arcs, "token", "karp", None
        if method == "simulation":
            with span("state-space-simulation") as sim_span:
                def _simulate_numpy():
                    from repro.kernels.simulation import (
                        simulation_throughput_numpy,
                    )

                    return simulation_throughput_numpy(
                        graph, deadline=deadline, witness=witness
                    )

                measured = _dispatch_kernel(
                    info, method,
                    _simulate_numpy,
                    lambda: simulation_throughput(
                        graph, deadline=deadline, witness=witness),
                )
                sim_span.set(kernel_used=info["used"])
            top_span.set(kernel_used=info["used"])
            # Iterations per period: firings(a)/γ(a) is equal for all actors
            # in the periodic phase of a consistent graph.
            any_actor = next(iter(gamma))
            iterations = Fraction(measured.firings_per_period[any_actor], gamma[any_actor])
            for actor, count in measured.firings_per_period.items():
                if Fraction(count, gamma[actor]) != iterations:
                    # Actors ahead of the critical cycle: report the slowest
                    # (guaranteed) rate, consistent with the other methods.
                    iterations = min(iterations, Fraction(count, gamma[actor]))
            if iterations == 0:
                raise ValidationError(
                    "periodic phase contains no complete iteration; "
                    "graph is not consistent with periodic execution"
                )
            lam = measured.period / iterations
            result = ThroughputResult(cycle_time=lam, repetition=gamma, method=method)
            if not witness:
                return result, None, "actor", "simulation-backpointers", None
            arcs, reason = binding_witness(graph, measured, gamma)
            return result, arcs, "actor", "simulation-backpointers", reason
        if method == "hsdf":
            from repro.errors import DeadlockError
            from repro.mcm.graphlib import ZeroTransitCycleError

            homogeneous = graph.is_homogeneous()
            with span("hsdf-expansion", iteration_length=sum(gamma.values())):
                expanded = (
                    graph if homogeneous else traditional_hsdf(graph, deadline=deadline)
                )
            try:
                with span("howard-mcr",
                          actors=expanded.actor_count()) as mcr_span:
                    def _howard_numpy():
                        from repro.kernels.mcm import howard_mcr_numpy

                        return howard_mcr_numpy(
                            hsdf_cycle_ratio_graph(expanded),
                            deadline=deadline)

                    mcr = _dispatch_kernel(
                        info, method,
                        _howard_numpy,
                        lambda: howard_mcr(
                            hsdf_cycle_ratio_graph(expanded),
                            deadline=deadline),
                    )
                    mcr_span.set(kernel_used=info["used"])
                top_span.set(kernel_used=info["used"])
            except ZeroTransitCycleError as error:
                # A token-free dependency cycle is a deadlock; report it in
                # the same vocabulary as the other back-ends.
                raise DeadlockError(
                    f"graph {graph.name!r} deadlocks: token-free cycle "
                    f"{' -> '.join(str(n) for n in error.cycle[:6])}..."
                ) from error
            result = ThroughputResult(
                cycle_time=mcr.value, repetition=gamma, method=method
            )
            if not witness or mcr.value is None or not mcr.cycle:
                return result, None, "actor", "howard", (
                    "no cycle constrains the execution"
                )
            # Map expanded firing copies ("a#3") back to original actors;
            # channel keys survive only when no expansion happened (the
            # expansion merges parallel dependencies, losing identity).
            arcs = witness_from_ratio_cycle(
                mcr.cycle,
                space="actor",
                source="howard",
                relabel=(
                    (lambda node: str(node)) if homogeneous
                    else (lambda node: str(node).rsplit("#", 1)[0])
                ),
                keys=(lambda edge: edge.key) if homogeneous else None,
            ).arcs
            return result, arcs, "actor", "howard", None
        raise ValueError(f"unknown method {method!r}; use symbolic, simulation or hsdf")
