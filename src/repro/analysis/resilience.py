"""Tiered, deadline-bounded throughput analysis with sound degradation.

The paper's practical insight (Theorem 1) is that an answer does not
have to be exact to be useful — it has to be *sound*.  The abstracted
graph's throughput, divided by the phase count N, lower-bounds the real
throughput: τ(a) ≥ τ'(α(a))/N.  So when exact analysis blows its time
budget, a much cheaper conservative bound is still available, and a
production service should degrade to it rather than hang or fail.

:class:`AnalysisPolicy` encodes that degradation as an explicit fallback
chain.  The default chain mirrors the paper's cost ladder:

1. ``simulation`` — exact state-space exploration (reference [8]); the
   most literal semantics, but with state spaces that can explode;
2. ``symbolic`` — exact max-plus analysis through the symbolic N(N+2)
   conversion (Algorithm 1) + Karp's MCM, the paper's cheaper exact path;
3. ``abstraction`` — the Theorem 1 lower bound: abstract the graph
   (automatic grouping discovery), analyse the small abstract graph
   exactly, scale by N.  Conservative, orders of magnitude cheaper.

Each stage runs under a sub-deadline carved out of the overall budget;
a stage that times out (or fails) is recorded in the outcome's
*provenance* and the chain moves on.  The result is always an
:class:`AnalysisOutcome` tagged ``exact``, ``conservative-bound`` or
``timed-out`` — callers get the best sound answer the budget allowed,
and they can see exactly where it came from.

Timed-out computations are never cached as final: the cache layer only
stores values that were actually produced, and exact results reached
through a policy are shared with plain :func:`throughput` calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.deadline import CancelToken, Deadline
from repro.analysis.throughput import _ALGORITHMS, ThroughputResult, throughput
from repro.errors import (
    AnalysisCancelled,
    AnalysisInterrupted,
    AnalysisTimeout,
    NoAbstractionFoundError,
    ReproError,
)
from repro.obs.metrics import default_registry
from repro.obs.provenance import (
    CycleWitness,
    ProvenanceRecord,
    TierAttempt,
    WitnessError,
    recording,
    verify_witness,
)
from repro.obs.trace import span
from repro.sdf.graph import SDFGraph

__all__ = [
    "AnalysisOutcome",
    "AnalysisPolicy",
    "StageAttempt",
    "analyse_with_policy",
    "DEFAULT_STAGES",
]

#: The paper's cost ladder: exact state-space, exact symbolic, Theorem 1.
DEFAULT_STAGES: Tuple[str, ...] = ("simulation", "symbolic", "abstraction")

#: Stages a policy may name (``hsdf`` is exact but usually dominated by
#: ``symbolic``; it is available for cross-checking policies).
KNOWN_STAGES: Tuple[str, ...] = ("simulation", "symbolic", "hsdf", "abstraction")

#: Outcome tags.
EXACT = "exact"
CONSERVATIVE = "conservative-bound"
TIMED_OUT = "timed-out"


@dataclass(frozen=True)
class StageAttempt:
    """Provenance of one fallback-chain stage: what ran, how it ended."""

    stage: str
    status: str  # "ok" | "timeout" | "cancelled" | "error" | "skipped"
    duration: float
    error: Optional[str] = None
    error_type: Optional[str] = None
    #: Partial-progress counters from an interrupted stage (how far the
    #: hot loop got before the deadline fired).
    progress: Dict[str, Any] = field(default_factory=dict)
    #: Trace span id of this stage attempt (None when tracing was off).
    span_id: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "status": self.status,
            "duration": self.duration,
            "error": self.error,
            "error_type": self.error_type,
            "progress": dict(self.progress),
            "span_id": self.span_id,
        }


@dataclass
class AnalysisOutcome:
    """The best sound answer a policy could produce within budget.

    ``status`` is one of

    ``exact``
        ``result`` holds the exact :class:`ThroughputResult`;
        ``cycle_time_bound`` equals its cycle time.
    ``conservative-bound``
        No exact stage finished, but the Theorem 1 chain did:
        ``cycle_time_bound`` is a sound *upper* bound on the iteration
        period (equivalently, ``per_actor_bounds`` are sound *lower*
        bounds on every actor's throughput).  ``bound_phase_count`` and
        ``bound_abstract_cycle_time`` record the bound's provenance
        (bound = N · λ').
    ``timed-out``
        Nothing sound could be produced in budget; ``provenance`` shows
        how far each stage got.
    """

    graph_name: str
    fingerprint: str
    status: str
    method: Optional[str] = None
    result: Optional[ThroughputResult] = None
    cycle_time_bound: Optional[Fraction] = None
    repetition: Optional[Dict[str, int]] = None
    provenance: List[StageAttempt] = field(default_factory=list)
    elapsed: float = 0.0
    #: Theorem 1 ingredients (conservative-bound outcomes only).
    bound_phase_count: Optional[int] = None
    bound_abstract_cycle_time: Optional[Fraction] = None
    bound_strategy: Optional[str] = None
    #: Trace span id of the whole policy run (None when tracing was off).
    span_id: Optional[str] = None
    #: Full provenance certificate (``repro-provenance-v1``): reduction
    #: steps, tier history with degradation reason, and the
    #: critical-cycle witness.  (The ``provenance`` field above predates
    #: this and keeps its per-stage attempt records.)
    record: Optional[ProvenanceRecord] = None

    @property
    def sound(self) -> bool:
        """Did the policy produce a usable (exact or conservative) answer?"""
        return self.status in (EXACT, CONSERVATIVE)

    @property
    def unbounded(self) -> bool:
        """No recurrent timing constraint (within what was established)."""
        return self.sound and (
            self.cycle_time_bound is None or self.cycle_time_bound == 0
        )

    @property
    def per_actor_bounds(self) -> Dict[str, Fraction]:
        """Sound per-actor throughput lower bounds: γ(a)/bound.

        For ``exact`` outcomes these are the exact rates; for
        ``conservative-bound`` they satisfy Theorem 1's
        τ(a) ≥ γ(a)/(N·λ').
        """
        if not self.sound:
            raise ReproError(
                f"outcome for {self.graph_name!r} is {self.status}; "
                "no sound rates are available"
            )
        if self.unbounded:
            raise ReproError(
                "throughput is unbounded; check .unbounded before reading rates"
            )
        assert self.repetition is not None
        return {
            a: Fraction(g, 1) / self.cycle_time_bound
            for a, g in self.repetition.items()
        }

    def describe(self) -> str:
        lines = [f"{self.graph_name}: {self.status}"]
        if self.status == EXACT:
            lines[0] += f" via {self.method} (cycle time {self.cycle_time_bound})"
        elif self.status == CONSERVATIVE:
            lines[0] += (
                f" via {self.method} (cycle time <= {self.cycle_time_bound} "
                f"= {self.bound_phase_count} x {self.bound_abstract_cycle_time}, "
                f"Theorem 1)"
            )
        for attempt in self.provenance:
            detail = "" if attempt.ok else f" [{attempt.error_type}: {attempt.error}]"
            if attempt.progress and not attempt.ok:
                detail += f" progress={attempt.progress}"
            lines.append(
                f"  {attempt.stage}: {attempt.status} "
                f"({attempt.duration:.3f}s){detail}"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph_name,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "method": self.method,
            "cycle_time_bound": (
                None if self.cycle_time_bound is None else str(self.cycle_time_bound)
            ),
            "bound_phase_count": self.bound_phase_count,
            "bound_abstract_cycle_time": (
                None
                if self.bound_abstract_cycle_time is None
                else str(self.bound_abstract_cycle_time)
            ),
            "bound_strategy": self.bound_strategy,
            "elapsed": self.elapsed,
            "span_id": self.span_id,
            "provenance": [a.as_dict() for a in self.provenance],
            "provenance_record": (
                None if self.record is None else self.record.as_dict()
            ),
        }


@dataclass(frozen=True)
class AnalysisPolicy:
    """A fallback chain with a wall-clock budget.

    ``timeout`` bounds the whole chain; each stage additionally gets
    ``stage_timeouts.get(stage, timeout/len(stages))`` (so one slow
    exact stage cannot starve the cheap conservative one), clamped to
    the overall remaining budget.  With ``timeout=None`` stages run
    unbounded — the chain then only degrades on *errors* (deadlocks
    excluded: those are definitive, not degradable, and re-raise).

    >>> from repro.graphs.examples import figure3_graph
    >>> AnalysisPolicy(timeout=30.0).run(figure3_graph()).status
    'exact'
    """

    stages: Tuple[str, ...] = DEFAULT_STAGES
    timeout: Optional[float] = None
    stage_timeouts: Optional[Dict[str, float]] = None
    #: Grouping strategies tried (in order) by the abstraction stage.
    abstraction_strategies: Tuple[str, ...] = ("name", "structural")
    #: Computational backend for every stage ("auto" | "numpy" |
    #: "exact"); both return identical results, so this never changes
    #: the outcome — only how fast it is reached.
    kernel: str = "auto"

    def __post_init__(self):
        from repro.kernels import KERNELS

        if not self.stages:
            raise ValueError("policy needs at least one stage")
        unknown = [s for s in self.stages if s not in KNOWN_STAGES]
        if unknown:
            raise ValueError(
                f"unknown stages {unknown!r}; available: {', '.join(KNOWN_STAGES)}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout!r}")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; "
                f"available: {', '.join(KERNELS)}"
            )

    # ------------------------------------------------------------------

    def _stage_budget(self, stage: str, overall: Deadline) -> Deadline:
        if self.stage_timeouts and stage in self.stage_timeouts:
            return overall.sub(self.stage_timeouts[stage])
        if self.timeout is None:
            return overall.sub(None)
        return overall.sub(self.timeout / len(self.stages))

    def run(
        self,
        graph: SDFGraph,
        cache: Optional[AnalysisCache] = None,
        token: Optional[CancelToken] = None,
    ) -> AnalysisOutcome:
        """Walk the chain on ``graph``; always returns an outcome.

        Definitive analysis verdicts — deadlock, inconsistency,
        unbounded throughput — are *not* degradable (a fallback cannot
        make a deadlocked graph run) and re-raise immediately.  Timeouts
        and cancellations degrade to the next stage; a cancellation of
        the shared token aborts the whole chain with ``timed-out``.
        """
        overall = Deadline(budget=self.timeout, token=token)
        outcome = AnalysisOutcome(
            graph_name=graph.name,
            fingerprint=graph.fingerprint(),
            status=TIMED_OUT,
        )
        stage_metric = default_registry().counter(
            "repro_fallback_stage_total",
            "Fallback-chain stage attempts by terminal status.",
            labels=("stage", "status"),
        )

        with recording() as recorder, \
                span("analysis-policy", graph=graph.name,
                     fingerprint=outcome.fingerprint,
                     stages=",".join(self.stages),
                     kernel=self.kernel) as policy_span:
            outcome.span_id = policy_span.id
            for stage in self.stages:
                budget = self._stage_budget(stage, overall)
                start = overall.elapsed()
                stage_span = span(f"stage:{stage}", graph=graph.name)
                try:
                    with stage_span:
                        if stage == "abstraction":
                            self._run_abstraction(graph, budget, cache, outcome)
                        else:
                            self._run_exact(graph, stage, budget, cache, outcome)
                except AnalysisCancelled as interrupt:
                    outcome.provenance.append(StageAttempt(
                        stage=stage,
                        status="cancelled",
                        duration=overall.elapsed() - start,
                        error=str(interrupt),
                        error_type=type(interrupt).__name__,
                        progress=interrupt.progress,
                        span_id=stage_span.id,
                    ))
                    stage_metric.labels(stage=stage, status="cancelled").inc()
                    break  # a cancelled token stops the whole chain
                except AnalysisTimeout as interrupt:
                    outcome.provenance.append(StageAttempt(
                        stage=stage,
                        status="timeout",
                        duration=overall.elapsed() - start,
                        error=str(interrupt),
                        error_type=type(interrupt).__name__,
                        progress=interrupt.progress,
                        span_id=stage_span.id,
                    ))
                    stage_metric.labels(stage=stage, status="timeout").inc()
                except (NoAbstractionFoundError, _DegradableStageError) as error:
                    cause = getattr(error, "__cause__", None) or error
                    outcome.provenance.append(StageAttempt(
                        stage=stage,
                        status="error",
                        duration=overall.elapsed() - start,
                        error=str(cause),
                        error_type=type(cause).__name__,
                        span_id=stage_span.id,
                    ))
                    stage_metric.labels(stage=stage, status="error").inc()
                else:
                    outcome.provenance.append(StageAttempt(
                        stage=stage, status="ok",
                        duration=overall.elapsed() - start,
                        span_id=stage_span.id,
                    ))
                    stage_metric.labels(stage=stage, status="ok").inc()
                    break
            outcome.elapsed = overall.elapsed()
            policy_span.set(status=outcome.status)
        self._finalise_record(graph, outcome, recorder)
        default_registry().counter(
            "repro_policy_outcomes_total",
            "Tiered-policy outcomes by status "
            "(exact / conservative-bound / timed-out).",
            labels=("status",),
        ).labels(status=outcome.status).inc()
        return outcome

    # -- provenance -----------------------------------------------------

    def _finalise_record(self, graph: SDFGraph, outcome: AnalysisOutcome,
                         recorder) -> None:
        """Stamp tier history and degradation reason onto the record.

        The winning stage left its (copied) record on ``outcome.record``;
        timed-out/cancelled chains get a fresh record here.  Tier history
        covers every configured stage — attempted ones with their
        terminal status, unreached ones marked ``skipped`` — so even a
        degraded answer names exactly what was given up and why.
        """
        record = outcome.record
        if record is None:
            record = ProvenanceRecord(
                graph=graph.name,
                fingerprint=outcome.fingerprint,
                algorithm="none",
                method=outcome.method or "none",
                status=outcome.status,
                witness_unavailable="no analysis completed within budget",
            )
        # The whole-chain recorder has the fuller step history (failed
        # stages included); an empty recorder means the winning result
        # came from cache — keep its original steps then.
        record.steps = recorder.steps or record.steps
        attempted = {a.stage for a in outcome.provenance}
        record.tiers = [
            TierAttempt(
                tier=a.stage,
                status=a.status,
                reason=(
                    None if a.error is None
                    else f"{a.error_type}: {a.error}"
                ),
            )
            for a in outcome.provenance
        ]
        aborted = any(a.status == "cancelled" for a in outcome.provenance)
        for stage in self.stages:
            if stage not in attempted:
                record.tiers.append(TierAttempt(
                    tier=stage,
                    status="skipped",
                    reason=(
                        "chain aborted by cancellation" if aborted
                        else "earlier tier answered"
                    ),
                ))
        failures = [
            f"{a.stage} {a.status}"
            + (f" ({a.error_type}: {a.error})" if a.error else "")
            for a in outcome.provenance
            if not a.ok
        ]
        # The winning stage may already carry a degradation reason of
        # its own (a numpy-kernel guard fell back to exact): keep it in
        # front of any stage-level failures instead of overwriting it.
        parts = (
            [record.degradation_reason] if record.degradation_reason else []
        )
        parts.extend(failures)
        record.degradation_reason = "; ".join(parts) or None
        outcome.record = record

    # -- stages ---------------------------------------------------------

    def _run_exact(self, graph: SDFGraph, stage: str, budget: Deadline,
                   cache: Optional[AnalysisCache],
                   outcome: AnalysisOutcome) -> None:
        from repro.errors import ConvergenceError

        try:
            if cache is not None:
                result = cache.throughput(graph, method=stage,
                                          deadline=budget, kernel=self.kernel)
            else:
                result = throughput(graph, method=stage, deadline=budget,
                                    kernel=self.kernel)
        except ConvergenceError as error:
            # Method-specific surrender (e.g. the state space did not
            # recur within max_states) — another stage may still answer,
            # unlike definitive verdicts (deadlock, inconsistency).
            raise _DegradableStageError(str(error)) from error
        outcome.status = EXACT
        outcome.method = stage
        outcome.result = result
        outcome.cycle_time_bound = result.cycle_time
        outcome.repetition = dict(result.repetition)
        if result.provenance is not None:
            # Copy: the result object may be shared through the cache,
            # and tier history is per-run.
            outcome.record = replace(result.provenance)
        else:
            outcome.record = ProvenanceRecord(
                graph=graph.name,
                fingerprint=outcome.fingerprint,
                algorithm=_ALGORITHMS[stage],
                method=stage,
                status=EXACT,
                cycle_time=result.cycle_time,
                witness_unavailable="analysis ran without provenance",
            )

    def _run_abstraction(self, graph: SDFGraph, budget: Deadline,
                         cache: Optional[AnalysisCache],
                         outcome: AnalysisOutcome) -> None:
        """The Theorem 1 stage: abstract, analyse small, scale by N.

        Theorem 1 is stated (and sound) for homogeneous graphs, so a
        multirate input is first run through the paper's *compact*
        conversion (Algorithm 1) — which preserves the iteration period
        exactly and is bounded by N(N+2) in the token count — and the
        abstraction is discovered on that homogeneous equivalent.
        Applying the Definition 4 edge formula directly to a multirate
        graph is *not* conservative in general (property-tested), so
        this stage never does.
        """
        from repro.core.abstraction import abstract_graph
        from repro.core.grouping import discover_abstraction
        from repro.core.hsdf_conversion import convert_to_hsdf
        from repro.core.pruning import prune_redundant_edges
        from repro.core.symbolic import symbolic_iteration
        from repro.errors import DeadlockError
        from repro.sdf.repetition import repetition_vector

        if graph.is_homogeneous():
            base = graph
        else:
            if cache is not None:
                iteration = cache.symbolic_iteration(graph, deadline=budget)
            else:
                iteration = symbolic_iteration(graph, deadline=budget)
            base = convert_to_hsdf(graph, iteration=iteration).graph
            budget.check_now()

        abstraction = None
        strategy_used = None
        errors: List[str] = []
        for strategy in self.abstraction_strategies:
            budget.check_now()
            try:
                candidate = discover_abstraction(base, strategy=strategy)
            except NoAbstractionFoundError as error:
                errors.append(f"{strategy}: {error}")
                continue
            # Identity-sized abstractions bound nothing better than the
            # graph itself; require an actual reduction.
            if len(candidate.groups()) < base.actor_count():
                abstraction = candidate
                strategy_used = strategy
                break
            errors.append(f"{strategy}: abstraction is trivial (no grouping)")
        if abstraction is None:
            raise NoAbstractionFoundError(
                "no usable abstraction for the Theorem 1 bound: "
                + "; ".join(errors)
            )
        abstract = prune_redundant_edges(
            abstract_graph(base, abstraction), name=f"{graph.name}-abstract"
        )
        n = abstraction.phase_count
        try:
            if cache is not None:
                bound = cache.throughput(abstract, method="symbolic",
                                         deadline=budget, kernel=self.kernel)
            else:
                bound = throughput(abstract, method="symbolic",
                                   deadline=budget, kernel=self.kernel)
        except DeadlockError as error:
            # A valid abstraction may still deadlock (delays shuffled
            # between phases): Theorem 1 then only certifies the vacuous
            # zero-throughput bound, which helps no caller — degrade.
            raise _DegradableStageError(
                "abstract graph deadlocks; Theorem 1 bound is vacuous"
            ) from error

        outcome.status = CONSERVATIVE
        outcome.method = "abstraction"
        # Theorem 1: cycle_time(original) <= N * cycle_time(abstract).
        outcome.cycle_time_bound = (
            None if bound.cycle_time is None else n * bound.cycle_time
        )
        outcome.repetition = repetition_vector(graph)
        outcome.bound_phase_count = n
        outcome.bound_abstract_cycle_time = bound.cycle_time
        outcome.bound_strategy = strategy_used

        # Conservative certificate: the abstract graph's own critical
        # cycle, re-tagged to the "abstract" witness space.  Group
        # membership ties abstract actors back to original ones only
        # when the abstraction was discovered directly on the input
        # graph (a multirate input goes through the compact conversion
        # first, whose actors are synthetic).
        witness = None
        unavailable = None
        inner = bound.provenance
        if inner is not None and inner.witness is not None:
            witness = CycleWitness(
                space="abstract",
                arcs=inner.witness.arcs,
                source=inner.witness.source,
                groups=abstraction.groups() if base is graph else {},
            )
        else:
            unavailable = (
                inner.witness_unavailable if inner is not None
                else "abstract analysis ran without provenance"
            )
        outcome.record = ProvenanceRecord(
            graph=graph.name,
            fingerprint=outcome.fingerprint,
            algorithm="karp",
            method="abstraction",
            status=CONSERVATIVE,
            cycle_time=outcome.cycle_time_bound,
            witness=witness,
            witness_unavailable=unavailable,
            bound_phase_count=n,
            bound_abstract_cycle_time=bound.cycle_time,
            kernel=None if inner is None else inner.kernel,
            degradation_reason=(
                None if inner is None else inner.degradation_reason
            ),
        )
        if witness is not None:
            try:
                verify_witness(graph, outcome.record)
            except WitnessError as error:
                outcome.record.witness = None
                outcome.record.witness_unavailable = (
                    f"witness failed self-check: {error}"
                )


class _DegradableStageError(ReproError, RuntimeError):
    """Internal: a stage failed in a way the chain may degrade past."""


def analyse_with_policy(
    graph: SDFGraph,
    timeout: Optional[float] = None,
    stages: Sequence[str] = DEFAULT_STAGES,
    cache: Optional[AnalysisCache] = None,
    token: Optional[CancelToken] = None,
    kernel: str = "auto",
) -> AnalysisOutcome:
    """One-call convenience over :class:`AnalysisPolicy`.

    >>> from repro.graphs.examples import figure3_graph
    >>> analyse_with_policy(figure3_graph(), timeout=30.0).sound
    True
    """
    policy = AnalysisPolicy(stages=tuple(stages), timeout=timeout,
                            kernel=kernel)
    return policy.run(graph, cache=cache, token=token)
