"""User-facing analyses: throughput, latency and buffer sizing.

Throughput is available through three independent back-ends (symbolic
max-plus, explicit state-space simulation, MCR on the traditional HSDF
expansion); agreement between them is itself part of the reproduction
(experiment E8 in DESIGN.md).
"""

from repro.analysis.throughput import (
    ThroughputResult,
    throughput,
    hsdf_cycle_ratio_graph,
)
from repro.analysis.latency import latency, LatencyResult
from repro.analysis.bottleneck import bottleneck, BottleneckReport
from repro.analysis.transient import transient_analysis, TransientAnalysis
from repro.analysis.buffer import (
    buffer_aware_graph,
    buffer_aware_throughput,
    channel_occupancy_bounds,
    minimal_buffer_sizes,
)
from repro.analysis.pareto import (
    ParetoPoint,
    explore_buffer_throughput,
    pareto_frontier,
)
from repro.analysis.intervals import IntervalThroughput, interval_throughput
from repro.analysis.sensitivity import SensitivityReport, sensitivity, slack
from repro.analysis.periodic_schedule import (
    PeriodicSchedule,
    rate_optimal_schedule,
    verify_periodic_schedule,
)
from repro.analysis.cache import (
    AnalysisCache,
    CacheStats,
    default_cache,
    set_default_cache,
)
from repro.analysis.batch import BatchReport, GraphResult, analyse_graph, run_batch
from repro.analysis.deadline import CancelToken, Deadline
from repro.analysis.faults import FaultPlan, FaultRule, parse_fault
from repro.analysis.journal import BatchJournal, JournalRecord
from repro.analysis.resilience import (
    AnalysisOutcome,
    AnalysisPolicy,
    StageAttempt,
    analyse_with_policy,
)

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "default_cache",
    "set_default_cache",
    "BatchReport",
    "GraphResult",
    "analyse_graph",
    "run_batch",
    "CancelToken",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "parse_fault",
    "BatchJournal",
    "JournalRecord",
    "AnalysisOutcome",
    "AnalysisPolicy",
    "StageAttempt",
    "analyse_with_policy",
    "ThroughputResult",
    "throughput",
    "hsdf_cycle_ratio_graph",
    "latency",
    "LatencyResult",
    "bottleneck",
    "BottleneckReport",
    "transient_analysis",
    "TransientAnalysis",
    "buffer_aware_graph",
    "buffer_aware_throughput",
    "channel_occupancy_bounds",
    "minimal_buffer_sizes",
    "ParetoPoint",
    "explore_buffer_throughput",
    "pareto_frontier",
    "PeriodicSchedule",
    "rate_optimal_schedule",
    "verify_periodic_schedule",
    "IntervalThroughput",
    "interval_throughput",
    "SensitivityReport",
    "sensitivity",
    "slack",
]
