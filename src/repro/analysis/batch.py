"""Concurrent batch analysis of many SDF graphs.

Registry suites, random sweeps and scenario sets all reduce to "analyse
this list of graphs and collect the numbers".  :func:`run_batch` does
that through a selectable backend:

``thread`` (default)
    A ``ThreadPoolExecutor`` sharing one :class:`AnalysisCache`.  Pure
    Python analyses do not parallelise under the GIL, but the shared
    cache's single-flight coalescing means a suite with repeated graph
    variants does each distinct computation exactly once — which is the
    common shape of scenario/parametric sweeps.

``process``
    A ``ProcessPoolExecutor``: true multi-core for fleets of distinct
    heavy graphs.  Graphs are pickled to the workers; results are stored
    into the local cache on return, so a later warm pass is O(1).

``serial``
    A plain loop with the same result/reporting shape (baseline and
    fallback when no executor is available).

Per-graph failures never kill the pool: each :class:`GraphResult`
carries either a value or the error, and :class:`BatchReport` separates
the two.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache, CacheStats, default_cache
from repro.sdf.graph import SDFGraph

__all__ = ["ANALYSES", "BatchReport", "GraphResult", "analyse_graph", "run_batch"]

#: Analyses the batch runner knows how to dispatch, by name.
ANALYSES = ("repetition", "throughput", "latency", "symbolic_iteration")


@dataclass
class GraphResult:
    """Outcome of the analyses of one graph in a batch."""

    name: str
    fingerprint: str
    values: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def value(self, analysis: str) -> Any:
        if not self.ok:
            raise RuntimeError(f"graph {self.name!r} failed: {self.error}")
        return self.values[analysis]


@dataclass
class BatchReport:
    """All per-graph results of one batch run plus cache observability."""

    results: List[GraphResult]
    backend: str
    workers: int
    duration: float
    cache_stats: CacheStats

    @property
    def ok(self) -> List[GraphResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> List[GraphResult]:
        return [r for r in self.results if not r.ok]

    @property
    def hit_rate(self) -> float:
        return self.cache_stats.hit_rate

    def __repr__(self) -> str:
        return (
            f"BatchReport({len(self.ok)} ok, {len(self.failures)} failed, "
            f"backend={self.backend!r}, workers={self.workers}, "
            f"{self.duration:.3f}s, hit_rate={self.hit_rate:.2f})"
        )


def _check_analyses(analyses: Sequence[str]) -> Tuple[str, ...]:
    unknown = [a for a in analyses if a not in ANALYSES]
    if unknown:
        raise ValueError(
            f"unknown analyses {unknown!r}; available: {', '.join(ANALYSES)}"
        )
    if not analyses:
        raise ValueError("no analyses requested")
    return tuple(analyses)


def analyse_graph(
    graph: SDFGraph,
    analyses: Sequence[str] = ("throughput",),
    method: str = "symbolic",
    cache: Optional[AnalysisCache] = None,
    lint: Optional[str] = None,
) -> GraphResult:
    """Run ``analyses`` on one graph through ``cache`` (errors captured).

    ``lint`` arms the pre-analysis gate: ``"error"`` fails the graph on
    error-severity lint findings before any analysis runs, ``"warning"``
    also fails on warnings (``None`` — the default — skips the gate).
    Lint reports go through the same cache, so the gate is O(1) on
    repeated graphs.
    """
    analyses = _check_analyses(analyses)
    if cache is None:
        cache = default_cache()
    result = GraphResult(name=graph.name, fingerprint=graph.fingerprint())
    start = time.perf_counter()
    try:
        if lint is not None:
            from repro.lint.engine import ensure_lint_clean

            ensure_lint_clean(graph, cache=cache, fail_on=lint)
        for analysis in analyses:
            if analysis == "repetition":
                result.values[analysis] = cache.repetition_vector(graph)
            elif analysis == "throughput":
                result.values[analysis] = cache.throughput(graph, method=method)
            elif analysis == "latency":
                result.values[analysis] = cache.latency(graph)
            else:  # symbolic_iteration
                result.values[analysis] = cache.symbolic_iteration(graph)
    except Exception as error:  # per-graph isolation: the pool survives
        result.error = str(error)
        result.error_type = type(error).__name__
        result.values.clear()
    result.duration = time.perf_counter() - start
    return result


def _analyse_cold(
    payload: Tuple[SDFGraph, Tuple[str, ...], str, Optional[str]]
) -> GraphResult:
    """Process-pool worker: analyse without a shared cache (module level
    so it pickles)."""
    graph, analyses, method, lint = payload
    return analyse_graph(
        graph, analyses, method, cache=AnalysisCache(maxsize=8), lint=lint
    )


def _store_back(
    cache: AnalysisCache, graph: SDFGraph, result: GraphResult, method: str
) -> None:
    """Adopt a worker process's results into the local cache."""
    for analysis, value in result.values.items():
        params = {"method": method} if analysis == "throughput" else None
        cache.store(graph, analysis, value, params=params)


def run_batch(
    graphs: Iterable[SDFGraph],
    analyses: Sequence[str] = ("throughput",),
    method: str = "symbolic",
    backend: str = "thread",
    workers: int = 4,
    cache: Optional[AnalysisCache] = None,
    lint: Optional[str] = None,
) -> BatchReport:
    """Analyse every graph in ``graphs`` concurrently.

    Results come back in input order regardless of completion order.
    ``cache_stats`` in the returned report is a snapshot *after* the run
    of the cache that served it (the shared default cache unless one is
    passed), so ``report.hit_rate`` reflects the whole cache lifetime;
    compare snapshots around the call for per-run rates.

    ``lint`` (``None``, ``"error"`` or ``"warning"``) arms the
    pre-analysis lint gate per graph: a gated graph fails fast with
    ``error_type == "LintError"`` and never reaches the analyses, while
    the rest of the batch proceeds normally.
    """
    graphs = list(graphs)
    analyses = _check_analyses(analyses)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers!r}")
    if lint not in (None, "error", "warning"):
        raise ValueError(
            f"lint gate must be None, 'error' or 'warning', got {lint!r}"
        )
    if cache is None:
        cache = default_cache()

    start = time.perf_counter()
    if backend == "serial" or not graphs:
        results = [analyse_graph(g, analyses, method, cache, lint) for g in graphs]
    elif backend == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(
                pool.map(
                    lambda g: analyse_graph(g, analyses, method, cache, lint), graphs
                )
            )
    elif backend == "process":
        # Serve what the local cache already has; farm the rest out.
        results: List[Optional[GraphResult]] = [None] * len(graphs)
        cold: List[Tuple[int, SDFGraph]] = []
        for index, graph in enumerate(graphs):
            if all(
                cache.key(graph, a, {"method": method} if a == "throughput" else None)
                in cache
                for a in analyses
            ):
                results[index] = analyse_graph(graph, analyses, method, cache, lint)
            else:
                cold.append((index, graph))
        if cold:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                outcomes = pool.map(
                    _analyse_cold, [(g, analyses, method, lint) for _, g in cold]
                )
                for (index, graph), outcome in zip(cold, outcomes):
                    if outcome.ok:
                        _store_back(cache, graph, outcome, method)
                    results[index] = outcome
    else:
        raise ValueError(
            f"unknown backend {backend!r}; use thread, process or serial"
        )
    duration = time.perf_counter() - start

    return BatchReport(
        results=results,
        backend=backend,
        workers=workers,
        duration=duration,
        cache_stats=cache.stats(),
    )
