"""Concurrent, fault-tolerant batch analysis of many SDF graphs.

Registry suites, random sweeps and scenario sets all reduce to "analyse
this list of graphs and collect the numbers".  :func:`run_batch` does
that through a selectable backend:

``thread`` (default)
    A ``ThreadPoolExecutor`` sharing one :class:`AnalysisCache`.  Pure
    Python analyses do not parallelise under the GIL, but the shared
    cache's single-flight coalescing means a suite with repeated graph
    variants does each distinct computation exactly once — which is the
    common shape of scenario/parametric sweeps.

``process``
    A ``ProcessPoolExecutor``: true multi-core for fleets of distinct
    heavy graphs.  Graphs are pickled to the workers; results are stored
    into the local cache on return, so a later warm pass is O(1).

``serial``
    A plain loop with the same result/reporting shape (baseline and
    fallback when no executor is available).

Resilience guarantees (all backends unless noted):

* **Per-graph isolation** — an analysis error, a ``MemoryError`` or (in
  workers) a ``KeyboardInterrupt`` fails only that graph; every error
  record carries the graph's content fingerprint.
* **Deadlines** — ``timeout`` bounds each graph's analysis attempt
  cooperatively (:mod:`repro.analysis.deadline`); a pathological graph
  times out instead of hanging the sweep.
* **Retries** — failures classified transient
  (:class:`repro.errors.TransientWorkerError`, ``OSError``) are retried
  with exponential backoff before being recorded.
* **Crash recovery** (process backend) — a worker that dies takes only
  its own pool down: completed results are kept, in-flight graphs are
  re-dispatched one-per-fresh-pool, and the graph that reproducibly
  kills its worker is *quarantined* (``error_type == "WorkerCrashed"``)
  while everything else completes.
* **Journal / resume** — with ``journal=`` every finished graph is
  appended (flushed + fsynced) to a fingerprint-keyed JSONL file;
  ``resume=True`` skips every fingerprint the journal already records
  as completed, so a killed sweep restarts where it stopped.
* **Fault injection** — a :class:`repro.analysis.faults.FaultPlan`
  deterministically plants delays/exceptions/worker-kills, which is how
  the recovery paths above are exercised in CI.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.cache import AnalysisCache, CacheStats, default_cache
from repro.analysis.deadline import CancelToken, Deadline
from repro.analysis.faults import FaultPlan
from repro.analysis.journal import BatchJournal, JournalRecord, summarise_value
from repro.errors import TransientWorkerError
from repro.obs.metrics import MetricsRegistry, default_registry, set_default_registry
from repro.obs.trace import Tracer, current_tracer, span
from repro.sdf.graph import SDFGraph

__all__ = [
    "ANALYSES",
    "BatchReport",
    "GraphResult",
    "analyse_graph",
    "run_batch",
]

#: Analyses the batch runner knows how to dispatch, by name.
ANALYSES = ("repetition", "throughput", "latency", "symbolic_iteration")

#: Error types treated as transient (retried with backoff).
_TRANSIENT = (TransientWorkerError, OSError, ConnectionError)


@dataclass
class GraphResult:
    """Outcome of the analyses of one graph in a batch."""

    name: str
    fingerprint: str
    values: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    error_type: Optional[str] = None
    duration: float = 0.0
    #: How many attempts were made (> 1 when transient retries fired).
    attempts: int = 1
    #: The graph reproducibly killed its worker process and was isolated.
    quarantined: bool = False
    #: The result was replayed from a journal, not analysed in this run
    #: (``values`` then holds the journal's JSON summaries).
    resumed: bool = False
    #: Id of the ``analyse`` span covering this graph (tracing enabled).
    span_id: Optional[str] = None
    #: Span dicts exported by a process-backend worker's private tracer;
    #: adopted into the parent trace under the worker's process lane.
    trace_spans: Optional[List[Dict[str, Any]]] = None
    #: The worker tracer's wall-clock epoch (``Tracer.epoch_wall``):
    #: lets the parent rebase the spans onto its own timeline.
    trace_epoch: Optional[float] = None
    #: ``repro-metrics-v1`` snapshot of a worker's private registry,
    #: merged into the parent's registry on adoption.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def timed_out(self) -> bool:
        return self.error_type in ("AnalysisTimeout", "AnalysisCancelled")

    def value(self, analysis: str) -> Any:
        if not self.ok:
            raise RuntimeError(f"graph {self.name!r} failed: {self.error}")
        return self.values[analysis]


@dataclass
class BatchReport:
    """All per-graph results of one batch run plus cache observability."""

    results: List[GraphResult]
    backend: str
    workers: int
    duration: float
    cache_stats: CacheStats
    journal_path: Optional[str] = None
    #: ``repro-metrics-v1`` snapshot of the process-wide registry taken
    #: after the run (worker registries already merged in).
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> List[GraphResult]:
        return [r for r in self.results if r.ok]

    @property
    def failures(self) -> List[GraphResult]:
        return [r for r in self.results if not r.ok]

    @property
    def quarantined(self) -> List[GraphResult]:
        return [r for r in self.results if r.quarantined]

    @property
    def timed_out(self) -> List[GraphResult]:
        return [r for r in self.results if r.timed_out]

    @property
    def resumed(self) -> List[GraphResult]:
        return [r for r in self.results if r.resumed]

    @property
    def hit_rate(self) -> float:
        return self.cache_stats.hit_rate

    def __repr__(self) -> str:
        extras = ""
        if self.quarantined:
            extras += f", {len(self.quarantined)} quarantined"
        if self.resumed:
            extras += f", {len(self.resumed)} resumed"
        return (
            f"BatchReport({len(self.ok)} ok, {len(self.failures)} failed{extras}, "
            f"backend={self.backend!r}, workers={self.workers}, "
            f"{self.duration:.3f}s, hit_rate={self.hit_rate:.2f})"
        )


def _check_analyses(analyses: Sequence[str]) -> Tuple[str, ...]:
    unknown = [a for a in analyses if a not in ANALYSES]
    if unknown:
        raise ValueError(
            f"unknown analyses {unknown!r}; available: {', '.join(ANALYSES)}"
        )
    if not analyses:
        raise ValueError("no analyses requested")
    return tuple(analyses)


def analyse_graph(
    graph: SDFGraph,
    analyses: Sequence[str] = ("throughput",),
    method: str = "symbolic",
    cache: Optional[AnalysisCache] = None,
    lint: Optional[str] = None,
    timeout: Optional[float] = None,
    faults: Optional[FaultPlan] = None,
    retries: int = 0,
    backoff: float = 0.05,
    token: Optional[CancelToken] = None,
    allow_kill: bool = False,
    isolate_interrupts: bool = False,
    kernel: str = "auto",
) -> GraphResult:
    """Run ``analyses`` on one graph through ``cache`` (errors captured).

    ``lint`` arms the pre-analysis gate: ``"error"`` fails the graph on
    error-severity lint findings before any analysis runs, ``"warning"``
    also fails on warnings (``None`` — the default — skips the gate).
    Lint reports go through the same cache, so the gate is O(1) on
    repeated graphs.

    ``timeout`` bounds *each attempt* with a cooperative
    :class:`~repro.analysis.deadline.Deadline`; an expired budget is
    recorded as ``error_type == "AnalysisTimeout"``.  Failures whose
    type is transient (:data:`repro.errors.TransientWorkerError`,
    ``OSError``) are retried up to ``retries`` times with exponential
    ``backoff``.  ``faults`` (a deterministic
    :class:`~repro.analysis.faults.FaultPlan`) fires at the start of
    every attempt.  ``isolate_interrupts`` converts a per-graph
    ``KeyboardInterrupt`` into an error record instead of propagating —
    that is how worker processes keep one interrupted graph from
    poisoning a whole pool; in the parent process the default
    (propagate) preserves Ctrl-C semantics.  ``allow_kill`` marks a real
    worker process, in which an injected ``kill`` fault may hard-exit.
    """
    analyses = _check_analyses(analyses)
    if cache is None:
        cache = default_cache()
    name = graph.name
    fingerprint = graph.fingerprint()
    result = GraphResult(name=name, fingerprint=fingerprint)
    tag = f"[graph {name!r} {fingerprint[:12]}]"
    start = time.perf_counter()

    with span("analyse", graph=name, fingerprint=fingerprint,
              analyses=",".join(analyses)) as analyse_span:
        result.span_id = analyse_span.id
        for attempt in range(max(0, retries) + 1):
            result.attempts = attempt + 1
            result.values.clear()
            deadline = (
                Deadline(budget=timeout, token=token)
                if timeout is not None or token is not None
                else None
            )
            try:
                if faults is not None:
                    faults.fire(
                        name, fingerprint,
                        attempt=attempt, deadline=deadline, allow_kill=allow_kill,
                    )
                if lint is not None:
                    from repro.lint.engine import ensure_lint_clean

                    ensure_lint_clean(graph, cache=cache, fail_on=lint)
                for analysis in analyses:
                    if analysis == "repetition":
                        result.values[analysis] = cache.repetition_vector(graph)
                    elif analysis == "throughput":
                        result.values[analysis] = cache.throughput(
                            graph, method=method, deadline=deadline,
                            kernel=kernel,
                        )
                    elif analysis == "latency":
                        result.values[analysis] = cache.latency(graph)
                    else:  # symbolic_iteration
                        result.values[analysis] = cache.symbolic_iteration(
                            graph, deadline=deadline
                        )
                result.error = None
                result.error_type = None
                break
            except MemoryError as error:
                # Distinct from analysis errors: the graph exhausted memory,
                # which says "isolate me", not "my semantics are broken".
                result.error = f"out of memory during analysis {tag}: {error}"
                result.error_type = "MemoryError"
                result.values.clear()
                break
            except KeyboardInterrupt as error:
                if not isolate_interrupts:
                    raise
                result.error = f"analysis interrupted {tag}: {error or 'SIGINT'}"
                result.error_type = "KeyboardInterrupt"
                result.values.clear()
                break
            # devlint: ignore[broad-except] per-graph isolation boundary: the pool must survive arbitrary analysis failures (timeouts included) and report them per graph
            except Exception as error:
                result.error = f"{error} {tag}"
                result.error_type = type(error).__name__
                result.values.clear()
                if attempt < retries and isinstance(error, _TRANSIENT):
                    default_registry().counter(
                        "repro_batch_retries_total",
                        "Transient per-graph failures retried with backoff.",
                    ).inc()
                    time.sleep(backoff * (2 ** attempt))
                    continue
                break
        analyse_span.set(
            status=result.error_type or "ok", attempts=result.attempts
        )
    result.duration = time.perf_counter() - start
    return result


#: Payload shipped to process-pool workers (primitives + picklable plan;
#: the bool asks the worker to trace its spans for adoption, the
#: trailing path roots the worker's durable result store, if any).
_ColdPayload = Tuple[
    SDFGraph, Tuple[str, ...], str, str, Optional[str],
    Optional[float], Optional[FaultPlan], int, float, bool, Optional[str],
]


def _analyse_cold(payload: _ColdPayload) -> GraphResult:
    """Process-pool worker: analyse without a shared cache (module level
    so it pickles).  Interrupts are isolated and injected ``kill``
    faults may genuinely terminate this process.

    Observability crosses the process boundary by value: the worker
    records into a *fresh* metrics registry (and, when the parent is
    tracing, a fresh tracer) and ships the snapshots back on the result
    — the parent merges them on adoption, so one exported registry and
    one trace cover the whole batch.

    When the batch has a durable store, every worker attaches its own
    :class:`~repro.analysis.store.ResultStore` on the shared root: the
    store's publish protocol is multi-process safe, so workers probe and
    publish concurrently without coordination.
    """
    (graph, analyses, method, kernel, lint, timeout, faults, retries,
     backoff, trace, store_root) = payload
    registry = MetricsRegistry()
    previous = set_default_registry(registry)
    tracer = Tracer().install() if trace else None
    cache = AnalysisCache(maxsize=8)
    if store_root is not None:
        from repro.analysis.store import ResultStore

        cache.attach_store(ResultStore(store_root))
    try:
        result = analyse_graph(
            graph,
            analyses,
            method,
            cache=cache,
            lint=lint,
            timeout=timeout,
            faults=faults,
            retries=retries,
            backoff=backoff,
            allow_kill=True,
            isolate_interrupts=True,
            kernel=kernel,
        )
    finally:
        if tracer is not None:
            tracer.uninstall()
        set_default_registry(previous)
    if tracer is not None:
        result.trace_spans = tracer.export_spans()
        result.trace_epoch = tracer.epoch_wall
    # Exported counters include this worker's cache/disk-tier traffic:
    # the parent merges the snapshot, so `repro_cache_disk_*_total`
    # aggregate additively across the whole fleet.
    cache.register_metrics(registry)
    result.metrics = registry.as_dict()
    return result


def _store_back(
    cache: AnalysisCache, graph: SDFGraph, result: GraphResult, method: str
) -> None:
    """Adopt a worker process's results into the local cache."""
    for analysis, value in result.values.items():
        params = {"method": method} if analysis == "throughput" else None
        cache.store(graph, analysis, value, params=params)


def _journal_record(journal: Optional[BatchJournal], result: GraphResult) -> None:
    if journal is None or result.resumed:
        return
    journal.record(JournalRecord(
        name=result.name,
        fingerprint=result.fingerprint,
        ok=result.ok,
        values={
            analysis: summarise_value(analysis, value)
            for analysis, value in result.values.items()
        },
        error=result.error,
        error_type=result.error_type,
        duration=result.duration,
        quarantined=result.quarantined,
        attempts=result.attempts,
    ))


def _resumed_result(graph: SDFGraph, record: JournalRecord) -> GraphResult:
    return GraphResult(
        name=graph.name,
        fingerprint=record.fingerprint,
        values=dict(record.values),
        duration=0.0,
        attempts=record.attempts,
        resumed=True,
    )


def run_batch(
    graphs: Iterable[SDFGraph],
    analyses: Sequence[str] = ("throughput",),
    method: str = "symbolic",
    backend: str = "thread",
    workers: int = 4,
    cache: Optional[AnalysisCache] = None,
    lint: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    backoff: float = 0.05,
    faults: Optional[FaultPlan] = None,
    journal: Optional[Union[str, Path]] = None,
    resume: bool = False,
    token: Optional[CancelToken] = None,
    kernel: str = "auto",
    store: Optional[Union[str, Path, "ResultStore"]] = None,
) -> BatchReport:
    """Analyse every graph in ``graphs`` concurrently and resiliently.

    Results come back in input order regardless of completion order.
    ``cache_stats`` in the returned report is a snapshot *after* the run
    of the cache that served it (the shared default cache unless one is
    passed), so ``report.hit_rate`` reflects the whole cache lifetime;
    compare snapshots around the call for per-run rates.

    ``lint`` (``None``, ``"error"`` or ``"warning"``) arms the
    pre-analysis lint gate per graph: a gated graph fails fast with
    ``error_type == "LintError"`` and never reaches the analyses, while
    the rest of the batch proceeds normally.

    See :func:`analyse_graph` for ``timeout``/``retries``/``backoff``/
    ``faults`` and the module docstring for the journal/resume and
    worker-crash-recovery contracts.  ``token`` cancels the whole batch
    cooperatively (thread/serial backends; already-dispatched process
    workers run their current graph to completion).

    ``store`` (a :class:`repro.analysis.store.ResultStore` or a root
    path) attaches the durable disk tier to the batch cache *and* to
    every process-backend worker's private cache — so a re-run of the
    same suite in a fresh process serves from disk instead of
    recomputing, even without a journal.  Results are published to the
    store before the journal records their graph as completed, so the
    journal is always a subset of the store (``repro cache verify
    --journal`` checks exactly that after a crash).
    """
    graphs = list(graphs)
    analyses = _check_analyses(analyses)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers!r}")
    if lint not in (None, "error", "warning"):
        raise ValueError(
            f"lint gate must be None, 'error' or 'warning', got {lint!r}"
        )
    from repro.kernels import KERNELS

    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {', '.join(KERNELS)}"
        )
    if resume and journal is None:
        raise ValueError("resume=True requires a journal path")
    if cache is None:
        cache = default_cache()

    store_root: Optional[str] = None
    previous_store = cache.disk_store
    if store is not None:
        from repro.analysis.store import ResultStore

        if not isinstance(store, ResultStore):
            store = ResultStore(store)
        store_root = str(store.root)
        # The parent cache serves warm lookups and adopts every worker
        # result, so attaching the store here is what makes results
        # durable across runs: store() publishes before the journal
        # records a graph as done (journal ⊆ store, asserted by
        # ``repro cache verify --journal``).  The previous tier is
        # restored on exit so a shared cache (the CLI's process-global
        # one) does not keep publishing to this run's root afterwards.
        cache.attach_store(store)

    journal_store = BatchJournal(journal) if journal is not None else None
    completed: Dict[str, JournalRecord] = {}
    if resume:
        completed = {
            fp: rec for fp, rec in journal_store.load().items() if rec.ok
        }

    def analyse(graph: SDFGraph) -> GraphResult:
        result = analyse_graph(
            graph, analyses, method, cache, lint,
            timeout=timeout, faults=faults, retries=retries, backoff=backoff,
            token=token, kernel=kernel,
        )
        _journal_record(journal_store, result)
        return result

    start = time.perf_counter()
    try:
        with span("batch", graphs=len(graphs), backend=backend,
                  workers=workers, analyses=",".join(analyses)):
            # Replay journaled successes first; only the rest is analysed.
            results: List[Optional[GraphResult]] = [None] * len(graphs)
            todo: List[Tuple[int, SDFGraph]] = []
            for index, graph in enumerate(graphs):
                record = completed.get(graph.fingerprint())
                if record is not None:
                    results[index] = _resumed_result(graph, record)
                else:
                    todo.append((index, graph))

            if backend == "serial" or not todo:
                for index, graph in todo:
                    results[index] = analyse(graph)
            elif backend == "thread":
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    for (index, _), result in zip(
                        todo, pool.map(lambda item: analyse(item[1]), todo)
                    ):
                        results[index] = result
            elif backend == "process":
                _run_process_backend(
                    todo, results, analyses, method, kernel, lint, timeout,
                    faults, retries, backoff, workers, cache, journal_store,
                    store_root,
                )
            else:
                raise ValueError(
                    f"unknown backend {backend!r}; use thread, process or serial"
                )
    finally:
        if store is not None:
            cache.attach_store(previous_store)
        if journal_store is not None:
            journal_store.close()
    duration = time.perf_counter() - start

    registry = default_registry()
    outcomes = registry.counter(
        "repro_batch_results_total",
        "Batch per-graph outcomes by terminal status.",
        labels=("status",),
    )
    for result in results:
        outcomes.labels(status=_result_status(result)).inc()
    cache.register_metrics(registry)

    return BatchReport(
        results=results,
        backend=backend,
        workers=workers,
        duration=duration,
        cache_stats=cache.stats(),
        journal_path=None if journal is None else str(journal),
        metrics=registry.as_dict(),
    )


def _result_status(result: GraphResult) -> str:
    if result.resumed:
        return "resumed"
    if result.quarantined:
        return "quarantined"
    if result.timed_out:
        return "timeout"
    return "ok" if result.ok else "error"


def _run_process_backend(
    todo: List[Tuple[int, SDFGraph]],
    results: List[Optional[GraphResult]],
    analyses: Tuple[str, ...],
    method: str,
    kernel: str,
    lint: Optional[str],
    timeout: Optional[float],
    faults: Optional[FaultPlan],
    retries: int,
    backoff: float,
    workers: int,
    cache: AnalysisCache,
    journal_store: Optional[BatchJournal],
    store_root: Optional[str] = None,
) -> None:
    """Dispatch cold graphs to a process pool; survive worker deaths.

    Graphs fully warm in the local cache are served in-process.  When a
    worker dies (``BrokenProcessPool``), every graph whose future was
    lost is re-dispatched in its *own* single-worker pool: survivors
    complete there, and a graph that kills its private pool too is
    definitively the poison one — it is quarantined with
    ``error_type == "WorkerCrashed"`` and the batch carries on.
    """

    trace_workers = current_tracer() is not None

    def payload(graph: SDFGraph) -> _ColdPayload:
        return (graph, analyses, method, kernel, lint, timeout, faults,
                retries, backoff, trace_workers, store_root)

    def adopt(index: int, graph: SDFGraph, outcome: GraphResult) -> None:
        if outcome.ok and not outcome.values and analyses:
            # Defensive: a worker returning an empty success is a bug.
            outcome.error = "worker returned no values"
            outcome.error_type = "WorkerProtocolError"
        if outcome.ok:
            _store_back(cache, graph, outcome, method)
        tracer = current_tracer()
        if tracer is not None and outcome.trace_spans:
            tracer.adopt(
                outcome.trace_spans,
                lane_name=f"worker[{outcome.trace_spans[0]['pid']}]",
                epoch=outcome.trace_epoch,
            )
        if outcome.metrics is not None:
            default_registry().merge(outcome.metrics)
            outcome.metrics = None  # folded in; don't double-merge
        results[index] = outcome
        _journal_record(journal_store, outcome)

    # Serve what the local cache already has; farm the rest out.
    cold: List[Tuple[int, SDFGraph]] = []
    for index, graph in todo:
        if all(
            cache.key(graph, a, {"method": method} if a == "throughput" else None)
            in cache
            for a in analyses
        ):
            adopt(index, graph, analyse_graph(
                graph, analyses, method, cache, lint,
                timeout=timeout, faults=faults, retries=retries, backoff=backoff,
                kernel=kernel,
            ))
        else:
            cold.append((index, graph))
    if not cold:
        return

    lost: List[Tuple[int, SDFGraph]] = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            (pool.submit(_analyse_cold, payload(graph)), index, graph)
            for index, graph in cold
        ]
        for future, index, graph in futures:
            try:
                outcome = future.result()
            except BrokenProcessPool:
                lost.append((index, graph))
                continue
            adopt(index, graph, outcome)

    # Re-dispatch every graph the dead worker took down with it, each in
    # a private pool: deterministic isolation of the poison graph.
    for index, graph in lost:
        try:
            with ProcessPoolExecutor(max_workers=1) as solo:
                outcome = solo.submit(_analyse_cold, payload(graph)).result()
        except BrokenProcessPool:
            fingerprint = graph.fingerprint()
            outcome = GraphResult(
                name=graph.name,
                fingerprint=fingerprint,
                error=(
                    f"worker process died analysing graph {graph.name!r} "
                    f"[{fingerprint[:12]}]; graph quarantined after killing "
                    "its private pool"
                ),
                error_type="WorkerCrashed",
                quarantined=True,
            )
        adopt(index, graph, outcome)
