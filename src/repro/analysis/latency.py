"""Latency analysis via the max-plus iteration semantics.

With all initial tokens available at time 0, the completion stamps of the
first iteration's firings are concrete numbers (evaluate each symbolic
stamp at t = 0).  This yields:

* the **makespan** of one iteration (time until the last firing ends);
* per-actor **first-completion** times (e.g. the latency at a dedicated
  output actor, the quantity minimised in Ghamarian et al. 2007 —
  reference [9] of the paper);
* per-token availability times of the next iteration (the vector M ⊗ 0).

All values are exact rationals and are cross-checked against the
self-timed simulator in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusVector
from repro.sdf.graph import SDFGraph
from repro.core.symbolic import SymbolicIteration, symbolic_iteration


@dataclass
class LatencyResult:
    """Latency figures of a single iteration started at time 0."""

    #: Completion time of the iteration's last firing.
    makespan: Fraction
    #: First-firing completion time per actor.
    first_completion: Dict[str, Fraction]
    #: Last-firing completion time per actor.
    last_completion: Dict[str, Fraction]
    #: Availability time of each initial-token slot for the next iteration.
    token_times: Tuple[Fraction, ...]

    def of(self, actor: str) -> Fraction:
        """Latency to the first output of ``actor``."""
        return self.first_completion[actor]


def _concrete(stamp: MaxPlusVector) -> Fraction:
    """Evaluate a symbolic stamp with all initial tokens at time 0."""
    value = stamp.norm()
    if value == EPSILON:
        raise ValidationError(
            "firing does not depend on any initial token; graph is not token-bound"
        )
    return Fraction(value)


def latency(
    graph: SDFGraph, iteration: Optional[SymbolicIteration] = None
) -> LatencyResult:
    """Exact single-iteration latency of a consistent, live SDF graph."""
    if iteration is None:
        iteration = symbolic_iteration(graph)

    first: Dict[str, Fraction] = {}
    last: Dict[str, Fraction] = {}
    for (actor, _), stamp in iteration.firing_completions.items():
        value = _concrete(stamp)
        if actor not in first or value < first[actor]:
            first[actor] = value
        if actor not in last or value > last[actor]:
            last[actor] = value

    makespan = max(last.values()) if last else Fraction(0)
    token_times = tuple(
        _concrete(iteration.matrix.row(k)) for k in range(iteration.token_count)
    )
    return LatencyResult(
        makespan=makespan,
        first_completion=first,
        last_completion=last,
        token_times=token_times,
    )
