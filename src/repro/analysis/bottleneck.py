"""Critical-cycle (bottleneck) reporting.

Throughput analyses answer "how fast"; designers next ask "*what* is in
the way".  The critical cycle of the iteration matrix names the initial
tokens whose recurrent dependency chain attains the eigenvalue; mapping
them back to channels (and their endpoint actors) points at the part of
the model to optimise — add pipeline slack (tokens), speed up the actors
on the chain, or re-map them.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.symbolic import SymbolicIteration, TokenId, symbolic_iteration
from repro.maxplus.spectral import critical_indices
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class BottleneckReport:
    """The recurrence-critical part of a timed SDF graph.

    ``cycle_time`` is the iteration period λ; ``tokens`` the critical
    initial tokens in cycle order; ``channels`` their channels;
    ``actors`` the endpoint actors of those channels (a superset of the
    firing chain that realises the cycle); ``slack_per_token`` says how
    much one extra pipeline token on each critical channel could help at
    most (λ is a max over cycle *ratios*: weight over token count).
    """

    cycle_time: Optional[Fraction]
    tokens: Tuple[TokenId, ...]
    channels: Tuple[str, ...]
    actors: Tuple[str, ...]

    @property
    def bounded(self) -> bool:
        return self.cycle_time is not None

    @property
    def slack_per_token(self) -> Optional[Fraction]:
        """λ·|cycle|/(|cycle|+1): the period if one extra token were
        spread onto the critical token cycle (a lower bound on what any
        single added pipeline register can achieve)."""
        if self.cycle_time is None or not self.tokens:
            return None
        length = len(self.tokens)
        return self.cycle_time * length / (length + 1)

    def describe(self) -> str:
        if not self.bounded:
            return "no recurrent constraint: throughput unbounded"
        token_list = ", ".join(str(t) for t in self.tokens)
        actor_list = ", ".join(self.actors)
        return (
            f"iteration period {self.cycle_time}; critical tokens: "
            f"{token_list}; actors on the critical channels: {actor_list}"
        )


def bottleneck(
    graph: SDFGraph, iteration: Optional[SymbolicIteration] = None
) -> BottleneckReport:
    """Locate the critical cycle of ``graph``'s iteration matrix."""
    if iteration is None:
        iteration = symbolic_iteration(graph)
    lam, indices = critical_indices(iteration.matrix)
    if lam is None:
        return BottleneckReport(None, (), (), ())
    tokens = tuple(iteration.token_ids[i] for i in indices)
    channels: List[str] = []
    actors: List[str] = []
    for token in tokens:
        if token.edge not in channels:
            channels.append(token.edge)
        edge = graph.edge(token.edge)
        for actor in (edge.source, edge.target):
            if actor not in actors:
                actors.append(actor)
    return BottleneckReport(
        cycle_time=Fraction(lam),
        tokens=tokens,
        channels=tuple(channels),
        actors=tuple(actors),
    )
