"""Spectral analysis of max-plus matrices.

The (largest) max-plus eigenvalue of a square matrix ``M`` equals the
maximum cycle mean of its precedence graph (nodes = indices, an edge
``j → i`` of weight ``M[i][j]`` for every finite entry).  For the
iteration matrix of an SDF graph the eigenvalue is the asymptotic
iteration period, so the graph's throughput is ``γ(a)/λ`` firings per
time unit (Baccelli et al. 1992, and Section 6 of the paper).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Tuple

from repro.errors import ConvergenceError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.mcm.graphlib import RatioGraph
from repro.mcm.karp import karp_mcm


def precedence_graph(matrix: MaxPlusMatrix) -> RatioGraph:
    """The weighted precedence graph of a square max-plus matrix.

    Edge ``j → i`` with weight ``M[i][j]`` and unit transit for every
    finite entry; cycle means of this graph are the cycle weights of the
    matrix.
    """
    if matrix.nrows != matrix.ncols:
        raise ValueError("precedence graph requires a square matrix")
    graph = RatioGraph()
    for i in range(matrix.nrows):
        graph.add_node(i)
    for i in range(matrix.nrows):
        row = matrix.rows[i]
        for j in range(matrix.ncols):
            if row[j] != EPSILON:
                graph.add_edge(j, i, row[j], 1)
    return graph


def _karp(matrix: MaxPlusMatrix, deadline, kernel: str):
    if kernel == "numpy":
        from repro.kernels.mcm import karp_mcm_numpy

        return karp_mcm_numpy(precedence_graph(matrix), deadline=deadline)
    if kernel != "exact":
        raise ValueError(
            f"unknown concrete kernel {kernel!r}; use 'numpy' or 'exact'"
        )
    return karp_mcm(precedence_graph(matrix), deadline=deadline)


def eigenvalue(matrix: MaxPlusMatrix, deadline=None,
               kernel: str = "exact") -> Optional[Fraction]:
    """The largest max-plus eigenvalue, or ``None`` for a nilpotent matrix.

    Computed exactly as the maximum cycle mean of the precedence graph
    (Karp's algorithm per strongly connected component).  ``None`` means
    the precedence graph is acyclic: ``M^k`` is eventually all-ε and no
    recurrent timing constraint exists.  ``deadline`` (a
    :class:`repro.analysis.deadline.Deadline`) bounds the MCM iteration
    cooperatively.

    ``kernel="numpy"`` runs the vectorized Karp kernel
    (:func:`repro.kernels.mcm.karp_mcm_numpy`) — same exact result; a
    :class:`repro.kernels.NumericalGuardError` propagates to the caller,
    which decides whether to fall back to the exact kernel.
    """
    result = _karp(matrix, deadline, kernel)
    return result.value


def critical_indices(matrix: MaxPlusMatrix, deadline=None,
                     kernel: str = "exact") -> Tuple[Optional[Fraction], list]:
    """Eigenvalue plus the index cycle that attains it (critical cycle)."""
    result = _karp(matrix, deadline, kernel)
    if result.value is None:
        return None, []
    return result.value, result.cycle_nodes()


def critical_cycle(matrix: MaxPlusMatrix, deadline=None,
                   kernel: str = "exact"):
    """Eigenvalue and critical cycle in one Karp run.

    Returns the full :class:`repro.mcm.graphlib.CycleRatioResult` so
    callers that need both the value and the witnessing cycle (e.g. the
    provenance layer) pay for a single MCM computation.  The result's
    ``cycle`` edges connect matrix *indices* (``j → i`` for entry
    ``M[i][j]``); ``value`` is ``None`` for nilpotent matrices.
    ``kernel`` selects the concrete MCM kernel (see :func:`eigenvalue`).
    """
    return _karp(matrix, deadline, kernel)


def cycle_time(matrix: MaxPlusMatrix, deadline=None) -> Fraction:
    """Like :func:`eigenvalue` but returns 0 for nilpotent matrices.

    Zero cycle time means one iteration imposes no recurrent lower bound:
    iterations can overlap without limit.
    """
    value = eigenvalue(matrix, deadline=deadline)
    return Fraction(0) if value is None else value


def power_iteration_cycle_time(
    matrix: MaxPlusMatrix,
    start: Optional[MaxPlusVector] = None,
    max_steps: int = 100_000,
    deadline=None,
) -> Fraction:
    """Cycle time via the max-plus power method (cross-check for Karp).

    Iterates ``x ← M ⊗ x`` and detects periodicity of the *normalised*
    vector: when ``x(k+c)`` equals ``x(k)`` up to an additive constant δ,
    the cycle time is ``δ/c`` (the cyclicity theorem guarantees this for
    irreducible matrices).  Raises :class:`ConvergenceError` when no
    period appears within ``max_steps`` — which can genuinely happen for
    reducible matrices whose components run at different speeds.
    """
    if matrix.nrows != matrix.ncols:
        raise ValueError("power iteration requires a square matrix")
    x = start if start is not None else MaxPlusVector.zeros(matrix.nrows)
    seen: dict = {}
    progress = (
        deadline.checkpoint("power-iteration", {"step": 0, "max_steps": max_steps})
        if deadline is not None
        else None
    )
    for step in range(max_steps):
        if deadline is not None:
            progress["step"] = step
            deadline.check()
        norm = x.norm()
        key = x.normalised()
        if key in seen:
            prev_step, prev_norm = seen[key]
            if norm == EPSILON or prev_norm == EPSILON:
                return Fraction(0)
            return Fraction(norm - prev_norm, step - prev_step)
        seen[key] = (step, norm)
        x = matrix.apply(x)
    raise ConvergenceError(
        f"max-plus power iteration found no period within {max_steps} steps "
        "(matrix may be reducible with rate-mismatched components)"
    )
