"""Max-plus algebra: the (max, +) semiring over the rationals with -inf.

The max-plus semiring is the algebraic backbone of timed SDF analysis
(Baccelli et al., "Synchronization and Linearity", 1992 — reference [1] of
the paper).  Symbolic time stamps in Algorithm 1 of the paper are max-plus
vectors; one iteration of a graph is a max-plus matrix; throughput is the
inverse of the matrix's eigenvalue.
"""

from repro.maxplus.algebra import EPSILON, is_epsilon, mp_plus, mp_max, mp_times_int
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.maxplus.spectral import eigenvalue, cycle_time, power_iteration_cycle_time
from repro.maxplus.recurrence import (
    Recurrence,
    cycle_time_vector,
    eigenvector,
    solve_recurrence,
)

__all__ = [
    "EPSILON",
    "is_epsilon",
    "mp_plus",
    "mp_max",
    "mp_times_int",
    "MaxPlusMatrix",
    "MaxPlusVector",
    "eigenvalue",
    "cycle_time",
    "power_iteration_cycle_time",
    "Recurrence",
    "cycle_time_vector",
    "eigenvector",
    "solve_recurrence",
]
