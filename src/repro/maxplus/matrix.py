"""Max-plus vectors and matrices with exact rational entries.

A max-plus matrix ``M`` acts on a vector ``x`` by
``(M ⊗ x)[i] = max_j (M[i][j] + x[j])``.  One iteration of a consistent
timed SDF graph maps the production times of its initial tokens through
exactly such a matrix (Section 6 of the paper); the matrix is obtained by
the symbolic execution in :mod:`repro.core.symbolic`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Sequence

from repro.maxplus.algebra import EPSILON, check_scalar, mp_max, mp_plus


class MaxPlusVector:
    """An immutable max-plus column vector with exact entries."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Iterable):
        self._entries = tuple(check_scalar(x) for x in entries)

    @classmethod
    def unit(cls, size: int, index: int) -> "MaxPlusVector":
        """The ``index``-th max-plus unit vector: 0 at ``index``, ε elsewhere.

        These are the initial symbolic time stamps ī_k of Algorithm 1.
        """
        if not 0 <= index < size:
            raise IndexError(f"unit index {index} out of range for size {size}")
        return cls(0 if i == index else EPSILON for i in range(size))

    @classmethod
    def zeros(cls, size: int) -> "MaxPlusVector":
        """The all-0 vector (the max-plus 'ones' vector of timestamps)."""
        return cls(0 for _ in range(size))

    @classmethod
    def epsilons(cls, size: int) -> "MaxPlusVector":
        """The all-ε vector (the max-plus zero vector)."""
        return cls(EPSILON for _ in range(size))

    @property
    def entries(self) -> tuple:
        return self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator:
        return iter(self._entries)

    def __getitem__(self, i: int):
        return self._entries[i]

    def __eq__(self, other) -> bool:
        if not isinstance(other, MaxPlusVector):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(self._entries)

    def max_with(self, other: "MaxPlusVector") -> "MaxPlusVector":
        """Pointwise max-plus addition (⊕) of two vectors."""
        if len(other) != len(self):
            raise ValueError("vector size mismatch")
        return MaxPlusVector(mp_max(a, b) for a, b in zip(self, other))

    def add_scalar(self, c) -> "MaxPlusVector":
        """Max-plus scaling (⊗ by scalar ``c``): add ``c`` to every entry."""
        c = check_scalar(c)
        return MaxPlusVector(mp_plus(x, c) for x in self)

    def norm(self):
        """The max-plus norm: the largest entry (ε for the ε-vector)."""
        return mp_max(*self._entries)

    def normalised(self) -> "MaxPlusVector":
        """Subtract the norm from every finite entry; used for periodicity
        detection in the power iteration."""
        n = self.norm()
        if n == EPSILON:
            return self
        return self.add_scalar(-n)

    def inner(self, other: "MaxPlusVector"):
        """Max-plus inner product: max_i (self[i] + other[i])."""
        if len(other) != len(self):
            raise ValueError("vector size mismatch")
        return mp_max(*(mp_plus(a, b) for a, b in zip(self, other)))

    def __repr__(self) -> str:
        return f"MaxPlusVector({list(self._entries)!r})"


class MaxPlusMatrix:
    """An immutable square-or-rectangular max-plus matrix, row-major."""

    __slots__ = ("_rows", "_nrows", "_ncols")

    def __init__(self, rows: Sequence[Sequence]):
        self._rows = tuple(tuple(check_scalar(x) for x in row) for row in rows)
        self._nrows = len(self._rows)
        widths = {len(r) for r in self._rows}
        if len(widths) > 1:
            raise ValueError("ragged matrix rows")
        self._ncols = widths.pop() if widths else 0

    @classmethod
    def identity(cls, size: int) -> "MaxPlusMatrix":
        """Max-plus identity: 0 on the diagonal, ε elsewhere."""
        return cls(
            [0 if i == j else EPSILON for j in range(size)] for i in range(size)
        )

    @classmethod
    def epsilons(cls, nrows: int, ncols: int) -> "MaxPlusMatrix":
        return cls([EPSILON] * ncols for _ in range(nrows))

    @classmethod
    def from_columns(cls, columns: Sequence[MaxPlusVector]) -> "MaxPlusMatrix":
        """Build a matrix whose ``k``-th column is ``columns[k]``.

        Algorithm 1 produces one symbolic time stamp *per initial token*;
        stacking them as columns yields the iteration matrix ``G`` with
        ``G[j][k] = g_{j,k}`` so that ``t'_k = max_j (t_j + G[j][k])``.
        Note: the paper indexes ``g_{j,k}`` by (source token j, produced
        token k); this constructor keeps that orientation, so apply the
        *transpose* to map old stamps to new stamps with ``M ⊗ x``.
        """
        if not columns:
            return cls([])
        size = len(columns[0])
        if any(len(c) != size for c in columns):
            raise ValueError("column size mismatch")
        return cls([c[j] for c in columns] for j in range(size))

    @property
    def nrows(self) -> int:
        return self._nrows

    @property
    def ncols(self) -> int:
        return self._ncols

    @property
    def rows(self) -> tuple:
        return self._rows

    def __getitem__(self, index):
        i, j = index
        return self._rows[i][j]

    def __eq__(self, other) -> bool:
        if not isinstance(other, MaxPlusMatrix):
            return NotImplemented
        return self._rows == other._rows

    def __hash__(self) -> int:
        return hash(self._rows)

    def transpose(self) -> "MaxPlusMatrix":
        return MaxPlusMatrix(
            (self._rows[i][j] for i in range(self._nrows))
            for j in range(self._ncols)
        )

    def apply(self, vector: MaxPlusVector) -> MaxPlusVector:
        """Matrix-vector product ``M ⊗ x``."""
        if len(vector) != self._ncols:
            raise ValueError(
                f"size mismatch: matrix has {self._ncols} columns, "
                f"vector has {len(vector)} entries"
            )
        return MaxPlusVector(
            mp_max(*(mp_plus(row[j], vector[j]) for j in range(self._ncols)))
            if self._ncols
            else EPSILON
            for row in self._rows
        )

    def multiply(self, other: "MaxPlusMatrix") -> "MaxPlusMatrix":
        """Matrix-matrix product ``self ⊗ other``."""
        if self._ncols != other._nrows:
            raise ValueError("matrix dimension mismatch")
        k_range = range(self._ncols)
        return MaxPlusMatrix(
            (
                mp_max(*(mp_plus(self._rows[i][k], other._rows[k][j]) for k in k_range))
                if self._ncols
                else EPSILON
                for j in range(other._ncols)
            )
            for i in range(self._nrows)
        )

    def max_with(self, other: "MaxPlusMatrix") -> "MaxPlusMatrix":
        """Pointwise max-plus addition (⊕) of two matrices."""
        if (self._nrows, self._ncols) != (other._nrows, other._ncols):
            raise ValueError("matrix dimension mismatch")
        return MaxPlusMatrix(
            (mp_max(a, b) for a, b in zip(r1, r2))
            for r1, r2 in zip(self._rows, other._rows)
        )

    def power(self, n: int) -> "MaxPlusMatrix":
        """Max-plus matrix power ``M^⊗n`` (n ≥ 0) by binary exponentiation."""
        if self._nrows != self._ncols:
            raise ValueError("power requires a square matrix")
        if n < 0:
            raise ValueError("negative max-plus matrix powers are undefined")
        result = MaxPlusMatrix.identity(self._nrows)
        base = self
        while n:
            if n & 1:
                result = result.multiply(base)
            base = base.multiply(base)
            n >>= 1
        return result

    def star(self, max_terms: int | None = None) -> "MaxPlusMatrix":
        """Kleene star ``M* = I ⊕ M ⊕ M² ⊕ …`` (longest-path closure).

        Converges iff no cycle of the precedence graph has positive
        weight; raises :class:`ValueError` otherwise.  Computed with a
        Floyd-Warshall sweep in O(n³).
        """
        if self._nrows != self._ncols:
            raise ValueError("star requires a square matrix")
        n = self._nrows
        dist = [list(row) for row in self._rows]
        for i in range(n):
            if dist[i][i] != EPSILON and dist[i][i] > 0:
                raise ValueError("positive self-loop: Kleene star diverges")
            dist[i][i] = mp_max(dist[i][i], 0)
        for k in range(n):
            row_k = dist[k]
            for i in range(n):
                d_ik = dist[i][k]
                if d_ik == EPSILON:
                    continue
                row_i = dist[i]
                for j in range(n):
                    via = mp_plus(d_ik, row_k[j])
                    if via > row_i[j]:
                        row_i[j] = via
        for i in range(n):
            if dist[i][i] > 0:
                raise ValueError("positive cycle: Kleene star diverges")
        return MaxPlusMatrix(dist)

    def finite_entry_count(self) -> int:
        """Number of non-ε entries (sparsity measure, see Figure 4)."""
        return sum(1 for row in self._rows for x in row if x != EPSILON)

    def column(self, j: int) -> MaxPlusVector:
        return MaxPlusVector(row[j] for row in self._rows)

    def row(self, i: int) -> MaxPlusVector:
        return MaxPlusVector(self._rows[i])

    def __repr__(self) -> str:
        body = ",\n ".join(repr(list(r)) for r in self._rows)
        return f"MaxPlusMatrix(\n [{body}])"

    def pretty(self) -> str:
        """Human-readable rendering with ε shown as '.'."""

        def fmt(x):
            if x == EPSILON:
                return "."
            if isinstance(x, Fraction) and x.denominator == 1:
                return str(x.numerator)
            return str(x)

        cells = [[fmt(x) for x in row] for row in self._rows]
        width = max((len(c) for row in cells for c in row), default=1)
        return "\n".join(" ".join(c.rjust(width) for c in row) for row in cells)
