"""Scalar operations of the (max, +) semiring.

Elements are exact rational numbers (``int`` or :class:`fractions.Fraction`)
extended with the neutral element of ``max``, written ε and represented by
``float('-inf')``.  ε is the *zero* of the semiring (``max(ε, x) = x``,
``ε + x = ε``) and ``0`` is its *one*.

All operations keep rational values exact: mixing a ``Fraction`` with
``float('-inf')`` only ever happens inside comparisons (which Python
defines exactly) — the helpers below never produce an inexact float other
than ε itself.
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Rational

#: The max-plus zero element ε = -infinity.
EPSILON = float("-inf")

#: Values accepted as max-plus scalars.
MPValue = "int | Fraction | float"


def is_epsilon(x) -> bool:
    """Return True iff ``x`` is the max-plus zero element ε (-inf)."""
    return x == EPSILON


def check_scalar(x):
    """Validate ``x`` as a max-plus scalar and return it.

    Accepts exact rationals (``int``/``Fraction``) and ε.  Finite floats
    are rejected to keep the core analyses exact; convert to ``Fraction``
    first if float inputs are genuinely needed.
    """
    if isinstance(x, bool):
        raise TypeError("booleans are not max-plus scalars")
    if isinstance(x, Rational):
        return x
    if isinstance(x, float):
        if x == EPSILON:
            return EPSILON
        if math.isnan(x) or math.isinf(x):
            raise ValueError(f"{x!r} is not a valid max-plus scalar")
        raise TypeError(
            f"finite float {x!r} rejected: use Fraction for exact analysis"
        )
    raise TypeError(f"{x!r} is not a max-plus scalar")


def mp_plus(a, b):
    """Max-plus multiplication: conventional addition, absorbing ε."""
    if a == EPSILON or b == EPSILON:
        return EPSILON
    return a + b


def mp_max(*values):
    """Max-plus addition: conventional maximum; ε for an empty argument list."""
    result = EPSILON
    for v in values:
        if v > result:
            result = v
    return result


def mp_times_int(a, n: int):
    """Multiply a max-plus scalar by a conventional integer (repeated ⊗)."""
    if a == EPSILON:
        return EPSILON if n > 0 else 0
    return a * n


def mp_sum(values):
    """Max-plus addition over an iterable (maximum, ε when empty)."""
    return mp_max(*values)


def as_fraction(x):
    """Convert a finite max-plus scalar to :class:`Fraction`; ε passes through."""
    if x == EPSILON:
        return EPSILON
    return Fraction(x)
