"""The max-plus linear recurrence x(k+1) = M ⊗ x(k) in closed form.

For an SDF graph, ``x(k)`` is the vector of token availability times
after ``k`` iterations.  Max-plus spectral theory (Baccelli et al.,
reference [1] of the paper; Cohen et al. for the reducible case) says
the sequence is *eventually periodic with linear growth*: there is a
**cycle-time vector** η (one rate per entry — all equal to the
eigenvalue λ when the matrix is irreducible), a transient ``K`` and a
cyclicity ``c`` with ``x(k + c) = c·η + x(k)`` entry-wise for ``k ≥ K``.
This module computes that normal form explicitly (by exact iteration
against the analytically computed η), plus eigenvectors, and powers the
transient/latency analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.errors import ConvergenceError
from repro.maxplus.algebra import EPSILON, mp_times_int
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.maxplus.spectral import precedence_graph
from repro.mcm.karp import karp_mcm


def cycle_time_vector(matrix: MaxPlusMatrix) -> Tuple[Fraction, ...]:
    """The per-entry asymptotic growth rates η of ``x(k+1) = M ⊗ x(k)``.

    Entry ``i`` grows like the largest cycle mean among the strongly
    connected components of the precedence graph that can *influence* it
    (reach it along dependency edges); entries no cycle reaches turn to
    ε after the transient and are reported with rate 0.
    """
    if matrix.nrows != matrix.ncols:
        raise ValueError("cycle-time vector requires a square matrix")
    graph = precedence_graph(matrix)
    components = graph.strongly_connected_components()
    component_of = {}
    for index, members in enumerate(components):
        for node in members:
            component_of[node] = index

    means: List[Optional[Fraction]] = []
    for members in components:
        subgraph = graph.subgraph(members)
        if subgraph.has_cycle():
            means.append(karp_mcm(subgraph).value)
        else:
            means.append(None)

    # Tarjan emits successors first; reversed() is a topological order of
    # the condensation with edge sources before targets.
    rate: List[Optional[Fraction]] = list(means)
    for index in reversed(range(len(components))):
        for node in components[index]:
            for edge in graph.in_edges(node):
                upstream = rate[component_of[edge.source]]
                if upstream is not None and (
                    rate[index] is None or upstream > rate[index]
                ):
                    rate[index] = upstream

    return tuple(
        rate[component_of[i]] if rate[component_of[i]] is not None else Fraction(0)
        for i in range(matrix.nrows)
    )


@dataclass(frozen=True)
class Recurrence:
    """The eventually-periodic normal form of ``x(k+1) = M ⊗ x(k)``.

    ``prefix`` holds ``x(0) … x(K + c − 1)``; for ``k ≥ K``,
    ``x(k)`` equals ``prefix[k₀]`` shifted entry-wise by whole periods of
    the cycle-time vector, with ``k₀ = K + ((k − K) mod c)``.
    """

    matrix: MaxPlusMatrix
    start: MaxPlusVector
    transient: int
    cyclicity: int
    rates: Tuple[Fraction, ...]
    prefix: Tuple[MaxPlusVector, ...]

    @property
    def rate(self) -> Fraction:
        """The dominant growth rate (= eigenvalue λ for irreducible M)."""
        return max(self.rates, default=Fraction(0))

    def state(self, k: int) -> MaxPlusVector:
        """``x(k)`` for any ``k ≥ 0``, in O(size) after the precomputation."""
        if k < 0:
            raise ValueError("iteration index must be non-negative")
        if k < len(self.prefix):
            return self.prefix[k]
        base_index = self.transient + (k - self.transient) % self.cyclicity
        periods, remainder = divmod(k - base_index, self.cyclicity)
        assert remainder == 0
        base = self.prefix[base_index]
        return MaxPlusVector(
            mp_times_int(rate * self.cyclicity, periods) + value
            if value != EPSILON
            else EPSILON
            for rate, value in zip(self.rates, base)
        )

    def completion_time(self, k: int) -> Fraction:
        """max entry of x(k): when iteration ``k``'s tokens are all ready."""
        return self.state(k).norm()


def solve_recurrence(
    matrix: MaxPlusMatrix,
    start: Optional[MaxPlusVector] = None,
    max_steps: int = 100_000,
) -> Recurrence:
    """Iterate to the eventually-periodic regime and package it.

    Detects the smallest ``(K, c)`` with ``x(K + c) = c·η + x(K)``
    entry-wise, η being the cycle-time vector; exact throughout.  Raises
    :class:`ConvergenceError` only if no period appears within
    ``max_steps`` (the theory guarantees one exists; the bound defends
    against pathological transients).
    """
    if matrix.nrows != matrix.ncols:
        raise ValueError("recurrence requires a square matrix")
    if start is None:
        start = MaxPlusVector.zeros(matrix.nrows)
    rates = cycle_time_vector(matrix)

    def normalise(vector: MaxPlusVector, k: int) -> MaxPlusVector:
        return MaxPlusVector(
            value - rate * k if value != EPSILON else EPSILON
            for rate, value in zip(rates, vector)
        )

    states: List[MaxPlusVector] = [start]
    seen = {normalise(start, 0): 0}
    x = start
    for k in range(1, max_steps + 1):
        x = matrix.apply(x)
        states.append(x)
        key = normalise(x, k)
        if key in seen:
            transient = seen[key]
            cyclicity = k - transient
            return Recurrence(
                matrix=matrix,
                start=start,
                transient=transient,
                cyclicity=cyclicity,
                rates=rates,
                prefix=tuple(states[:k]),
            )
        seen[key] = k
    raise ConvergenceError(
        f"no linear periodic regime within {max_steps} iterations"
    )


def eigenvector(matrix: MaxPlusMatrix) -> Tuple[Fraction, MaxPlusVector]:
    """An eigenpair: λ and v with ``M ⊗ v = λ + v`` (v has a 0 entry).

    Constructed the classical way: normalise the matrix by λ, take the
    Kleene star of ``M_λ = (−λ) ⊗ M``, and read off the column of any
    *critical* node (a node on a cycle of mean λ); that column satisfies
    the eigenproblem exactly.  Requires at least one cycle.
    """
    from repro.maxplus.spectral import critical_indices

    lam, cycle_nodes = critical_indices(matrix)
    if lam is None:
        raise ValueError("nilpotent matrix: no eigenvector exists")
    normalised = MaxPlusMatrix(
        [
            (entry - lam if entry != EPSILON else EPSILON)
            for entry in row
        ]
        for row in matrix.rows
    )
    star = normalised.star()
    column = star.column(cycle_nodes[0])
    check = matrix.apply(column)
    expected = column.add_scalar(lam)
    if check != expected:
        raise AssertionError("critical column is not an eigenvector (bug)")
    return Fraction(lam), column
