"""Communication-aware mapping: channels that cross processors cost time.

The platform model of reference [16] (and the CA actors of Figure 5):
when a channel's producer and consumer sit on different processors, the
tokens travel through the interconnect.  This module rewrites such
channels by splitting them with a *communication actor*:

    a --(p : c, d tokens)--> b
        becomes
    a --(p : 1)--> comm --(1 : c, d tokens)--> b

``comm`` fires once per transported token with the given latency, and
the initial tokens move to the delivery side (they are already at the
consumer when the system starts).  The interconnect can be ``infinite``
(every transfer in parallel — a fabric with private links) or
``shared`` (one token threads all communication actors — a single bus),
the latter built with the same static-order machinery as processors.

Splitting only adds actors and dependencies, so the analysis stays
conservative in the Proposition-1 sense relative to an ideal zero-time
interconnect.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.mapping.binding import Mapping, bind
from repro.sdf.graph import SDFGraph


def communication_actor_name(edge_name: str) -> str:
    return f"comm_{edge_name}"


def insert_communication(
    graph: SDFGraph,
    mapping: Mapping,
    latency,
    name: Optional[str] = None,
) -> SDFGraph:
    """Split every processor-crossing channel with a communication actor.

    Self-loops and intra-processor channels are untouched.  The result
    is consistent whenever ``graph`` is (the comm actor's repetition is
    the transported token count per iteration).
    """
    mapping.validate(graph)
    result = SDFGraph(name or f"{graph.name}-comm")
    for actor in graph.actors:
        result.add_actor(actor.name, actor.execution_time)
    for edge in graph.edges:
        crossing = (
            not edge.is_self_loop
            and mapping.assignment[edge.source] != mapping.assignment[edge.target]
        )
        if not crossing:
            result.add_edge(
                edge.source,
                edge.target,
                edge.production,
                edge.consumption,
                edge.tokens,
                name=edge.name,
            )
            continue
        comm = communication_actor_name(edge.name)
        result.add_actor(comm, latency)
        # One comm firing per token; a token in flight at a time per
        # channel (the CA is a sequential engine): self-loop.
        result.add_edge(comm, comm, tokens=1, name=f"self_{comm}")
        result.add_edge(
            edge.source, comm, production=edge.production, consumption=1,
            name=f"{edge.name}__send",
        )
        result.add_edge(
            comm, edge.target, production=1, consumption=edge.consumption,
            tokens=edge.tokens, name=edge.name,
        )
    return result


def communication_mapping(
    graph_with_comm: SDFGraph, mapping: Mapping, interconnect: str = "infinite"
) -> Mapping:
    """Extend ``mapping`` over the communication actors.

    ``infinite``: each comm actor gets its own pseudo-processor (private
    link); ``shared``: all comm actors share one ``noc`` resource and
    are serialised by the binding machinery like any processor.
    """
    if interconnect not in ("infinite", "shared"):
        raise ValidationError(
            f"unknown interconnect {interconnect!r}; use 'infinite' or 'shared'"
        )
    assignment: Dict[str, str] = dict(mapping.assignment)
    for actor in graph_with_comm.actor_names:
        if actor in assignment:
            continue
        if not actor.startswith("comm_"):
            raise ValidationError(f"actor {actor!r} is not covered by the mapping")
        assignment[actor] = "noc" if interconnect == "shared" else f"link_{actor}"
    return Mapping(assignment=assignment, orders=mapping.orders)


def bind_with_communication(
    graph: SDFGraph,
    mapping: Mapping,
    latency,
    interconnect: str = "infinite",
    name: Optional[str] = None,
) -> SDFGraph:
    """Full platform-aware binding: split crossing channels, extend the
    mapping over the communication actors, and bind at firing
    granularity (:func:`repro.mapping.binding.bind`)."""
    with_comm = insert_communication(graph, mapping, latency)
    full_mapping = communication_mapping(with_comm, mapping, interconnect)
    return bind(with_comm, full_mapping, name=name or f"{graph.name}-platform")
