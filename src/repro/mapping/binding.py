"""Binding-aware SDF graphs: processors as serialisation edges.

A *mapping* assigns every actor to a processor and fixes a static order
per processor.  The bound graph expands the application to firing
granularity (the traditional HSDF) and threads one processor token
through each processor's firings in static order, enforcing genuine
mutual exclusion: at most one firing per processor at a time, in the
scheduled order.

Because binding only *adds* dependencies, the bound graph's throughput
conservatively bounds any run-time behaviour that respects the schedule
— the standard binding-aware analysis of predictable multiprocessor
design flows (references [3, 13, 16] of the paper).  The firing-level
expansion is also the paper's best advertisement: bound graphs are huge
(Σγ actors), and its compact conversion shrinks them right back.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping as MappingType, Optional

from repro.errors import ValidationError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class Mapping:
    """A processor assignment plus static order per processor.

    ``assignment`` maps actor → processor name; ``orders`` optionally
    fixes the static order per processor (defaults to the actors'
    insertion order in the graph).
    """

    assignment: MappingType[str, str]
    orders: Optional[MappingType[str, List[str]]] = None

    def __post_init__(self):
        object.__setattr__(self, "assignment", dict(self.assignment))
        if self.orders is not None:
            object.__setattr__(
                self, "orders", {p: list(a) for p, a in self.orders.items()}
            )

    def processors(self) -> List[str]:
        seen: Dict[str, None] = {}
        for processor in self.assignment.values():
            seen.setdefault(processor)
        return list(seen)

    def actors_on(self, processor: str, graph: SDFGraph) -> List[str]:
        if self.orders is not None and processor in self.orders:
            order = list(self.orders[processor])
            expected = {
                a for a, p in self.assignment.items() if p == processor
            }
            if set(order) != expected:
                raise ValidationError(
                    f"static order for {processor!r} does not match its "
                    f"assigned actors (order {sorted(order)}, "
                    f"assigned {sorted(expected)})"
                )
            return order
        # Default: follow a topological order of the zero-token edges, so
        # the static order agrees with the data flow wherever possible (a
        # user-specified order may still deadlock the bound graph — that
        # is a meaningful analysis outcome, reported as DeadlockError).
        topo = _zero_delay_topological_order(graph)
        rank = {a: i for i, a in enumerate(topo)}
        return sorted(
            (a for a, p in self.assignment.items() if p == processor),
            key=lambda a: rank[a],
        )

    def validate(self, graph: SDFGraph) -> None:
        actors = set(graph.actor_names)
        if set(self.assignment) != actors:
            missing = actors - set(self.assignment)
            extra = set(self.assignment) - actors
            raise ValidationError(
                f"mapping does not cover the graph exactly "
                f"(missing {sorted(missing)}, extraneous {sorted(extra)})"
            )


def _zero_delay_topological_order(graph: SDFGraph) -> List[str]:
    """Kahn's algorithm over the token-free edges (ties: insertion order)."""
    indegree = {a: 0 for a in graph.actor_names}
    for edge in graph.edges:
        if edge.tokens == 0 and edge.source != edge.target:
            indegree[edge.target] += 1
    ready = [a for a in graph.actor_names if indegree[a] == 0]
    order: List[str] = []
    while ready:
        actor = ready.pop(0)
        order.append(actor)
        for edge in graph.out_edges(actor):
            if edge.tokens == 0 and edge.source != edge.target:
                indegree[edge.target] -= 1
                if indegree[edge.target] == 0:
                    ready.append(edge.target)
    if len(order) != graph.actor_count():
        raise ValidationError(
            "zero-token edges form a cycle; the graph deadlocks and admits "
            "no static order"
        )
    return order


def bind(graph: SDFGraph, mapping: Mapping, name: Optional[str] = None) -> SDFGraph:
    """The binding-aware graph of ``graph`` under ``mapping``.

    Mutual exclusion on a processor is a *per-firing* property, so the
    binding works on the traditional HSDF expansion (one actor per firing
    — references [11, 15]): each processor's token is threaded through
    its firings in static order as a cycle of homogeneous edges with one
    initial token on the wrap-around edge.  The result is a homogeneous
    graph whose iteration period is the guaranteed period of the
    static-order schedule; an infeasible order (contradicting the data
    flow) shows up as a :class:`DeadlockError` during analysis.

    Per-actor firings are kept consecutive (a single-appearance order);
    pass :class:`Mapping.orders` to change the actor order per processor.
    Note the size cost of binding at firing granularity — Σγ actors —
    is exactly what the paper's compact conversion then removes again:
    ``convert_to_hsdf(bind(g, m))`` is the intended pipeline for large
    mapped systems.
    """
    from repro.sdf.transform import firing_name, traditional_hsdf

    mapping.validate(graph)
    gamma = repetition_vector(graph)
    bound = traditional_hsdf(graph)
    bound.name = name or f"{graph.name}-bound"

    for processor in mapping.processors():
        order = mapping.actors_on(processor, graph)
        firings = [
            firing_name(actor, i) for actor in order for i in range(gamma[actor])
        ]
        if not firings:
            continue
        if len(firings) == 1:
            actor = firings[0]
            if not bound.has_self_loop(actor):
                bound.add_edge(actor, actor, 1, 1, 1, name=f"proc_{processor}")
            continue
        pairs = list(zip(firings, firings[1:])) + [(firings[-1], firings[0])]
        for index, (a, b) in enumerate(pairs):
            bound.add_edge(
                a,
                b,
                tokens=1 if index == len(pairs) - 1 else 0,
                name=f"proc_{processor}_{index}",
            )
    return bound


def mapped_throughput(graph: SDFGraph, mapping: Mapping, method: str = "symbolic"):
    """Guaranteed throughput of ``graph`` under ``mapping``."""
    from repro.analysis.throughput import throughput

    return throughput(bind(graph, mapping), method=method)


def processor_utilisation(
    graph: SDFGraph, mapping: Mapping, method: str = "symbolic"
) -> Dict[str, Fraction]:
    """Fraction of each processor's time spent executing per period.

    Computed against the bound graph's iteration period λ:
    ``util(p) = Σ_{a on p} γ(a)·T(a) / λ`` — at most 1 for any feasible
    static-order schedule.
    """
    result = mapped_throughput(graph, mapping, method=method)
    if result.unbounded:
        raise ValidationError("unbounded throughput: utilisation undefined")
    gamma = repetition_vector(graph)
    load: Dict[str, Fraction] = {p: Fraction(0) for p in mapping.processors()}
    for actor, processor in mapping.assignment.items():
        load[processor] += gamma[actor] * Fraction(graph.execution_time(actor))
    return {p: total / result.cycle_time for p, total in load.items()}
