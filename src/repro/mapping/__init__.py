"""Multiprocessor binding: the design-flow context of the paper.

The paper's motivation (and references [3, 13, 16]) is predictable
multiprocessor system design: applications *and* platform are modelled
as one timed SDF graph whose analysis yields guaranteed throughput.
This subpackage supplies that substrate:

* :func:`repro.mapping.binding.bind` — turn a processor assignment with
  static-order schedules into a *binding-aware* graph by adding resource
  serialisation edges (more dependencies ⇒ conservative, by the same
  Proposition-1 monotonicity the paper's abstraction uses);
* :func:`repro.mapping.binding.mapped_throughput` /
  :func:`processor_utilisation` — guaranteed rates and per-processor
  load under a mapping;
* :mod:`repro.mapping.explore` — a small design-space exploration loop
  (greedy load balancing over a processor-count sweep), the kind of
  automated flow the reductions are meant to accelerate.
"""

from repro.mapping.binding import (
    Mapping,
    bind,
    mapped_throughput,
    processor_utilisation,
)
from repro.mapping.explore import greedy_load_balance, sweep_processor_counts
from repro.mapping.communication import (
    bind_with_communication,
    communication_mapping,
    insert_communication,
)

__all__ = [
    "Mapping",
    "bind",
    "mapped_throughput",
    "processor_utilisation",
    "greedy_load_balance",
    "sweep_processor_counts",
    "bind_with_communication",
    "communication_mapping",
    "insert_communication",
]
