"""A small design-space exploration loop over processor counts.

The automated flow the paper's reductions are meant to accelerate:
propose mappings, analyse each candidate's guaranteed throughput, keep
the Pareto sweep.  The mapper here is a deliberately simple greedy
load balancer — the point of this module is the analysis loop, not
mapping heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.mapping.binding import Mapping, mapped_throughput
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def greedy_load_balance(graph: SDFGraph, n_processors: int) -> Mapping:
    """Assign actors to ``n_processors`` by descending load γ(a)·T(a),
    each to the currently least-loaded processor (LPT heuristic)."""
    if n_processors < 1:
        raise ValidationError("need at least one processor")
    gamma = repetition_vector(graph)
    load = {f"p{i}": Fraction(0) for i in range(n_processors)}
    assignment: Dict[str, str] = {}
    actors = sorted(
        graph.actor_names,
        key=lambda a: (gamma[a] * Fraction(graph.execution_time(a)), a),
        reverse=True,
    )
    for actor in actors:
        processor = min(load, key=lambda p: (load[p], p))
        assignment[actor] = processor
        load[processor] += gamma[actor] * Fraction(graph.execution_time(actor))
    return Mapping(assignment=assignment)


@dataclass(frozen=True)
class SweepPoint:
    """One design point: processor count, mapping and its guaranteed rate."""

    processors: int
    mapping: Mapping
    cycle_time: Fraction

    @property
    def throughput(self) -> Fraction:
        return 1 / self.cycle_time


def sweep_processor_counts(
    graph: SDFGraph, max_processors: Optional[int] = None
) -> List[SweepPoint]:
    """Guaranteed iteration period for 1 … ``max_processors`` processors.

    More processors never hurt the *guarantee* produced by the greedy
    mapper's own schedule, but the sweep reports whatever the analysis
    yields — including plateaus once the application's critical cycle,
    not the platform, is the bottleneck (the interesting designer-facing
    fact).
    """
    if max_processors is None:
        max_processors = graph.actor_count()
    points: List[SweepPoint] = []
    for n in range(1, max_processors + 1):
        mapping = greedy_load_balance(graph, n)
        result = mapped_throughput(graph, mapping)
        points.append(
            SweepPoint(processors=n, mapping=mapping, cycle_time=result.cycle_time)
        )
    return points
