"""Timed synchronous dataflow graphs and their classical analyses.

This subpackage is the substrate the paper builds on: the SDF graph model
itself (Definitions 1 and 2 of the paper), repetition vectors and
consistency (Lee & Messerschmitt, 1987), admissible sequential schedules,
self-timed execution with state-space throughput analysis (Ghamarian et
al., ACSD 2006 — reference [8]), and the *traditional* SDF-to-HSDF
conversion (references [11, 15]) that Section 6 of the paper improves on.
"""

from repro.sdf.graph import Actor, Edge, SDFGraph
from repro.sdf.repetition import repetition_vector, is_consistent, iteration_length
from repro.sdf.schedule import sequential_schedule, is_live
from repro.sdf.simulation import SelfTimedSimulation, simulation_throughput
from repro.sdf.transform import traditional_hsdf
from repro.sdf.compose import disjoint_union, feedback, renamed, serial
from repro.sdf.dot import to_dot
from repro.sdf.gantt import gantt
from repro.sdf.validation import validate_graph

__all__ = [
    "Actor",
    "Edge",
    "SDFGraph",
    "repetition_vector",
    "is_consistent",
    "iteration_length",
    "sequential_schedule",
    "is_live",
    "SelfTimedSimulation",
    "simulation_throughput",
    "traditional_hsdf",
    "disjoint_union",
    "feedback",
    "renamed",
    "serial",
    "to_dot",
    "gantt",
    "validate_graph",
]
