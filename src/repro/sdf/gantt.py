"""ASCII Gantt rendering of self-timed execution traces.

A quick visual check of what the numbers mean: one row per actor, time
flowing right, one block per firing.  Fractional times are scaled to a
common denominator so the rendering stays exact.
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import List, Optional, Sequence

from repro.sdf.graph import SDFGraph
from repro.sdf.simulation import FiringRecord, SelfTimedSimulation


def simulate_trace(
    graph: SDFGraph, horizon: Fraction, max_events: int = 100_000
) -> List[FiringRecord]:
    """Self-timed firing records with completion time ≤ ``horizon``."""
    sim = SelfTimedSimulation(graph, record_trace=True)
    events = 0
    while not sim.is_deadlocked and sim._ongoing[0][0] <= horizon:
        sim.step()
        events += 1
        if events > max_events:
            break
    return [r for r in sim.trace if r.end <= horizon]


def render_gantt(
    graph: SDFGraph,
    trace: Sequence[FiringRecord],
    width: Optional[int] = None,
    till: Optional[Fraction] = None,
) -> str:
    """Render ``trace`` as an ASCII Gantt chart.

    Each actor gets one lane; overlapping firings of the same actor
    (auto-concurrency) stack extra lanes.  ``width`` caps the character
    width (time is scaled; default: one column per smallest time step).
    """
    if not trace:
        return "(empty trace)"
    horizon = till if till is not None else max(r.end for r in trace)
    scale = lcm(*(Fraction(r.start).denominator for r in trace),
                *(Fraction(r.end).denominator for r in trace),
                Fraction(horizon).denominator)
    ticks = int(Fraction(horizon) * scale)
    if width is not None and ticks > width and ticks > 0:
        # Integer down-scaling keeps the rendering honest (no half cells).
        ratio = -(-ticks // width)
    else:
        ratio = 1
    columns = -(-ticks // ratio) if ticks else 1

    def col(t) -> int:
        return int(Fraction(t) * scale) // ratio

    lanes: dict = {}
    for record in trace:
        start, end = col(record.start), max(col(record.end), col(record.start) + 1)
        actor_lanes = lanes.setdefault(record.actor, [])
        for lane in actor_lanes:
            if all(not (start < e and s < end) for s, e, _ in lane):
                lane.append((start, end, record))
                break
        else:
            actor_lanes.append([(start, end, record)])

    name_width = max(len(a) for a in lanes)
    lines = []
    for actor in graph.actor_names:
        if actor not in lanes:
            continue
        for index, lane in enumerate(lanes[actor]):
            row = [" "] * columns
            for start, end, _ in lane:
                for c in range(start, min(end, columns)):
                    row[c] = "="
                if start < columns:
                    row[start] = "["
                if end - 1 < columns:
                    row[end - 1] = "]" if end - start > 1 else "#"
            label = actor if index == 0 else ""
            lines.append(f"{label:<{name_width}} |{''.join(row)}|")
    axis = f"{'':<{name_width}}  0{'':{max(columns - 2, 0)}}{horizon}"
    lines.append(axis)
    return "\n".join(lines)


def gantt(graph: SDFGraph, horizon, width: Optional[int] = 100) -> str:
    """Convenience: simulate ``graph`` until ``horizon`` and render."""
    horizon = Fraction(horizon)
    return render_gantt(graph, simulate_trace(graph, horizon), width=width, till=horizon)
