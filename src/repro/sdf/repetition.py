"""Consistency and repetition vectors (balance equations).

A consistent SDF graph admits a smallest positive integer vector γ with
``γ(a)·p = γ(b)·c`` for every edge ``(a, b, p, c, d)`` — the *repetition
vector* (Lee & Messerschmitt, 1987).  Executing every actor γ(a) times
returns all channels to their initial token counts: one *iteration*.

The solver propagates exact rational firing ratios over a spanning tree
of each weakly connected component and verifies the remaining edges; the
witness edge of any violation is reported.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Dict

from repro.errors import InconsistentGraphError
from repro.sdf.graph import SDFGraph


def repetition_vector(graph: SDFGraph) -> Dict[str, int]:
    """The repetition vector γ of ``graph``.

    Each weakly connected component is normalised independently to its
    smallest positive integer solution.  Raises
    :class:`InconsistentGraphError` (with the violated edge as witness)
    when the balance equations only admit the trivial solution.
    """
    ratios: Dict[str, Fraction] = {}

    for component in graph.undirected_components():
        seed = component[0]
        ratios[seed] = Fraction(1)
        stack = [seed]
        while stack:
            actor = stack.pop()
            for edge in graph.out_edges(actor):
                # γ(target) = γ(source) · p / c
                implied = ratios[actor] * edge.production / edge.consumption
                if edge.target in ratios:
                    if ratios[edge.target] != implied:
                        raise InconsistentGraphError(
                            f"graph {graph.name!r} is inconsistent: edge "
                            f"{edge.name} ({edge.source}->{edge.target}, "
                            f"{edge.production}/{edge.consumption}) implies "
                            f"γ({edge.target}) = {implied}, but "
                            f"γ({edge.target}) = {ratios[edge.target]}",
                            witness_edge=edge,
                        )
                else:
                    ratios[edge.target] = implied
                    stack.append(edge.target)
            for edge in graph.in_edges(actor):
                implied = ratios[actor] * edge.consumption / edge.production
                if edge.source in ratios:
                    if ratios[edge.source] != implied:
                        raise InconsistentGraphError(
                            f"graph {graph.name!r} is inconsistent: edge "
                            f"{edge.name} ({edge.source}->{edge.target}, "
                            f"{edge.production}/{edge.consumption}) implies "
                            f"γ({edge.source}) = {implied}, but "
                            f"γ({edge.source}) = {ratios[edge.source]}",
                            witness_edge=edge,
                        )
                else:
                    ratios[edge.source] = implied
                    stack.append(edge.source)

        # Scale this component to the smallest positive integer solution.
        members = component
        denominator_lcm = lcm(*(ratios[a].denominator for a in members))
        scaled = {a: ratios[a].numerator * (denominator_lcm // ratios[a].denominator) for a in members}
        numerator_gcd = gcd(*scaled.values())
        for a in members:
            ratios[a] = Fraction(scaled[a] // numerator_gcd)

    return {a: int(ratios[a]) for a in graph.actor_names}


def is_consistent(graph: SDFGraph) -> bool:
    """True iff the balance equations of ``graph`` have a positive solution."""
    try:
        repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def iteration_length(graph: SDFGraph) -> int:
    """Total number of firings in one iteration: Σ_a γ(a).

    This equals the actor count of the *traditional* HSDF conversion —
    the first data column of Table 1 of the paper.
    """
    return sum(repetition_vector(graph).values())
