"""The timed SDF graph data structure (Definitions 1 and 2 of the paper).

An SDF graph is a set of *actors* connected by *dependency edges*; an edge
``(a, b, p, c, d)`` means each firing of ``a`` produces ``p`` tokens for
``b``, each firing of ``b`` consumes ``c`` tokens, and ``d`` tokens are
present initially.  Channels are unbounded FIFOs.  A *timed* SDF graph
additionally assigns every actor an execution time.

The structure is a directed **multigraph**: parallel edges between the
same actor pair are permitted and meaningful (the paper's abstraction
creates them, and :func:`repro.core.pruning.prune_redundant_edges`
removes the redundant ones).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from numbers import Rational
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ValidationError

#: Version tag baked into every fingerprint so that a change to the
#: canonical form can never collide with hashes from older releases.
_FINGERPRINT_VERSION = "sdfg-v1"


def _check_execution_time(value):
    if isinstance(value, bool) or not isinstance(value, Rational):
        raise ValidationError(
            f"execution time must be a non-negative int or Fraction, got {value!r}"
        )
    if value < 0:
        raise ValidationError(f"execution time must be non-negative, got {value!r}")
    return value


@dataclass(frozen=True)
class Actor:
    """An SDF actor: a named process with a worst-case execution time."""

    name: str
    execution_time: Rational = 0

    def __post_init__(self):
        if not self.name:
            raise ValidationError("actor name must be a non-empty string")
        _check_execution_time(self.execution_time)


@dataclass(frozen=True)
class Edge:
    """A dependency edge ``(source, target, production, consumption, tokens)``.

    ``tokens`` is the number of initial tokens (the *delay* ``d`` of
    Definition 1).  Edges have a unique ``name`` within their graph so
    that parallel edges stay distinguishable.
    """

    name: str
    source: str
    target: str
    production: int = 1
    consumption: int = 1
    tokens: int = 0

    def __post_init__(self):
        if not self.name:
            raise ValidationError("edge name must be a non-empty string")
        for label, value in (("production", self.production), ("consumption", self.consumption)):
            if not isinstance(value, int) or isinstance(value, bool) or value < 1:
                raise ValidationError(f"{label} rate must be a positive int, got {value!r}")
        if not isinstance(self.tokens, int) or isinstance(self.tokens, bool) or self.tokens < 0:
            raise ValidationError(
                f"initial token count must be a non-negative int, got {self.tokens!r}"
            )

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target

    @property
    def is_homogeneous(self) -> bool:
        return self.production == 1 and self.consumption == 1


class SDFGraph:
    """A mutable timed SDF multigraph with a builder-style API.

    >>> g = SDFGraph("two-actor")
    >>> _ = g.add_actor("A", execution_time=3)
    >>> _ = g.add_actor("B", execution_time=1)
    >>> _ = g.add_edge("A", "B", production=1, consumption=2, tokens=2)
    >>> _ = g.add_edge("B", "A", production=2, consumption=1, tokens=2)
    >>> g.actor_count(), g.edge_count(), g.total_tokens()
    (2, 2, 4)
    """

    def __init__(self, name: str = "sdf"):
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: Dict[str, Edge] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        self._edge_counter = 0
        self._fingerprint: Optional[str] = None

    def _invalidate_fingerprint(self) -> None:
        self._fingerprint = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_actor(self, name: str, execution_time: Rational = 0) -> Actor:
        """Add an actor; raises if the name is already taken."""
        if name in self._actors:
            raise ValidationError(f"duplicate actor name {name!r}")
        actor = Actor(name, execution_time)
        self._actors[name] = actor
        self._out[name] = []
        self._in[name] = []
        self._invalidate_fingerprint()
        return actor

    def add_actors(self, *names: str, execution_time: Rational = 0) -> None:
        """Add several actors sharing one execution time."""
        for name in names:
            self.add_actor(name, execution_time)

    def set_execution_time(self, actor: str, execution_time: Rational) -> None:
        self._require_actor(actor)
        self._actors[actor] = replace(self._actors[actor], execution_time=execution_time)
        self._invalidate_fingerprint()

    def add_edge(
        self,
        source: str,
        target: str,
        production: int = 1,
        consumption: int = 1,
        tokens: int = 0,
        name: Optional[str] = None,
    ) -> Edge:
        """Add a dependency edge; endpoints must exist already."""
        self._require_actor(source)
        self._require_actor(target)
        if name is None:
            while True:
                name = f"e{self._edge_counter}"
                self._edge_counter += 1
                if name not in self._edges:
                    break
        elif name in self._edges:
            raise ValidationError(f"duplicate edge name {name!r}")
        edge = Edge(name, source, target, production, consumption, tokens)
        self._edges[name] = edge
        self._out[source].append(name)
        self._in[target].append(name)
        self._invalidate_fingerprint()
        return edge

    def remove_edge(self, name: str) -> Edge:
        if name not in self._edges:
            raise ValidationError(f"no edge named {name!r}")
        edge = self._edges.pop(name)
        self._out[edge.source].remove(name)
        self._in[edge.target].remove(name)
        self._invalidate_fingerprint()
        return edge

    def set_tokens(self, edge_name: str, tokens: int) -> Edge:
        """Replace the initial-token count of an edge."""
        old = self._edges.get(edge_name)
        if old is None:
            raise ValidationError(f"no edge named {edge_name!r}")
        new = replace(old, tokens=tokens)
        self._edges[edge_name] = new
        self._invalidate_fingerprint()
        return new

    def set_rates(self, edge_name: str, production: int, consumption: int) -> Edge:
        """Replace the production/consumption rates of an edge."""
        old = self._edges.get(edge_name)
        if old is None:
            raise ValidationError(f"no edge named {edge_name!r}")
        new = replace(old, production=production, consumption=consumption)
        self._edges[edge_name] = new
        self._invalidate_fingerprint()
        return new

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def _require_actor(self, name: str) -> None:
        if name not in self._actors:
            raise ValidationError(f"unknown actor {name!r}")

    @property
    def actors(self) -> List[Actor]:
        return list(self._actors.values())

    @property
    def actor_names(self) -> List[str]:
        return list(self._actors)

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges.values())

    def actor(self, name: str) -> Actor:
        self._require_actor(name)
        return self._actors[name]

    def edge(self, name: str) -> Edge:
        if name not in self._edges:
            raise ValidationError(f"no edge named {name!r}")
        return self._edges[name]

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def execution_time(self, actor: str) -> Rational:
        return self.actor(actor).execution_time

    @property
    def execution_times(self) -> Dict[str, Rational]:
        """The timing function T of Definition 2, as a dict view."""
        return {name: a.execution_time for name, a in self._actors.items()}

    def out_edges(self, actor: str) -> List[Edge]:
        self._require_actor(actor)
        return [self._edges[e] for e in self._out[actor]]

    def in_edges(self, actor: str) -> List[Edge]:
        self._require_actor(actor)
        return [self._edges[e] for e in self._in[actor]]

    def actor_count(self) -> int:
        return len(self._actors)

    def edge_count(self) -> int:
        return len(self._edges)

    def total_tokens(self) -> int:
        """Total number of initial tokens (N of Section 6 of the paper)."""
        return sum(e.tokens for e in self._edges.values())

    def is_homogeneous(self) -> bool:
        """True iff all rates are 1 (the graph is an HSDF graph)."""
        return all(e.is_homogeneous for e in self._edges.values())

    def has_self_loop(self, actor: str) -> bool:
        return any(e.target == actor for e in self.out_edges(actor))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------

    def undirected_components(self) -> List[List[str]]:
        """Weakly connected components, as lists of actor names."""
        seen: set = set()
        components: List[List[str]] = []
        for start in self._actors:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                node = stack.pop()
                component.append(node)
                neighbours = [self._edges[e].target for e in self._out[node]]
                neighbours += [self._edges[e].source for e in self._in[node]]
                for other in neighbours:
                    if other not in seen:
                        seen.add(other)
                        stack.append(other)
            components.append(component)
        return components

    def is_connected(self) -> bool:
        return len(self.undirected_components()) <= 1

    def strongly_connected_components(self) -> List[List[str]]:
        """Tarjan's algorithm on the actor graph (edge multiplicity ignored)."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: set = set()
        stack: List[str] = []
        components: List[List[str]] = []
        counter = 0
        for root in self._actors:
            if root in index:
                continue
            work = [(root, iter(self._out[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, successors = work[-1]
                advanced = False
                for edge_name in successors:
                    child = self._edges[edge_name].target
                    if child not in index:
                        index[child] = lowlink[child] = counter
                        counter += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append((child, iter(self._out[child])))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.remove(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components

    def is_strongly_connected(self) -> bool:
        return len(self.strongly_connected_components()) <= 1

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "SDFGraph":
        clone = SDFGraph(name or self.name)
        for actor in self._actors.values():
            clone.add_actor(actor.name, actor.execution_time)
        for edge in self._edges.values():
            clone.add_edge(
                edge.source,
                edge.target,
                edge.production,
                edge.consumption,
                edge.tokens,
                name=edge.name,
            )
        return clone

    def with_self_loops(self, tokens: int = 1) -> "SDFGraph":
        """A copy where every actor without a self-edge gets one.

        A self-edge with one initial token is the standard SDF idiom for
        excluding auto-concurrency (an actor cannot overlap with itself);
        it also makes every actor token-bound so that throughput is
        well defined.  For multirate actors the self-edge rates are 1/1,
        which admits exactly one concurrent firing.
        """
        clone = self.copy()
        for actor in self.actor_names:
            if not clone.has_self_loop(actor):
                clone.add_edge(actor, actor, 1, 1, tokens, name=f"self_{actor}")
        return clone

    def structurally_equal(self, other: "SDFGraph") -> bool:
        """Equality of actors, execution times and edge multisets
        (edge names and insertion order are ignored)."""
        if set(self._actors) != set(other._actors):
            return False
        for name, actor in self._actors.items():
            if actor.execution_time != other._actors[name].execution_time:
                return False
        mine = sorted(
            (e.source, e.target, e.production, e.consumption, e.tokens)
            for e in self._edges.values()
        )
        theirs = sorted(
            (e.source, e.target, e.production, e.consumption, e.tokens)
            for e in other._edges.values()
        )
        return mine == theirs

    def fingerprint(self) -> str:
        """A canonical content hash of the graph (see `analysis/cache`).

        The fingerprint covers actors (names, execution times) and edges
        (names, endpoints, rates, initial tokens) in a *sorted* canonical
        order, so it is invariant under actor/edge insertion order; it
        deliberately excludes the graph's display ``name`` so renamed
        copies share cached analyses.  Every builder mutator
        (:meth:`add_actor`, :meth:`add_edge`, :meth:`remove_edge`,
        :meth:`set_execution_time`, :meth:`set_tokens`,
        :meth:`set_rates`) invalidates the memoized value, so repeated
        calls between mutations are O(1).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            digest.update(_FINGERPRINT_VERSION.encode())
            for name in sorted(self._actors):
                time = self._actors[name].execution_time
                digest.update(f"|A{name}\x1f{time!s}".encode())
            for key in sorted(
                (e.name, e.source, e.target, e.production, e.consumption, e.tokens)
                for e in self._edges.values()
            ):
                digest.update(("|E" + "\x1f".join(str(part) for part in key)).encode())
            self._fingerprint = f"{_FINGERPRINT_VERSION}:{digest.hexdigest()}"
        return self._fingerprint

    def stats(self) -> Dict[str, int]:
        return {
            "actors": self.actor_count(),
            "edges": self.edge_count(),
            "tokens": self.total_tokens(),
        }

    def __repr__(self) -> str:
        return (
            f"SDFGraph({self.name!r}, actors={self.actor_count()}, "
            f"edges={self.edge_count()}, tokens={self.total_tokens()})"
        )
