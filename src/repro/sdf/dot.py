"""Graphviz DOT export for SDF graphs and analysis artefacts.

Renders the visual conventions of the paper's figures: circles for
actors (labelled with execution times), edge labels ``p/c`` for rates
(omitted when homogeneous), and one dot per initial token drawn as
``•``-runs on the edge label.  Abstraction groupings can be rendered as
Graphviz clusters to visualise a planned reduction before applying it.
"""

from __future__ import annotations

from typing import Collection, Dict, Optional

from repro.sdf.graph import SDFGraph

#: Colour used for critical-cycle highlighting in DOT output.
_HIGHLIGHT = "#c0392b"


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _edge_label(edge, homogeneous: bool) -> str:
    parts = []
    if not homogeneous or not edge.is_homogeneous:
        parts.append(f"{edge.production}/{edge.consumption}")
    if edge.tokens:
        dots = "•" * min(edge.tokens, 6)
        if edge.tokens > 6:
            dots = f"{edge.tokens}•"
        parts.append(dots)
    return " ".join(parts)


def conversion_to_dot(conversion) -> str:
    """Render a compact-HSDF conversion with the Figure-4 roles as clusters.

    Matrix actors, multiplexers, demultiplexers and observers each get
    their own cluster, making the paper's structure visible at a glance.
    ``conversion`` is a :class:`repro.core.hsdf_conversion.HsdfConversion`.
    """
    groups = {}
    for actor in conversion.graph.actor_names:
        if actor.startswith("g_"):
            groups[actor] = "matrix"
        elif actor.startswith("mux_"):
            groups[actor] = "multiplexers"
        elif actor.startswith("dmx_"):
            groups[actor] = "demultiplexers"
        elif actor.startswith(("obs_", "obsg_")):
            groups[actor] = "observers"
        else:
            groups[actor] = actor
    return to_dot(conversion.graph, groups=groups)


def to_dot(
    graph: SDFGraph,
    groups: Optional[Dict[str, str]] = None,
    rankdir: str = "LR",
    highlight_actors: Optional[Collection[str]] = None,
    highlight_edges: Optional[Collection] = None,
) -> str:
    """Render ``graph`` as a DOT digraph.

    ``groups`` (actor → group name, e.g. an :class:`Abstraction`'s
    ``mapping``) draws each group as a cluster.  ``highlight_actors``
    and ``highlight_edges`` mark a critical cycle: named actors, plus
    edges matched either by edge name or by ``(source, target)`` pair,
    are drawn bold and coloured.  The output needs no Graphviz at build
    time — it is plain text for later rendering.
    """
    homogeneous = graph.is_homogeneous()
    hi_actors = set(highlight_actors or ())
    hi_edges = set(highlight_edges or ())
    lines = [f'digraph "{_escape(graph.name)}" {{']
    lines.append(f"  rankdir={rankdir};")
    lines.append('  node [shape=circle, fontsize=11];')

    def actor_line(actor) -> str:
        label = f"{_escape(actor.name)}\\n{actor.execution_time}"
        attrs = f'label="{label}"'
        if actor.name in hi_actors:
            attrs += f', color="{_HIGHLIGHT}", penwidth=2.5, fontcolor="{_HIGHLIGHT}"'
        return f'  "{_escape(actor.name)}" [{attrs}];'

    if groups:
        by_group: Dict[str, list] = {}
        for actor in graph.actors:
            by_group.setdefault(groups.get(actor.name, actor.name), []).append(actor)
        for i, (group, members) in enumerate(sorted(by_group.items())):
            if len(members) == 1 and members[0].name == group:
                lines.append(actor_line(members[0]))
                continue
            lines.append(f'  subgraph "cluster_{i}" {{')
            lines.append(f'    label="{_escape(group)}";')
            for actor in members:
                lines.append("  " + actor_line(actor))
            lines.append("  }")
    else:
        for actor in graph.actors:
            lines.append(actor_line(actor))

    for edge in graph.edges:
        label = _edge_label(edge, homogeneous)
        parts = [f'label="{_escape(label)}"'] if label else []
        if edge.name in hi_edges or (edge.source, edge.target) in hi_edges:
            parts.append(f'color="{_HIGHLIGHT}", penwidth=2.5')
        attrs = f" [{', '.join(parts)}]" if parts else ""
        lines.append(
            f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}"{attrs};'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
