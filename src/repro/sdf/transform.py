"""The traditional SDF-to-HSDF conversion (references [11, 15] of the paper).

Every actor ``a`` is replaced by γ(a) copies — one per firing in an
iteration — so the result has Σ_a γ(a) actors (exactly the first data
column of Table 1 of the paper), which can be exponential in the size of
the SDF graph.  Dependencies between specific firings follow from FIFO
token positions:

For an edge ``(a, b, p, c, d)``, the ``l``-th token consumed by firing
``i`` of ``b`` (all indices 0-based within an iteration) sits at overall
consumption position ``m = i·c + l``.  It was produced at position
``m − d``, i.e. by (possibly negative, meaning: a previous iteration)
firing ``J = floor((m − d)/p)`` of ``a``.  Mapping ``J`` into the
iteration gives the copy index ``j = J mod γ(a)`` and the number of
iterations back ``D = (j − J)/γ(a)``, yielding an HSDF edge
``a_j → b_i`` with ``D`` initial tokens.  Parallel HSDF edges are merged
keeping the smallest delay (the binding constraint).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.provenance import record_step
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def firing_name(actor: str, index: int) -> str:
    """Name of the HSDF copy for firing ``index`` of ``actor``."""
    return f"{actor}#{index}"


def traditional_hsdf(
    graph: SDFGraph,
    repetitions: Optional[Dict[str, int]] = None,
    deadline=None,
) -> SDFGraph:
    """The classical homogeneous expansion of a consistent SDF graph.

    The result fires each copy exactly once per iteration; its maximum
    cycle ratio equals the iteration period of the original graph, and
    every per-firing dependency is preserved one-to-one (unlike the
    paper's compact conversion, which preserves only the aggregate
    timing).

    The expansion has Σγ(a) actors, which is exponential in the rates —
    exactly the blow-up the paper's Table 1 quantifies — so ``deadline``
    (a :class:`repro.analysis.deadline.Deadline`) is polled throughout;
    on expiry :class:`repro.errors.AnalysisTimeout` reports how many
    copies and dependency edges had been materialised.
    """
    if repetitions is None:
        repetitions = repetition_vector(graph)

    progress = (
        deadline.checkpoint(
            "traditional-hsdf",
            {
                "copies": 0,
                "copies_total": sum(repetitions.values()),
                "dependencies": 0,
            },
        )
        if deadline is not None
        else None
    )

    hsdf = SDFGraph(f"{graph.name}-hsdf")
    for actor in graph.actors:
        for i in range(repetitions[actor.name]):
            if deadline is not None:
                progress["copies"] += 1
                deadline.check()
            hsdf.add_actor(firing_name(actor.name, i), actor.execution_time)

    # Collect minimal delays for each copy pair before materialising edges.
    delays: Dict[Tuple[str, str], int] = {}
    for edge in graph.edges:
        gamma_src = repetitions[edge.source]
        for i in range(repetitions[edge.target]):
            if deadline is not None:
                progress["dependencies"] = len(delays)
                deadline.check()
            for l in range(edge.consumption):
                m = i * edge.consumption + l
                produced_at = m - edge.tokens
                j_global = produced_at // edge.production  # floor division
                j = j_global % gamma_src
                iterations_back = (j - j_global) // gamma_src
                key = (firing_name(edge.source, j), firing_name(edge.target, i))
                if key not in delays or iterations_back < delays[key]:
                    delays[key] = iterations_back

    for (source, target), delay in delays.items():
        hsdf.add_edge(source, target, 1, 1, delay)
    record_step(
        "traditional-hsdf-expansion",
        before=graph,
        after=hsdf,
        copies=sum(repetitions.values()),
    )
    return hsdf
