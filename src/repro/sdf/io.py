"""Serialisation of SDF graphs: JSON-friendly dicts and SDF3-style XML.

The XML dialect follows the structure of the SDF3 tool set's ``sdf``
format (Stuijk, Geilen, Basten — reference [17] of the paper) closely
enough that simple SDF3 models round-trip conceptually: actors with
ports, channels with rates and initial tokens, and actor execution times
in the properties section.  Only the subset needed for timed SDF
analysis is supported.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from fractions import Fraction
from numbers import Rational
from typing import Dict

from repro.errors import ValidationError
from repro.sdf.graph import SDFGraph


def _time_to_json(value):
    if isinstance(value, int):
        return value
    return {"numerator": value.numerator, "denominator": value.denominator}


def _time_from_json(value):
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        return Fraction(value["numerator"], value["denominator"])
    raise ValidationError(f"cannot parse execution time {value!r}")


def to_dict(graph: SDFGraph) -> Dict:
    """A JSON-serialisable description of ``graph``."""
    return {
        "name": graph.name,
        "actors": [
            {"name": a.name, "execution_time": _time_to_json(a.execution_time)}
            for a in graph.actors
        ],
        "edges": [
            {
                "name": e.name,
                "source": e.source,
                "target": e.target,
                "production": e.production,
                "consumption": e.consumption,
                "tokens": e.tokens,
            }
            for e in graph.edges
        ],
    }


def from_dict(data: Dict) -> SDFGraph:
    """Rebuild a graph from :func:`to_dict` output."""
    graph = SDFGraph(data.get("name", "sdf"))
    for actor in data["actors"]:
        graph.add_actor(actor["name"], _time_from_json(actor.get("execution_time", 0)))
    for edge in data["edges"]:
        graph.add_edge(
            edge["source"],
            edge["target"],
            edge.get("production", 1),
            edge.get("consumption", 1),
            edge.get("tokens", 0),
            name=edge.get("name"),
        )
    return graph


def to_json(graph: SDFGraph, indent: int = 2) -> str:
    return json.dumps(to_dict(graph), indent=indent)


def from_json(text: str) -> SDFGraph:
    return from_dict(json.loads(text))


def to_sdf3_xml(graph: SDFGraph) -> str:
    """Serialise in an SDF3-like ``<sdf3 type="sdf">`` document."""
    root = ET.Element("sdf3", {"type": "sdf", "version": "1.0"})
    app = ET.SubElement(root, "applicationGraph", {"name": graph.name})
    sdf = ET.SubElement(app, "sdf", {"name": graph.name, "type": graph.name})
    for actor in graph.actors:
        node = ET.SubElement(sdf, "actor", {"name": actor.name, "type": actor.name})
        for e in graph.out_edges(actor.name):
            ET.SubElement(
                node,
                "port",
                {"name": f"out_{e.name}", "type": "out", "rate": str(e.production)},
            )
        for e in graph.in_edges(actor.name):
            ET.SubElement(
                node,
                "port",
                {"name": f"in_{e.name}", "type": "in", "rate": str(e.consumption)},
            )
    for e in graph.edges:
        attrs = {
            "name": e.name,
            "srcActor": e.source,
            "srcPort": f"out_{e.name}",
            "dstActor": e.target,
            "dstPort": f"in_{e.name}",
        }
        if e.tokens:
            attrs["initialTokens"] = str(e.tokens)
        ET.SubElement(sdf, "channel", attrs)
    props = ET.SubElement(app, "sdfProperties")
    for actor in graph.actors:
        ap = ET.SubElement(props, "actorProperties", {"actor": actor.name})
        proc = ET.SubElement(ap, "processor", {"type": "cpu", "default": "true"})
        ET.SubElement(proc, "executionTime", {"time": str(actor.execution_time)})
    ET.indent(root)
    return ET.tostring(root, encoding="unicode")


def from_sdf3_xml(text: str) -> SDFGraph:
    """Parse an SDF3-like document produced by :func:`to_sdf3_xml`.

    Execution times are read from ``sdfProperties``; rates are read from
    the ports referenced by each channel.
    """
    root = ET.fromstring(text)
    app = root.find("applicationGraph")
    if app is None:
        raise ValidationError("missing <applicationGraph> element")
    sdf = app.find("sdf")
    if sdf is None:
        raise ValidationError("missing <sdf> element")

    graph = SDFGraph(app.get("name", "sdf"))
    port_rates: Dict[tuple, int] = {}
    for actor in sdf.findall("actor"):
        graph.add_actor(actor.get("name"))
        for port in actor.findall("port"):
            port_rates[(actor.get("name"), port.get("name"))] = int(port.get("rate", "1"))

    for channel in sdf.findall("channel"):
        src = channel.get("srcActor")
        dst = channel.get("dstActor")
        production = port_rates.get((src, channel.get("srcPort")), 1)
        consumption = port_rates.get((dst, channel.get("dstPort")), 1)
        graph.add_edge(
            src,
            dst,
            production,
            consumption,
            int(channel.get("initialTokens", "0")),
            name=channel.get("name"),
        )

    props = app.find("sdfProperties")
    if props is not None:
        for ap in props.findall("actorProperties"):
            name = ap.get("actor")
            node = ap.find("processor/executionTime")
            if node is not None:
                raw = node.get("time", "0")
                value = Fraction(raw)
                time = int(value) if value.denominator == 1 else value
                graph.set_execution_time(name, time)
    return graph
