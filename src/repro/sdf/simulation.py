"""Self-timed execution of timed SDF graphs.

Under *self-timed* (as-soon-as-possible) semantics every actor starts a
firing the moment all of its input tokens are available, with unlimited
auto-concurrency unless a self-edge bounds it.  Because rates and delays
are constant, self-timed executions of consistent live graphs are
eventually periodic; the throughput analysis below executes the graph
until a state recurs and reads the firing rates off the periodic phase —
the state-space method of Ghamarian et al. (ACSD 2006), reference [8] of
the paper and the inspiration for its symbolic conversion.

All event times are exact rationals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import ConvergenceError, DeadlockError, UnboundedThroughputError
from repro.obs.provenance import WitnessArc
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class FiringRecord:
    """One firing in the execution trace: actor, start and end time."""

    actor: str
    start: Fraction
    end: Fraction


class SelfTimedSimulation:
    """An exact discrete-event engine for self-timed SDF execution.

    >>> g = SDFGraph()
    >>> _ = g.add_actor("A", execution_time=2)
    >>> _ = g.add_edge("A", "A", tokens=1)
    >>> sim = SelfTimedSimulation(g)
    >>> sim.run_for_events(3)
    >>> sim.now, sim.firings["A"]
    (Fraction(6, 1), 3)
    """

    #: Safety bound on simultaneous firing starts at a single time point
    #: (defends against zero-execution-time cycles that fire infinitely
    #: often at one instant).
    MAX_STARTS_PER_INSTANT = 1_000_000

    def __init__(
        self,
        graph: SDFGraph,
        record_trace: bool = False,
        deadline=None,
        record_bindings: bool = False,
    ):
        for actor in graph.actor_names:
            if not graph.in_edges(actor):
                raise UnboundedThroughputError(
                    f"actor {actor!r} has no incoming edges: self-timed execution "
                    "would fire it unboundedly often at time 0; add a self-edge "
                    "with one initial token to bound it",
                    actor=actor,
                )
        self.graph = graph
        self.deadline = deadline
        self.now: Fraction = Fraction(0)
        self.tokens: Dict[str, int] = {e.name: e.tokens for e in graph.edges}
        #: Ongoing firings as a sorted list of (completion time, actor).
        self._ongoing: List[Tuple[Fraction, str]] = []
        self.firings: Dict[str, int] = {a: 0 for a in graph.actor_names}
        self.trace: Optional[List[FiringRecord]] = [] if record_trace else None
        #: Binding back-pointers: (actor, start ordinal) -> the producer
        #: firing ``(producer, ordinal, channel)`` of the *last-arriving*
        #: token the firing consumed, or ``None`` when it bound to an
        #: initial token.  The binding token is the one the firing
        #: actually waited for, so chains of bindings are tight timing
        #: constraints — the raw material for critical-cycle witnesses.
        self.bindings: Optional[Dict[Tuple[str, int], Optional[Tuple[str, int, str]]]] = (
            {} if record_bindings else None
        )
        if record_bindings:
            # Per-channel FIFO mirroring token identities: each entry is
            # (producer, completion ordinal, completion time), or None
            # for an initial token.
            self._fifos: Dict[str, deque] = {
                e.name: deque([None] * e.tokens) for e in graph.edges
            }
            self.start_counts: Dict[str, int] = {a: 0 for a in graph.actor_names}
            self._completion_counts: Dict[str, int] = {a: 0 for a in graph.actor_names}
        self._start_enabled_firings()

    # -- mechanics ------------------------------------------------------

    def _enabled(self, actor: str) -> bool:
        return all(self.tokens[e.name] >= e.consumption for e in self.graph.in_edges(actor))

    def _start_enabled_firings(self) -> None:
        started = 0
        progress = True
        while progress:
            progress = False
            for actor in self.graph.actor_names:
                if self.deadline is not None:
                    self.deadline.check()
                while self._enabled(actor):
                    if self.bindings is not None:
                        self._record_binding(actor)
                    for e in self.graph.in_edges(actor):
                        self.tokens[e.name] -= e.consumption
                    end = self.now + self.graph.execution_time(actor)
                    self._ongoing.append((end, actor))
                    started += 1
                    if started > self.MAX_STARTS_PER_INSTANT:
                        raise ConvergenceError(
                            "more than "
                            f"{self.MAX_STARTS_PER_INSTANT} firing starts at time "
                            f"{self.now}: a zero-execution-time cycle fires "
                            "infinitely often at one instant"
                        )
                    progress = True
        self._ongoing.sort()

    def _record_binding(self, actor: str) -> None:
        """Pop the consumed token identities and remember the binding one.

        Called exactly once per firing start, *before* the token counts
        are decremented.  The binding token is the consumed token with
        the latest production time (under self-timed semantics that time
        is the firing's start); ties break deterministically on
        (time, producer, ordinal) so re-runs reproduce the same witness.
        """
        binding = None
        best = None
        for e in self.graph.in_edges(actor):
            fifo = self._fifos[e.name]
            for _ in range(e.consumption):
                entry = fifo.popleft()
                if entry is not None:
                    producer, ordinal, end = entry
                    rank = (end, producer, ordinal)
                    if best is None or rank > best:
                        best = rank
                        binding = (producer, ordinal, e.name)
        ordinal = self.start_counts[actor]
        self.start_counts[actor] = ordinal + 1
        self.bindings[(actor, ordinal)] = binding

    @property
    def is_deadlocked(self) -> bool:
        """No firing is ongoing and none can start: nothing will ever happen."""
        return not self._ongoing

    def step(self) -> Fraction:
        """Advance to the next completion time; returns the new time.

        Completes *all* firings ending at that time, then starts every
        firing they enable.  Raises :class:`DeadlockError` if the
        execution is stuck.
        """
        if self.is_deadlocked:
            raise DeadlockError(
                f"self-timed execution of {self.graph.name!r} deadlocked at time {self.now}"
            )
        next_time = self._ongoing[0][0]
        completing = []
        while self._ongoing and self._ongoing[0][0] == next_time:
            completing.append(self._ongoing.pop(0))
        self.now = next_time
        for end, actor in completing:
            if self.bindings is not None:
                # Same-actor firings complete in start order (constant
                # execution times, stable sort), so the completion
                # ordinal equals the firing's start ordinal.
                ordinal = self._completion_counts[actor]
                self._completion_counts[actor] = ordinal + 1
                for e in self.graph.out_edges(actor):
                    self._fifos[e.name].extend(
                        [(actor, ordinal, end)] * e.production
                    )
            for e in self.graph.out_edges(actor):
                self.tokens[e.name] += e.production
            self.firings[actor] += 1
            if self.trace is not None:
                self.trace.append(
                    FiringRecord(actor, end - self.graph.execution_time(actor), end)
                )
        self._start_enabled_firings()
        return self.now

    def run_for_events(self, count: int) -> None:
        """Execute ``count`` completion events (stops early on deadlock)."""
        for _ in range(count):
            if self.is_deadlocked:
                return
            self.step()

    def run_until(self, deadline: Fraction) -> None:
        """Execute all events with completion time <= ``deadline``."""
        while self._ongoing and self._ongoing[0][0] <= deadline:
            self.step()

    # -- state hashing ----------------------------------------------------

    def state_key(self) -> Tuple:
        """A hashable snapshot: channel tokens plus relative completion times.

        Two equal keys at different wall-clock times witness periodicity.
        """
        relative = tuple(sorted((end - self.now, actor) for end, actor in self._ongoing))
        token_state = tuple(self.tokens[e.name] for e in self.graph.edges)
        return (token_state, relative)


@dataclass
class SimulatedThroughput:
    """Measured periodic behaviour of a self-timed execution."""

    #: Length of the periodic phase (time units per period).
    period: Fraction
    #: Firings of each actor within one period.
    firings_per_period: Dict[str, int]
    #: Time at which the periodic phase was first entered.
    transient: Fraction
    #: Start-ordinal window of the last observed period, as
    #: (starts at window open, starts at window close) per actor.
    #: Present only when the exploration recorded bindings.
    start_window: Optional[Tuple[Dict[str, int], Dict[str, int]]] = None
    #: Binding back-pointers of the whole exploration (see
    #: :attr:`SelfTimedSimulation.bindings`).
    bindings: Optional[Dict[Tuple[str, int], Optional[Tuple[str, int, str]]]] = None

    @property
    def per_actor(self) -> Dict[str, Fraction]:
        """Asymptotic firing rate of each actor (firings per time unit)."""
        return {
            a: Fraction(n, 1) / self.period for a, n in self.firings_per_period.items()
        }


def simulation_throughput(
    graph: SDFGraph, max_states: int = 200_000, deadline=None, witness: bool = False
) -> SimulatedThroughput:
    """Throughput by explicit state-space exploration.

    Runs the self-timed execution, snapshotting the state after every
    event, until a state recurs; the rates over the recurrence window are
    the exact asymptotic throughput.  Raises :class:`DeadlockError` for
    deadlocked graphs and :class:`ConvergenceError` when no recurrence
    shows up within ``max_states`` events (e.g. unbounded token build-up
    in a non-strongly-connected graph).

    ``deadline`` (a :class:`repro.analysis.deadline.Deadline`) is polled
    once per event; on expiry :class:`repro.errors.AnalysisTimeout`
    reports how many events and states were explored.  The input graph
    is never mutated, so a timed-out exploration can simply be re-run.
    """
    # Register the checkpoint before building the simulation, so even a
    # timeout raised from the constructor's first firings is attributed.
    progress = (
        deadline.checkpoint(
            "state-space-exploration",
            {"events": 0, "max_states": max_states, "states_seen": 1},
        )
        if deadline is not None
        else None
    )
    sim = SelfTimedSimulation(graph, deadline=deadline, record_bindings=witness)

    def snapshot():
        starts = dict(sim.start_counts) if witness else None
        return (sim.now, dict(sim.firings), starts)

    seen: Dict[Tuple, Tuple] = {}
    seen[sim.state_key()] = snapshot()
    for event in range(max_states):
        if deadline is not None:
            progress["events"] = event
            progress["states_seen"] = len(seen)
            deadline.check()
        if sim.is_deadlocked:
            raise DeadlockError(
                f"self-timed execution of {graph.name!r} deadlocked at time {sim.now}"
            )
        sim.step()
        key = sim.state_key()
        if key in seen:
            then, counts_then, starts_then = seen[key]
            period = sim.now - then
            if period <= 0:
                raise ConvergenceError(
                    "state recurred without time progress; "
                    "zero-execution-time cycle suspected"
                )
            firings = {
                a: sim.firings[a] - counts_then[a] for a in graph.actor_names
            }
            return SimulatedThroughput(
                period=period,
                firings_per_period=firings,
                transient=then,
                start_window=(
                    (starts_then, dict(sim.start_counts)) if witness else None
                ),
                bindings=sim.bindings,
            )
        seen[key] = snapshot()
    raise ConvergenceError(
        f"no recurrent state within {max_states} events; state space too large "
        "or token build-up unbounded (graph not strongly connected?)"
    )


def binding_witness(
    graph: SDFGraph,
    result: SimulatedThroughput,
    repetitions: Dict[str, int],
) -> Tuple[Optional[List[WitnessArc]], Optional[str]]:
    """Extract a critical-cycle witness from recorded binding chains.

    In the periodic phase every firing's start time equals its binding
    producer's completion time, so binding chains are *tight*: any cycle
    they close has mean exactly the iteration period.  Working on
    signatures ``(actor, start ordinal mod Δ_actor)`` — which the
    periodic regime maps onto themselves — one recorded period suffices:
    follow each signature to its binding predecessor's signature and the
    walk must close a cycle within ``ΣΔ`` steps.  Per-arc transit is the
    iteration distance ``ι(consumer) − ι(producer)`` with
    ``ι(a, n) = n // γ(a)``; around the cycle these telescope to
    (periods crossed) × (iterations per period), giving cycle mean
    ``period / q = λ``.

    Returns ``(arcs, None)`` on success — arcs chain source→target in
    data-flow direction, each weighted with its source's execution time
    and keyed by the channel that carried the binding token — or
    ``(None, reason)`` when no witness can be extracted (bindings not
    recorded, an actor idle in the period, actors disagreeing on
    iterations per period, or a periodic firing bound to an initial
    token).  Callers should re-verify the arcs against the graph.
    """
    if result.bindings is None or result.start_window is None:
        return None, "simulation ran without binding recording"
    delta = result.firings_per_period
    for actor, fires in delta.items():
        if fires <= 0:
            return None, f"actor {actor!r} never fires in the periodic phase"
    iteration_counts = {
        actor: fires // repetitions[actor]
        for actor, fires in delta.items()
        if fires % repetitions[actor] == 0
    }
    if len(iteration_counts) < len(delta) or len(set(iteration_counts.values())) != 1:
        return None, (
            "periodic phase does not cover a whole number of iterations "
            "uniformly across actors (graph not strongly connected?)"
        )
    starts_then, starts_now = result.start_window
    for actor, fires in delta.items():
        if starts_now[actor] - starts_then[actor] != fires:
            return None, f"start/completion window mismatch for actor {actor!r}"

    # One binding pointer per signature, read off the last period.
    successors: Dict[Tuple[str, int], Tuple[Tuple[str, int], int, str]] = {}
    for actor in delta:
        for n in range(starts_then[actor], starts_now[actor]):
            binding = result.bindings.get((actor, n))
            if binding is None:
                return None, (
                    f"firing {n} of {actor!r} bound to an initial token "
                    "inside the periodic phase"
                )
            producer, m, channel = binding
            distance = n // repetitions[actor] - m // repetitions[producer]
            successors[(actor, n % delta[actor])] = (
                (producer, m % delta[producer]),
                distance,
                channel,
            )

    # Walk predecessors from a deterministic start until a signature
    # repeats; the tail of the walk is the witness cycle.
    position: Dict[Tuple[str, int], int] = {}
    path: List[Tuple[Tuple[str, int], Tuple[str, int], int, str]] = []
    signature = min(successors)
    while signature not in position:
        position[signature] = len(path)
        entry = successors.get(signature)
        if entry is None:
            return None, "binding chain left the periodic window"
        predecessor, distance, channel = entry
        path.append((signature, predecessor, distance, channel))
        signature = predecessor

    arcs = [
        WitnessArc(
            source=predecessor[0],
            target=consumer[0],
            weight=Fraction(graph.execution_time(predecessor[0])),
            tokens=distance,
            key=channel,
        )
        for consumer, predecessor, distance, channel in path[position[signature]:]
    ]
    arcs.reverse()
    return arcs, None
