"""Model linting: one call that tells you everything wrong with a graph.

Structural rules are enforced eagerly by the builders; the checks here
are the *semantic* ones an analysis would trip over later, collected
into a single report so a design flow can fail fast with a complete
diagnosis instead of one error at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import DeadlockError, InconsistentGraphError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.schedule import sequential_schedule


@dataclass(frozen=True)
class Finding:
    """One diagnosis: severity ('error' or 'warning'), code, message."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All findings for a graph; errors make analyses fail, warnings are
    smells (dead subgraphs, unbounded actors, zero-time cycles)."""

    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, code: str, message: str) -> None:
        self.findings.append(Finding(severity, code, message))

    def __str__(self) -> str:
        if not self.findings:
            return "graph is clean"
        return "\n".join(str(f) for f in self.findings)


def validate_graph(graph: SDFGraph) -> ValidationReport:
    """Run every semantic check and return the combined report.

    Checks, in dependency order:

    * ``empty``: the graph has no actors (warning);
    * ``disconnected``: multiple weakly connected components (warning —
      legal, but usually a modelling accident);
    * ``inconsistent``: the balance equations have no solution (error);
    * ``deadlock``: no iteration can complete (error);
    * ``unbounded-actor``: an actor without incoming edges fires
      unboundedly often under self-timed execution (warning; symbolic
      analyses reject such graphs);
    * ``zero-time-cycle``: a cycle of zero-execution-time actors with
      tokens spins infinitely fast (warning; simulation rejects it);
    * ``never-fires``: an actor with repetition entry 0 cannot occur —
      repetition entries are positive by construction, so instead we
      flag actors whose channels can never all fill (covered by the
      deadlock check) — and ``unread-tokens``: initial tokens on a
      channel whose consumer never needs them all in one iteration
      (warning: often an off-by-one in a model).
    """
    report = ValidationReport()
    if graph.actor_count() == 0:
        report.add("warning", "empty", "graph has no actors")
        return report

    if not graph.is_connected():
        count = len(graph.undirected_components())
        report.add(
            "warning",
            "disconnected",
            f"graph has {count} weakly connected components",
        )

    try:
        gamma = repetition_vector(graph)
    except InconsistentGraphError as error:
        report.add("error", "inconsistent", str(error))
        return report

    try:
        sequential_schedule(graph, repetitions=dict(gamma))
    except DeadlockError as error:
        report.add("error", "deadlock", str(error))

    for actor in graph.actor_names:
        if not graph.in_edges(actor):
            report.add(
                "warning",
                "unbounded-actor",
                f"actor {actor!r} has no incoming edges; add a one-token "
                "self-edge to bound its self-timed firing rate",
            )

    cycle = _zero_time_token_cycle(graph)
    if cycle:
        report.add(
            "warning",
            "zero-time-cycle",
            "cycle through "
            + " -> ".join(cycle)
            + " has tokens but zero total execution time; self-timed "
            "execution spins infinitely fast on it",
        )

    for edge in graph.edges:
        consumed_per_iteration = gamma[edge.target] * edge.consumption
        if edge.tokens > consumed_per_iteration:
            report.add(
                "warning",
                "unread-tokens",
                f"channel {edge.name!r} holds {edge.tokens} initial tokens "
                f"but one iteration consumes only {consumed_per_iteration}; "
                "the surplus is dead weight (or the delay is misplaced)",
            )
    return report


def _zero_time_token_cycle(graph: SDFGraph) -> Optional[List[str]]:
    """A cycle of zero-time actors whose edges all lie between them and
    carry at least one token somewhere (so it can actually spin)."""
    zero_actors = {a for a in graph.actor_names if graph.execution_time(a) == 0}
    if not zero_actors:
        return None
    from repro.mcm.graphlib import RatioGraph

    sub = RatioGraph()
    for actor in zero_actors:
        sub.add_node(actor)
    for edge in graph.edges:
        if edge.source in zero_actors and edge.target in zero_actors:
            sub.add_edge(edge.source, edge.target, 0, edge.tokens)
    for scc in sub.nontrivial_sccs():
        # Strong connectivity means any internal token edge closes a
        # spinning cycle through it.
        if any(e.transit > 0 for e in scc.edges):
            return [str(node) for node in scc.nodes]
    return None
