"""Model linting: one call that tells you everything wrong with a graph.

This module is the historical surface of the linter; the engine behind
it now lives in :mod:`repro.lint` (rule registry, structured
diagnostics, SARIF/JSON output, caching, configuration).
:func:`validate_graph` remains as the stable convenience API: it runs
every registered SDF rule and returns a flat :class:`ValidationReport`
of ``(severity, code, message)`` findings.

Unlike the pre-engine implementation, an inconsistent graph no longer
short-circuits the pass: rate-independent rules (unbounded actors,
zero-token self-loops, zero-time cycles, connectivity) still run and
report, so a broken model gets a complete diagnosis in one shot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class Finding:
    """One diagnosis: severity ('error' or 'warning'), code, message."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


@dataclass
class ValidationReport:
    """All findings for a graph; errors make analyses fail, warnings are
    smells (dead subgraphs, unbounded actors, zero-time cycles)."""

    findings: List[Finding] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, severity: str, code: str, message: str) -> None:
        self.findings.append(Finding(severity, code, message))

    def __str__(self) -> str:
        if not self.findings:
            return "graph is clean"
        return "\n".join(str(f) for f in self.findings)


def validate_graph(graph: SDFGraph) -> ValidationReport:
    """Run every registered SDF lint rule and return the flat report.

    This is a thin adapter over :func:`repro.lint.run_lint` (which is
    cached, configurable and emits structured diagnostics — use it
    directly for anything beyond a quick check).  Codes and severities
    are those of the rule registry; the full catalogue is documented in
    ``docs/lint.md``.
    """
    from repro.lint.engine import run_lint

    report = ValidationReport()
    for diagnostic in run_lint(graph).findings:
        report.add(diagnostic.severity, diagnostic.code, diagnostic.message)
    return report
