"""Admissible sequential schedules (PASS) and liveness.

A *periodic admissible sequential schedule* fires every actor exactly
γ(a) times without ever driving a channel negative; one exists iff the
graph is consistent and deadlock-free (Lee & Messerschmitt, 1987).  The
construction below is the classical demand-free simulation: repeatedly
fire any enabled actor that still has outstanding firings.  Any greedy
order works — if the greedy run gets stuck, *every* order gets stuck.

The symbolic HSDF conversion (Algorithm 1 of the paper, line 4) uses an
arbitrary such schedule.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from repro.errors import DeadlockError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def sequential_schedule(
    graph: SDFGraph, repetitions: Optional[Dict[str, int]] = None
) -> List[str]:
    """A sequential schedule for one iteration, as a list of actor names.

    ``repetitions`` defaults to the repetition vector; passing a multiple
    of it yields a multi-iteration schedule.  Raises
    :class:`DeadlockError` (with the blocked firing counts) when no
    admissible schedule exists.
    """
    if repetitions is None:
        repetitions = repetition_vector(graph)
    remaining = dict(repetitions)
    tokens = {e.name: e.tokens for e in graph.edges}
    schedule: List[str] = []
    total = sum(remaining.values())

    def enabled(actor: str) -> bool:
        if remaining[actor] <= 0:
            return False
        return all(tokens[e.name] >= e.consumption for e in graph.in_edges(actor))

    # Worklist of candidate actors; an actor re-enters when a predecessor
    # fires.  Deque order makes the schedule deterministic.
    queue = deque(graph.actor_names)
    queued = set(queue)
    while queue:
        actor = queue.popleft()
        queued.discard(actor)
        fired_any = False
        # Fire as many times in a row as currently possible: fewer queue
        # round-trips, and still an admissible order.
        while enabled(actor):
            for e in graph.in_edges(actor):
                tokens[e.name] -= e.consumption
            for e in graph.out_edges(actor):
                tokens[e.name] += e.production
            remaining[actor] -= 1
            schedule.append(actor)
            fired_any = True
        if fired_any:
            for e in graph.out_edges(actor):
                target = e.target
                if remaining[target] > 0 and target not in queued:
                    queue.append(target)
                    queued.add(target)
            if remaining[actor] > 0 and actor not in queued:
                queue.append(actor)
                queued.add(actor)

    if len(schedule) != total:
        blocked = {a: r for a, r in remaining.items() if r > 0}
        raise DeadlockError(
            f"graph {graph.name!r} deadlocks: "
            f"{total - len(schedule)} of {total} firings could not be scheduled "
            f"(blocked actors: {sorted(blocked)})",
            blocked=blocked,
        )
    return schedule


def is_live(graph: SDFGraph) -> bool:
    """True iff the graph is consistent and can complete one iteration.

    Completing a single iteration returns the token distribution to its
    initial state, so one completable iteration implies unbounded
    deadlock-free execution.
    """
    try:
        sequential_schedule(graph)
    except DeadlockError:
        return False
    return True
