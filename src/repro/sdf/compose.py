"""Graph composition: building systems out of reusable SDF components.

Design flows assemble applications from library blocks; these helpers
keep that assembly exact and name-safe:

* :func:`renamed` — prefix every actor (and edge) name;
* :func:`disjoint_union` — side-by-side composition (independent
  components in one graph);
* :func:`serial` — connect an output actor of one graph to an input
  actor of another with chosen rates;
* :func:`feedback` — add a back channel between two actors of a graph.

All of them return fresh graphs; the inputs are never mutated.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.errors import ValidationError
from repro.sdf.graph import SDFGraph


def renamed(graph: SDFGraph, prefix: str, name: Optional[str] = None) -> SDFGraph:
    """A copy with every actor and edge name prefixed by ``prefix``."""
    result = SDFGraph(name or f"{prefix}{graph.name}")
    for actor in graph.actors:
        result.add_actor(f"{prefix}{actor.name}", actor.execution_time)
    for edge in graph.edges:
        result.add_edge(
            f"{prefix}{edge.source}",
            f"{prefix}{edge.target}",
            edge.production,
            edge.consumption,
            edge.tokens,
            name=f"{prefix}{edge.name}",
        )
    return result


def disjoint_union(
    graphs: Iterable[SDFGraph], name: str = "union", auto_prefix: bool = True
) -> SDFGraph:
    """All graphs side by side in one graph.

    With ``auto_prefix`` each component's names get ``g<i>_`` prefixes,
    so clashing component names are fine; without it, clashes raise.
    """
    result = SDFGraph(name)
    for index, graph in enumerate(graphs):
        part = renamed(graph, f"g{index}_") if auto_prefix else graph
        for actor in part.actors:
            result.add_actor(actor.name, actor.execution_time)
        for edge in part.edges:
            result.add_edge(
                edge.source,
                edge.target,
                edge.production,
                edge.consumption,
                edge.tokens,
                name=edge.name if auto_prefix else None,
            )
    return result


def serial(
    upstream: SDFGraph,
    downstream: SDFGraph,
    connect: Tuple[str, str],
    production: int = 1,
    consumption: int = 1,
    tokens: int = 0,
    name: Optional[str] = None,
) -> SDFGraph:
    """Chain two graphs: ``connect=(producer, consumer)`` adds a channel
    from ``producer`` (in ``upstream``, prefixed ``u_``) to ``consumer``
    (in ``downstream``, prefixed ``d_``).

    The caller chooses the rates; consistency of the composite depends
    on them and is *checked*, so a rate mismatch fails loudly here
    rather than deep inside an analysis.
    """
    producer, consumer = connect
    upstream.actor(producer)
    downstream.actor(consumer)
    result = SDFGraph(name or f"{upstream.name}>>{downstream.name}")
    for part, prefix in ((upstream, "u_"), (downstream, "d_")):
        for actor in part.actors:
            result.add_actor(f"{prefix}{actor.name}", actor.execution_time)
        for edge in part.edges:
            result.add_edge(
                f"{prefix}{edge.source}",
                f"{prefix}{edge.target}",
                edge.production,
                edge.consumption,
                edge.tokens,
                name=f"{prefix}{edge.name}",
            )
    result.add_edge(
        f"u_{producer}",
        f"d_{consumer}",
        production=production,
        consumption=consumption,
        tokens=tokens,
        name="link",
    )
    from repro.sdf.repetition import is_consistent

    if not is_consistent(result):
        raise ValidationError(
            f"serial composition with rates {production}:{consumption} is "
            "inconsistent; pick rates matching the component repetition vectors"
        )
    return result


def feedback(
    graph: SDFGraph,
    source: str,
    target: str,
    production: int = 1,
    consumption: int = 1,
    tokens: int = 1,
    name: Optional[str] = None,
) -> SDFGraph:
    """A copy of ``graph`` with one extra (typically token-carrying)
    back channel — the standard way to close a pipeline into a loop or
    to model a frame buffer; consistency is checked like in
    :func:`serial`."""
    graph.actor(source)
    graph.actor(target)
    result = graph.copy(name or f"{graph.name}+fb")
    result.add_edge(
        source, target, production=production, consumption=consumption, tokens=tokens
    )
    from repro.sdf.repetition import is_consistent

    if not is_consistent(result):
        raise ValidationError(
            f"feedback with rates {production}:{consumption} is inconsistent"
        )
    return result
