"""Symbolic execution of one SDF iteration over max-plus time stamps.

This is the engine behind Algorithm 1 of the paper (Section 6).  Every
initial token ``t_k`` starts with the symbolic stamp ``ī_k`` (the k-th
max-plus unit vector).  Executing a sequential schedule propagates stamps:
a firing that consumes stamps ``ḡ_1 … ḡ_n`` starts at their pointwise
maximum and finishes (and stamps all produced tokens) ``T(a)`` later.
After one full iteration the channels hold their initial token counts
again and the final stamp of slot ``k`` is a vector ``[g_{j,k}]_j`` with

    t'_k = max_j ( t_j + g_{j,k} ),

i.e. one row of the max-plus *iteration matrix* M with ``M[k][j] = g_{j,k}``
(so new stamps are ``M ⊗ old``).  The matrix drives both the compact
HSDF construction (:mod:`repro.core.hsdf_conversion`) and exact
throughput/latency analysis (:mod:`repro.analysis`).

Figure 3 of the paper is reproduced verbatim in the test suite: the
two-firing walk of the left actor produces the stamps
``max(t1+3, t2+3)`` and ``max(t1+6, t2+6, t3+3)``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import UnboundedThroughputError, ValidationError
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.obs.provenance import record_step
from repro.sdf.graph import SDFGraph
from repro.sdf.schedule import sequential_schedule


@dataclass(frozen=True)
class TokenId:
    """Identity of an initial token: its channel and FIFO position."""

    edge: str
    position: int

    def __str__(self) -> str:
        return f"{self.edge}[{self.position}]"


@dataclass
class SymbolicIteration:
    """Outcome of symbolically executing one iteration.

    ``matrix`` maps old initial-token stamps to new ones (``new = M ⊗ old``);
    ``token_ids`` fixes the coordinate order; ``firing_completions`` holds
    the symbolic completion stamp of each firing ``(actor, i)`` in the
    iteration, and ``firing_starts`` the corresponding start stamps.
    """

    matrix: MaxPlusMatrix
    token_ids: Tuple[TokenId, ...]
    schedule: List[str]
    firing_starts: Dict[Tuple[str, int], MaxPlusVector]
    firing_completions: Dict[Tuple[str, int], MaxPlusVector]

    @property
    def token_count(self) -> int:
        return len(self.token_ids)

    def token_index(self, token: TokenId) -> int:
        return self.token_ids.index(token)


def initial_token_ids(graph: SDFGraph) -> Tuple[TokenId, ...]:
    """Enumerate the initial tokens of ``graph`` in canonical order
    (edge insertion order, FIFO position within each channel)."""
    ids: List[TokenId] = []
    for edge in graph.edges:
        for position in range(edge.tokens):
            ids.append(TokenId(edge.name, position))
    return tuple(ids)


def symbolic_iteration(
    graph: SDFGraph, schedule: Optional[List[str]] = None, deadline=None
) -> SymbolicIteration:
    """Execute one iteration of ``graph`` symbolically (Algorithm 1, lines 2-11).

    ``schedule`` defaults to an arbitrary admissible sequential schedule;
    any admissible schedule yields the same matrix (token FIFO positions
    pin every dependency).  Raises

    * :class:`DeadlockError` (via scheduling) when no iteration completes,
    * :class:`UnboundedThroughputError` when an actor has no incoming
      edges (its firing times would be unconstrained).

    One iteration is Σγ(a) firings, so graphs with large repetition
    vectors make even the symbolic walk slow; ``deadline`` (a
    :class:`repro.analysis.deadline.Deadline`) is polled once per firing
    and :class:`repro.errors.AnalysisTimeout` reports the firing reached.
    """
    for actor in graph.actor_names:
        if not graph.in_edges(actor):
            raise UnboundedThroughputError(
                f"actor {actor!r} has no incoming edges; its firings are "
                "unconstrained within an iteration. Add a self-edge with one "
                "initial token (see SDFGraph.with_self_loops) to make the "
                "graph token-bound",
                actor=actor,
            )
    if schedule is None:
        schedule = sequential_schedule(graph)

    token_ids = initial_token_ids(graph)
    size = len(token_ids)
    channels: Dict[str, deque] = {e.name: deque() for e in graph.edges}
    for index, token in enumerate(token_ids):
        channels[token.edge].append(MaxPlusVector.unit(size, index))

    firing_starts: Dict[Tuple[str, int], MaxPlusVector] = {}
    firing_completions: Dict[Tuple[str, int], MaxPlusVector] = {}
    firing_counts: Dict[str, int] = {a: 0 for a in graph.actor_names}

    progress = (
        deadline.checkpoint(
            "symbolic-iteration", {"firing": 0, "firings_total": len(schedule)}
        )
        if deadline is not None
        else None
    )
    for firing_index, actor in enumerate(schedule):
        if deadline is not None:
            progress["firing"] = firing_index
            deadline.check()
        consumed: List[MaxPlusVector] = []
        for edge in graph.in_edges(actor):
            channel = channels[edge.name]
            if len(channel) < edge.consumption:
                raise ValidationError(
                    f"schedule is not admissible: firing {actor!r} needs "
                    f"{edge.consumption} tokens on {edge.name!r}, "
                    f"found {len(channel)}"
                )
            for _ in range(edge.consumption):
                consumed.append(channel.popleft())
        start = consumed[0]
        for stamp in consumed[1:]:
            start = start.max_with(stamp)
        finish = start.add_scalar(graph.execution_time(actor))
        for edge in graph.out_edges(actor):
            for _ in range(edge.production):
                channels[edge.name].append(finish)
        index = firing_counts[actor]
        firing_starts[(actor, index)] = start
        firing_completions[(actor, index)] = finish
        firing_counts[actor] = index + 1

    rows: List[MaxPlusVector] = []
    for edge in graph.edges:
        channel = channels[edge.name]
        if len(channel) != edge.tokens:
            raise ValidationError(
                f"schedule was not a whole iteration: channel {edge.name!r} "
                f"ended with {len(channel)} tokens, expected {edge.tokens}"
            )
        rows.extend(channel)

    matrix = MaxPlusMatrix([row.entries for row in rows]) if size else MaxPlusMatrix([])
    record_step(
        "symbolic-conversion",
        before=graph,
        matrix_size=size,
        firings=len(schedule),
    )
    return SymbolicIteration(
        matrix=matrix,
        token_ids=token_ids,
        schedule=list(schedule),
        firing_starts=firing_starts,
        firing_completions=firing_completions,
    )
