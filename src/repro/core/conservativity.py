"""Executable conservativity checks (Section 5 of the paper).

Proposition 1 gives a *syntactic* dominance criterion between two timed
SDF graphs: if graph ``B`` contains (an image of) every actor of ``A``
with at-least-as-large execution times, and for every edge of ``A`` a
matching edge with at most as many initial tokens, then ``B`` is slower —
its throughput lower-bounds ``A``'s.  :func:`dominates` checks exactly
these conditions.

Theorem 1 composes Propositions 1-4: the N-fold unfolding of the abstract
graph dominates the original graph under the phase map σ(a) = α(a)_{I(a)},
so τ(a) ≥ τ'(α(a))/N.  :func:`verify_abstraction` performs the entire
chain mechanically — the syntactic check *and* the numeric throughput
comparison — turning the paper's proof sketch into a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.abstraction import Abstraction, abstract_graph
from repro.core.unfolding import phase_name, unfold
from repro.sdf.graph import SDFGraph


def dominates(
    conservative: SDFGraph,
    original: SDFGraph,
    actor_map: Optional[Dict[str, str]] = None,
    explain: bool = False,
):
    """Does ``conservative`` dominate ``original`` per Proposition 1?

    ``actor_map`` maps each actor of ``original`` to its image in
    ``conservative`` (default: identity on names).  Dominance requires:

    * every original actor has an image, and images are distinct;
    * image execution times are at least the original ones;
    * for every original edge ``(a, b, p, c, d)`` there is an edge
      ``(σ(a), σ(b), p, c, d')`` with ``d' ≤ d``.

    With ``explain=True`` returns ``(bool, [reasons])``; otherwise a bool.
    A ``True`` answer certifies τ_original(a) ≥ τ_conservative(σ(a)) for
    every actor ``a``.
    """
    if actor_map is None:
        actor_map = {a: a for a in original.actor_names}

    reasons: List[str] = []
    images = {}
    for actor in original.actor_names:
        image = actor_map.get(actor)
        if image is None:
            reasons.append(f"actor {actor!r} has no image")
            continue
        if not conservative.has_actor(image):
            reasons.append(f"image {image!r} of {actor!r} is not in the graph")
            continue
        if image in images:
            reasons.append(
                f"actors {images[image]!r} and {actor!r} share image {image!r} "
                "(the embedding must be injective)"
            )
            continue
        images[image] = actor
        if conservative.execution_time(image) < original.execution_time(actor):
            reasons.append(
                f"image {image!r} is faster than {actor!r} "
                f"({conservative.execution_time(image)} < "
                f"{original.execution_time(actor)})"
            )

    for edge in original.edges:
        src = actor_map.get(edge.source)
        dst = actor_map.get(edge.target)
        if src is None or dst is None:
            continue  # already reported above
        candidates = [
            e
            for e in conservative.out_edges(src)
            if e.target == dst
            and e.production == edge.production
            and e.consumption == edge.consumption
            and e.tokens <= edge.tokens
        ]
        if not candidates:
            reasons.append(
                f"edge {edge.name} ({edge.source}->{edge.target}, d={edge.tokens}) "
                f"has no counterpart {src}->{dst} with at most {edge.tokens} tokens"
            )

    ok = not reasons
    return (ok, reasons) if explain else ok


def sigma_map(abstraction: Abstraction) -> Dict[str, str]:
    """The embedding σ of Section 5: actor ``a`` → unfolded phase copy
    ``α(a)@I(a)``."""
    return {
        actor: phase_name(abstraction.mapping[actor], abstraction.index[actor])
        for actor in abstraction.mapping
    }


@dataclass
class AbstractionCertificate:
    """Everything :func:`verify_abstraction` established.

    The certificate carries the abstract graph, its unfolding, the
    embedding σ, the syntactic dominance verdict, and (when throughput
    was computed) the exact cycle times on both sides.
    """

    abstract: SDFGraph
    unfolded: Optional[SDFGraph]
    sigma: Dict[str, str]
    dominance: bool
    dominance_reasons: List[str]
    original_cycle_time: Optional[Fraction] = None
    bound_cycle_time: Optional[Fraction] = None
    #: A valid abstraction may still deadlock (delays shuffled between
    #: phases); Theorem 1 then holds vacuously — the bound is zero
    #: throughput, conservative for any original behaviour.
    abstract_deadlocked: bool = False

    @property
    def conservative(self) -> Optional[bool]:
        """True iff the abstract bound is indeed no faster than reality
        (``None`` when throughput was not evaluated)."""
        if self.abstract_deadlocked:
            return True
        if self.original_cycle_time is None or self.bound_cycle_time is None:
            return None
        return self.bound_cycle_time >= self.original_cycle_time

    @property
    def relative_error(self) -> Optional[Fraction]:
        """(bound − exact) / exact on cycle times; 0 means the abstraction
        is lossless for throughput (``None`` for a deadlocked, i.e.
        infinitely pessimistic, bound)."""
        if not self.conservative and self.conservative is not None:
            raise AssertionError("bound is not conservative; no error to report")
        if self.abstract_deadlocked:
            return None
        if self.original_cycle_time in (None, 0) or self.bound_cycle_time is None:
            return None
        return (
            self.bound_cycle_time - self.original_cycle_time
        ) / self.original_cycle_time


def verify_abstraction(
    graph: SDFGraph,
    abstraction: Abstraction,
    check_throughput: bool = True,
    check_dominance: bool = True,
) -> AbstractionCertificate:
    """Run the full Section-5 argument on a concrete graph and abstraction.

    1. Build the abstract graph (Definition 4) and its N-fold unfolding
       (Definition 5).
    2. Check that the unfolding dominates the original graph under σ
       (Propositions 3 and 4 feeding Proposition 1).  The check runs on
       the *unpruned* abstract graph: every original edge has its exact
       phase-pair counterpart there (with equal delay — the content of
       Proposition 4), whereas pruning merges parallel edges of
       different delays onto different phase pairs.
    3. Optionally compare exact cycle times: the abstract graph's
       iteration period, scaled by N (Proposition 2 / Theorem 1), must be
       conservative.  This uses the *pruned* abstract graph — pruning
       preserves throughput and keeps the analysis small even when a
       regular graph maps thousands of edges onto one abstract pair.

    ``check_dominance=False`` skips step 2 (useful for very large graphs
    whose unpruned unfolding would hold |D|·N edges; the counterpart
    property is exact by construction and covered by the test suite).

    Raises :class:`AssertionError` if any step fails — by Theorem 1, a
    failure indicates a bug, not a property of the input.
    """
    from repro.analysis.throughput import throughput  # local: avoid cycle
    from repro.core.pruning import prune_redundant_edges

    raw_abstract = abstract_graph(graph, abstraction)
    abstract = prune_redundant_edges(raw_abstract, name=f"{graph.name}-abstract")
    n = abstraction.phase_count
    sigma = sigma_map(abstraction)

    unfolded = None
    reasons: List[str] = []
    if check_dominance:
        unfolded = unfold(raw_abstract, n)
        ok, reasons = dominates(unfolded, graph, sigma, explain=True)
        if not ok:
            raise AssertionError(
                "unfolded abstract graph does not dominate the original: "
                + "; ".join(reasons)
            )

    certificate = AbstractionCertificate(
        abstract=abstract,
        unfolded=unfolded,
        sigma=sigma,
        dominance=check_dominance,
        dominance_reasons=reasons,
    )
    if check_throughput:
        from repro.errors import DeadlockError

        original = throughput(graph)
        try:
            bound = throughput(abstract)
        except DeadlockError:
            certificate.original_cycle_time = original.cycle_time
            certificate.abstract_deadlocked = True
            return certificate
        certificate.original_cycle_time = original.cycle_time
        # Theorem 1: τ(a) ≥ τ'(α(a))/N.  With homogeneous graphs
        # (τ = 1/cycle_time on both sides) this reads
        # cycle_time(original) ≤ N · cycle_time(abstract).
        certificate.bound_cycle_time = (
            None if bound.cycle_time is None else n * bound.cycle_time
        )
        if not certificate.conservative:
            raise AssertionError(
                f"abstraction bound violated Theorem 1: original cycle time "
                f"{certificate.original_cycle_time}, bound "
                f"{certificate.bound_cycle_time}"
            )
    return certificate
