"""The novel SDF-to-HSDF conversion (Section 6, Algorithm 1 and Figure 4).

The iteration matrix ``M`` from :func:`repro.core.symbolic.symbolic_iteration`
states that the next availability time of initial-token slot ``k`` is
``t'_k = max_j (t_j + g_{j,k})``.  The conversion realises exactly these
pairwise minimum-distance constraints as an HSDF graph shaped like
Figure 4 of the paper:

* one *matrix actor* per finite coefficient ``g_{j,k}``, with execution
  time ``g_{j,k}``;
* a zero-time *demultiplexer* actor per source token ``j`` that fans the
  token out to the matrix actors consuming it — elided when at most one
  matrix actor consumes it;
* a zero-time *multiplexer* actor per produced token ``k`` that
  synchronises the matrix actors contributing to ``t'_k`` — elided when
  only one contributes;
* one channel with a single initial token closing each token's loop.

The result therefore has at most ``N(N+2)`` actors, ``N(2N+1)`` edges and
``N`` initial tokens for ``N`` initial tokens in the original graph —
regardless of how large the repetition vector is.  It preserves the
iteration timing (same max-plus matrix, hence the same throughput and
latency) but not the per-firing identity of the traditional conversion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix
from repro.obs.provenance import current_recorder, record_step
from repro.sdf.graph import SDFGraph
from repro.core.symbolic import SymbolicIteration, TokenId, symbolic_iteration


def matrix_actor_name(j: int, k: int) -> str:
    """Matrix actor for coefficient g_{j,k} (source token j, produced token k)."""
    return f"g_{j}_{k}"


def demux_name(j: int) -> str:
    return f"dmx_{j}"


def mux_name(k: int) -> str:
    return f"mux_{k}"


@dataclass
class HsdfConversion:
    """Result of the compact conversion.

    ``graph`` is the homogeneous SDF graph; ``matrix`` the iteration
    matrix it realises; ``token_ids`` the coordinate order;
    ``token_source`` maps each token index to the actor whose completion
    produces ``t'_k`` (useful as the "output actor" hook the paper
    mentions); ``token_entry`` maps each token index to the actor that
    consumes the token's availability, when any does.
    """

    graph: SDFGraph
    matrix: MaxPlusMatrix
    token_ids: Tuple[TokenId, ...]
    token_source: Dict[int, str]
    token_entry: Dict[int, str]
    matrix_actors: int = 0
    mux_actors: int = 0
    demux_actors: int = 0
    observer_actors: int = 0
    #: Observed firing label ("actor#i") -> observer sync actor name.
    observers: Dict[str, str] = field(default_factory=dict)

    @property
    def actor_count(self) -> int:
        return self.graph.actor_count()

    @property
    def edge_count(self) -> int:
        return self.graph.edge_count()

    @property
    def token_count(self) -> int:
        return self.graph.total_tokens()

    def within_paper_bounds(self) -> bool:
        """Check the size bounds of Section 6: N(N+2) actors, N(2N+1)
        edges, N initial tokens."""
        n = len(self.token_ids)
        return (
            self.actor_count <= n * (n + 2)
            and self.edge_count <= n * (2 * n + 1)
            and self.token_count <= n
        )


def sdf_to_maxplus_matrix(
    graph: SDFGraph, schedule: Optional[List[str]] = None
) -> SymbolicIteration:
    """The max-plus iteration matrix of a consistent, live SDF graph.

    Convenience wrapper around :func:`repro.core.symbolic.symbolic_iteration`
    (the paper derives Algorithm 1 from exactly this matrix computation,
    references [7, 8]).
    """
    return symbolic_iteration(graph, schedule)


def convert_to_hsdf(
    graph: SDFGraph,
    schedule: Optional[List[str]] = None,
    elide_multiplexers: bool = True,
    iteration: Optional[SymbolicIteration] = None,
    observe: Optional[List[Tuple[str, int]]] = None,
) -> HsdfConversion:
    """Convert an SDF graph to a compact equivalent HSDF graph (Algorithm 1).

    ``elide_multiplexers=False`` keeps every multiplexer/demultiplexer
    actor even when a token has a single producer or consumer — the
    un-optimised Figure-4 structure, kept for the ablation benchmarks.

    ``observe`` lists firings of particular interest — e.g. a dedicated
    output actor — as ``(actor, firing_index)`` pairs; the paper notes
    that including such firings "is straightforward", and this does it:
    each observed firing becomes a zero-time observer actor whose
    completion in the compact graph happens exactly when the original
    firing completes (one coefficient actor per token it depends on).
    Observers add actors beyond the N(N+2) bound, which only covers the
    base structure.

    The input must be consistent, deadlock-free and token-bound (every
    actor transitively depends on an initial token); these are the same
    preconditions the paper's symbolic execution needs.
    """
    if iteration is None:
        iteration = symbolic_iteration(graph, schedule)
    observers = None
    if observe:
        observers = {}
        for actor, index in observe:
            key = (actor, index)
            if key not in iteration.firing_completions:
                raise ValidationError(
                    f"no firing {index} of actor {actor!r} in one iteration"
                )
            observers[f"{actor}#{index}"] = iteration.firing_completions[key]
    conversion = realise_iteration_matrix(
        iteration.matrix,
        iteration.token_ids,
        name=f"{graph.name}-compact-hsdf",
        elide_multiplexers=elide_multiplexers,
        observers=observers,
    )
    if current_recorder() is not None:
        from repro.sdf.repetition import repetition_vector

        record_step(
            "compact-hsdf-conversion",
            before=graph,
            after=conversion.graph,
            tokens=len(iteration.token_ids),
            multiplexers_elided=elide_multiplexers,
            traditional_actors=sum(repetition_vector(graph).values()),
        )
    return conversion


# devlint: ignore[provenance-hygiene] a reusable construction, not an entry point: its callers (convert_to_hsdf, the CSDF and mapping wrappers) record the step with the source model they know
def realise_iteration_matrix(
    matrix: MaxPlusMatrix,
    token_ids,
    name: str = "compact-hsdf",
    elide_multiplexers: bool = True,
    observers: Optional[Dict[str, object]] = None,
) -> HsdfConversion:
    """Realise a max-plus iteration matrix as the Figure-4 HSDF structure.

    This is the second half of Algorithm 1, factored out so that *any*
    model whose iteration admits a max-plus matrix — plain SDF, the
    cyclo-static extension in :mod:`repro.csdf`, a mapped multiprocessor
    graph — reuses the identical construction and size bounds.
    """
    n = len(token_ids)
    if matrix.nrows != n or matrix.ncols != n:
        raise ValidationError(
            f"matrix is {matrix.nrows}x{matrix.ncols} but there are {n} tokens"
        )
    if n == 0:
        raise ValidationError(
            "graph has no initial tokens; the compact conversion is undefined "
            "(and the graph cannot be live unless it is empty)"
        )

    # Finite coefficients g_{j,k}: matrix rows are produced tokens k,
    # columns are source tokens j.
    entries: Dict[Tuple[int, int], object] = {}
    for k in range(n):
        row = matrix.rows[k]
        for j in range(n):
            if row[j] != EPSILON:
                entries[(j, k)] = row[j]

    consumers: Dict[int, List[int]] = {j: [] for j in range(n)}  # j -> [k]
    producers: Dict[int, List[int]] = {k: [] for k in range(n)}  # k -> [j]
    for (j, k) in entries:
        consumers[j].append(k)
        producers[k].append(j)
    for k, js in producers.items():
        if not js:
            raise ValidationError(
                f"token {token_ids[k]} is produced without any "
                "dependency; the graph is not token-bound"
            )

    hsdf = SDFGraph(name)
    conversion = HsdfConversion(
        graph=hsdf,
        matrix=matrix,
        token_ids=tuple(token_ids),
        token_source={},
        token_entry={},
    )

    for (j, k), value in sorted(entries.items()):
        hsdf.add_actor(matrix_actor_name(j, k), _as_time(value))
        conversion.matrix_actors += 1

    # Tokens tapped by observers need their demultiplexer even if the
    # base structure would elide it (the tap is an extra consumer).
    tapped = set()
    for stamp in (observers or {}).values():
        for j in range(n):
            if stamp[j] != EPSILON:
                tapped.add(j)

    needs_demux = {
        j: bool(
            (not elide_multiplexers and consumers[j])
            or len(consumers[j]) > 1
            or j in tapped
        )
        for j in range(n)
    }
    needs_mux = {
        k: not elide_multiplexers or len(producers[k]) > 1 for k in range(n)
    }
    for j in range(n):
        if needs_demux[j]:
            hsdf.add_actor(demux_name(j), 0)
            conversion.demux_actors += 1
    for k in range(n):
        if needs_mux[k]:
            hsdf.add_actor(mux_name(k), 0)
            conversion.mux_actors += 1

    # Wire demultiplexers to matrix actors and matrix actors to multiplexers.
    for (j, k) in sorted(entries):
        if needs_demux[j]:
            hsdf.add_edge(demux_name(j), matrix_actor_name(j, k))
        if needs_mux[k]:
            hsdf.add_edge(matrix_actor_name(j, k), mux_name(k))

    # The actor whose completion time is t'_k.
    for k in range(n):
        if needs_mux[k]:
            conversion.token_source[k] = mux_name(k)
        else:
            (j,) = producers[k]
            conversion.token_source[k] = matrix_actor_name(j, k)

    # The actor that consumes the availability of old token j, if any.
    for j in range(n):
        if needs_demux[j]:
            conversion.token_entry[j] = demux_name(j)
        elif len(consumers[j]) == 1:
            (k,) = consumers[j]
            conversion.token_entry[j] = matrix_actor_name(j, k)
        # else: token j feeds nothing (its consumer was a sink); no entry.

    # Observer chains: demux -> coefficient actor (time w_j) -> sync.
    for label, stamp in (observers or {}).items():
        sync = f"obs_{label}"
        hsdf.add_actor(sync, 0)
        conversion.observer_actors += 1
        conversion.observers[label] = sync
        for j in range(n):
            if stamp[j] == EPSILON:
                continue
            coefficient = f"obsg_{label}_{j}"
            hsdf.add_actor(coefficient, _as_time(stamp[j]))
            conversion.observer_actors += 1
            hsdf.add_edge(demux_name(j), coefficient)
            hsdf.add_edge(coefficient, sync)

    # Close each token loop: the produced value of token k feeds its own
    # consumption in the next iteration, carrying the single initial token.
    for k in range(n):
        entry = conversion.token_entry.get(k)
        if entry is not None:
            hsdf.add_edge(
                conversion.token_source[k], entry, tokens=1, name=f"token_{k}"
            )

    return conversion


def _as_time(value):
    """Matrix coefficients become execution times; keep ints exact."""
    if isinstance(value, Fraction) and value.denominator == 1:
        return int(value)
    return value
