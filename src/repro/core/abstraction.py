"""The abstraction transformation (Definitions 3 and 4 of the paper).

An *abstraction* groups actors of equal repetition-vector entry into a
single abstract actor and assigns every original actor an index: the
phase at which the abstract actor's firing represents it.  The abstract
graph is dramatically smaller, and its throughput — divided by the phase
count N — is a guaranteed *conservative* bound on the original graph's
throughput (Theorem 1; see :mod:`repro.core.conservativity` for the
executable proof steps).

Construction (Definition 4), for abstraction (α, I) with N = max I + 1:

* actors: the abstract names, with execution time
  ``T'(b) = max { T(a) | α(a) = b }`` — the slowest firing represented;
* edges: each original ``(a, b, p, c, d)`` becomes
  ``(α(a), α(b), p, c, I(b) − I(a) + N·d)``.

The paper states the construction for homogeneous graphs "for clarity";
this implementation follows suit and accepts multirate graphs only with
``allow_multirate=True`` (the grouped actors must then still have equal
repetition entries, which Definition 3 demands in all cases).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import NotAbstractableError
from repro.obs.provenance import record_step
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class Abstraction:
    """An abstraction (α, I): actor grouping plus per-actor phase indices.

    ``mapping`` is α (original actor → abstract actor name); ``index`` is
    I with 0-based phases (the paper's examples are 1-based; subtract 1
    when transcribing them).
    """

    mapping: Mapping[str, str]
    index: Mapping[str, int]

    def __post_init__(self):
        object.__setattr__(self, "mapping", dict(self.mapping))
        object.__setattr__(self, "index", dict(self.index))

    @property
    def phase_count(self) -> int:
        """N = max index + 1: firings of an abstract actor per represented
        cycle (Definition 4 uses N = max I with 1-based indices)."""
        return max(self.index.values()) + 1 if self.index else 0

    def groups(self) -> Dict[str, List[str]]:
        """Abstract actor → its members, ordered by phase index."""
        result: Dict[str, List[str]] = {}
        for actor in self.mapping:
            result.setdefault(self.mapping[actor], []).append(actor)
        for members in result.values():
            members.sort(key=lambda a: self.index[a])
        return result

    def image(self, actor: str) -> Tuple[str, int]:
        """σ(a): the (abstract actor, phase) pair that mimics ``a``
        in the N-fold unfolding (Section 5 of the paper)."""
        return self.mapping[actor], self.index[actor]

    def validate(self, graph: SDFGraph) -> None:
        """Check the conditions of Definition 3 against ``graph``.

        * α and I cover exactly the graph's actors;
        * actors sharing an abstract actor have distinct indices and equal
          repetition-vector entries;
        * every zero-delay edge goes forward in index order
          (``I(a) ≤ I(b) or d > 0``).

        Raises :class:`NotAbstractableError` with the violated condition.
        """
        actors = set(graph.actor_names)
        if set(self.mapping) != actors or set(self.index) != actors:
            missing = actors - set(self.mapping) | actors - set(self.index)
            extra = (set(self.mapping) | set(self.index)) - actors
            raise NotAbstractableError(
                f"abstraction does not cover the graph exactly "
                f"(missing {sorted(missing)}, extraneous {sorted(extra)})"
            )
        for actor, phase in self.index.items():
            if not isinstance(phase, int) or phase < 0:
                raise NotAbstractableError(
                    f"index of {actor!r} must be a non-negative int, got {phase!r}"
                )
        gamma = repetition_vector(graph)
        seen: Dict[Tuple[str, int], str] = {}
        group_gamma: Dict[str, int] = {}
        for actor in graph.actor_names:
            key = (self.mapping[actor], self.index[actor])
            if key in seen:
                raise NotAbstractableError(
                    f"actors {seen[key]!r} and {actor!r} share abstract actor "
                    f"{key[0]!r} and index {key[1]} (I must be injective per group)"
                )
            seen[key] = actor
            abstract = self.mapping[actor]
            if abstract in group_gamma and group_gamma[abstract] != gamma[actor]:
                raise NotAbstractableError(
                    f"group {abstract!r} mixes repetition entries "
                    f"{group_gamma[abstract]} and {gamma[actor]} (actor {actor!r})"
                )
            group_gamma[abstract] = gamma[actor]
        for edge in graph.edges:
            if edge.tokens == 0 and self.index[edge.source] > self.index[edge.target]:
                raise NotAbstractableError(
                    f"zero-delay edge {edge.name} ({edge.source}->{edge.target}) "
                    f"goes backward in index order "
                    f"({self.index[edge.source]} > {self.index[edge.target]}); "
                    "Definition 3 requires I(a) <= I(b) or d > 0"
                )


def abstract_graph(
    graph: SDFGraph,
    abstraction: Abstraction,
    allow_multirate: bool = False,
    name: Optional[str] = None,
) -> SDFGraph:
    """The abstract timed graph (A, D, T)^{α,I} of Definition 4.

    The result's throughput conservatively estimates the original's:
    τ(a) ≥ τ'(α(a)) / N (Theorem 1).  Parallel edges produced by the
    construction can be removed with
    :func:`repro.core.pruning.prune_redundant_edges`.
    """
    if not graph.is_homogeneous() and not allow_multirate:
        raise NotAbstractableError(
            "abstract_graph is defined on homogeneous graphs (the paper "
            "presents the construction for HSDF); pass allow_multirate=True "
            "to apply the same formulas to a multirate graph"
        )
    # Pre-application lint gate: the Definition 3/4 preconditions as
    # structured diagnostics (code "abstraction-unsafe-group"), so a
    # refusal carries machine-readable evidence, not just prose.
    from repro.lint.rules import check_abstraction_safety

    diagnostics = check_abstraction_safety(graph, abstraction)
    if diagnostics:
        error = NotAbstractableError(
            "; ".join(f"[{d.code}] {d.message}" for d in diagnostics)
        )
        error.diagnostics = diagnostics
        raise error
    abstraction.validate(graph)
    n = abstraction.phase_count

    result = SDFGraph(name or f"{graph.name}-abstract")
    for abstract_name, members in abstraction.groups().items():
        slowest = max(graph.execution_time(a) for a in members)
        result.add_actor(abstract_name, slowest)

    for edge in graph.edges:
        delay = (
            abstraction.index[edge.target]
            - abstraction.index[edge.source]
            + n * edge.tokens
        )
        result.add_edge(
            abstraction.mapping[edge.source],
            abstraction.mapping[edge.target],
            edge.production,
            edge.consumption,
            delay,
        )
    record_step(
        "abstraction",
        before=graph,
        after=result,
        phase_count=n,
        groups={k: v for k, v in abstraction.groups().items() if len(v) > 1},
    )
    return result


def identity_abstraction(graph: SDFGraph) -> Abstraction:
    """The trivial abstraction: every actor its own group at phase 0.

    The abstract graph is then the original graph — useful as a sanity
    anchor in tests and as a starting point for refinement."""
    return Abstraction(
        mapping={a: a for a in graph.actor_names},
        index={a: 0 for a in graph.actor_names},
    )
