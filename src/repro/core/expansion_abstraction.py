"""Abstracting the firing expansion: the paper's two halves composed.

The abstraction of Sections 4–5 is defined on homogeneous graphs; the
traditional conversion of Section 6's baseline turns any consistent SDF
graph into one.  Composing them gives a conservative analysis for
*multirate* graphs with no manual grouping at all: expand to firing
granularity, group the γ(a) copies of each actor back into a single
abstract actor (phases = firing indices, padded to N = max γ), and
apply Theorem 1.

The result is a graph with the original actor count but homogeneous
rates and adjusted delays — a principled "rate flattening" whose
throughput bound is *guaranteed* conservative, unlike ad-hoc rate
aggregation.  How tight it is depends on how balanced the firing counts
are (dummy phases of low-γ actors cost accuracy), which the certificate
quantifies.
"""

from __future__ import annotations

from typing import Optional

from repro.core.abstraction import Abstraction
from repro.core.conservativity import AbstractionCertificate, verify_abstraction
from repro.errors import ReproError, ValidationError
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.transform import firing_name, traditional_hsdf


def expansion_abstraction(
    graph: SDFGraph, expanded: Optional[SDFGraph] = None
) -> Abstraction:
    """The canonical abstraction of ``graph``'s traditional expansion:
    every copy ``a#i`` maps back to abstract actor ``a``.

    Phases cannot simply be the firing indices: a zero-delay expansion
    edge may run from a later firing of one actor to an earlier firing
    of another (e.g. ``L#1 → R#0`` in the paper's Figure 3), violating
    Definition 3.  Instead the greedy topological assignment of
    :mod:`repro.core.grouping` is used — it respects every zero-delay
    edge by construction and keeps indices injective per group.
    """
    from repro.core.grouping import _assign_indices

    if expanded is None:
        expanded = traditional_hsdf(graph)
    gamma = repetition_vector(graph)
    mapping = {}
    for actor, count in gamma.items():
        for i in range(count):
            mapping[firing_name(actor, i)] = actor
    index = _assign_indices(expanded, mapping)
    return Abstraction(mapping=mapping, index=index)


def conservative_multirate_bound(
    graph: SDFGraph,
    check_dominance: bool = True,
) -> AbstractionCertificate:
    """A guaranteed conservative iteration-period bound for a multirate
    graph, via expand → group-copies → Theorem 1.

    The certificate's ``bound_cycle_time`` is ≥ the graph's exact
    iteration period (`original_cycle_time`, which is also computed for
    comparison — on the *expansion*, so both sides live in the same
    homogeneous world).

    Raises :class:`ValidationError` when the expansion admits no valid
    phase assignment (only possible for dead graphs, whose zero-delay
    edges form a cycle).
    """
    expanded = traditional_hsdf(graph)
    abstraction = expansion_abstraction(graph, expanded)
    try:
        abstraction.validate(expanded)
    except ReproError as error:  # NotAbstractableError and friends
        raise ValidationError(
            f"expansion of {graph.name!r} admits no copy-grouping: {error}"
        ) from error
    return verify_abstraction(
        expanded, abstraction, check_dominance=check_dominance
    )
