"""Redundant parallel-edge pruning (Section 4.2 of the paper).

The abstraction maps many original edges onto few abstract ones, often
producing parallel edges between the same actor pair.  When parallel
edges agree on rates, the one with the fewest initial tokens is the
binding constraint and the others are redundant — e.g. in Figure 2 the
abstract actor A carries self-edges with one and with three tokens, and
the three-token edge can be dropped without changing the throughput.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.provenance import record_step
from repro.sdf.graph import SDFGraph


def prune_redundant_edges(graph: SDFGraph, name: Optional[str] = None) -> SDFGraph:
    """A copy of ``graph`` keeping, per (source, target, production,
    consumption) class, only the parallel edge with the fewest tokens.

    Dominated parallel edges are implied by the kept one (same data
    dependency, more slack), so throughput and all firing times are
    preserved exactly.
    """
    keep: Dict[Tuple[str, str, int, int], object] = {}
    for edge in graph.edges:
        key = (edge.source, edge.target, edge.production, edge.consumption)
        if key not in keep or edge.tokens < keep[key].tokens:
            keep[key] = edge

    result = SDFGraph(name or f"{graph.name}-pruned")
    for actor in graph.actors:
        result.add_actor(actor.name, actor.execution_time)
    for edge in graph.edges:
        key = (edge.source, edge.target, edge.production, edge.consumption)
        if keep[key] is edge:
            result.add_edge(
                edge.source,
                edge.target,
                edge.production,
                edge.consumption,
                edge.tokens,
                name=edge.name,
            )
    record_step(
        "pruning",
        before=graph,
        after=result,
        removed_edges=graph.edge_count() - result.edge_count(),
    )
    return result


def pruned_edge_count(graph: SDFGraph) -> int:
    """How many edges :func:`prune_redundant_edges` would remove."""
    return graph.edge_count() - prune_redundant_edges(graph).edge_count()
