"""N-fold unfolding of a timed SDF graph (Definition 5 of the paper).

The unfolding splits every actor ``a`` into N phase copies ``a_0 … a_{N-1}``
such that the i-th firing of ``a`` in the original graph corresponds to
the (i div N)-th firing of copy ``a_{i mod N}``; their throughputs relate
exactly by the factor N (Proposition 2).  Section 5 uses the unfolding of
the *abstract* graph to compare it against the original graph actor by
actor (via Proposition 1), which is how Theorem 1's conservativity is
proved — and how this library *checks* it mechanically
(:func:`repro.core.conservativity.verify_abstraction`).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ValidationError
from repro.obs.provenance import record_step
from repro.sdf.graph import SDFGraph


def phase_name(actor: str, phase: int) -> str:
    """Name of the ``phase``-th copy of ``actor`` in an unfolding."""
    return f"{actor}@{phase}"


def unfold(graph: SDFGraph, n: int, name: Optional[str] = None) -> SDFGraph:
    """The N-fold unfolding unf(A, D, T, N) of Definition 5.

    * actors: ``a_i`` for every actor ``a`` and phase ``0 ≤ i < N``, all
      inheriting T(a);
    * edges: every edge ``(a, b, p, c, d)`` yields N edges: for each
      phase i, with ``j = (i + d) mod N``, an edge ``a_i → b_j`` carrying
      ``d div N`` tokens, plus one extra token when the phase wraps
      (``j < i``).
    """
    if n < 1:
        raise ValidationError(f"unfolding factor must be positive, got {n}")
    result = SDFGraph(name or f"{graph.name}-unfold{n}")
    for actor in graph.actors:
        for phase in range(n):
            result.add_actor(phase_name(actor.name, phase), actor.execution_time)
    for edge in graph.edges:
        for i in range(n):
            j = (i + edge.tokens) % n
            wrap = 1 if j < i else 0
            result.add_edge(
                phase_name(edge.source, i),
                phase_name(edge.target, j),
                edge.production,
                edge.consumption,
                edge.tokens // n + wrap,
            )
    record_step("unfolding", before=graph, after=result, factor=n)
    return result
