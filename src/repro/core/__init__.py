"""The paper's contributions: abstraction and the symbolic HSDF conversion.

* :mod:`repro.core.abstraction` / :mod:`repro.core.unfolding` /
  :mod:`repro.core.conservativity` — the graph reduction of Sections 4-5
  (Definitions 3-5, Propositions 1-4, Theorem 1);
* :mod:`repro.core.symbolic` / :mod:`repro.core.hsdf_conversion` — the
  novel SDF-to-HSDF conversion of Section 6 (Algorithm 1, Figure 4);
* :mod:`repro.core.pruning` — redundant parallel-edge removal (Section 4.2);
* :mod:`repro.core.grouping` — automatic discovery of valid abstractions
  for (almost) regular graphs.
"""

from repro.core.abstraction import Abstraction, abstract_graph
from repro.core.unfolding import unfold
from repro.core.conservativity import dominates, verify_abstraction
from repro.core.symbolic import symbolic_iteration, SymbolicIteration, TokenId
from repro.core.hsdf_conversion import convert_to_hsdf, sdf_to_maxplus_matrix, HsdfConversion
from repro.core.pruning import prune_redundant_edges
from repro.core.expansion_abstraction import (
    conservative_multirate_bound,
    expansion_abstraction,
)
from repro.core.grouping import discover_abstraction

__all__ = [
    "Abstraction",
    "abstract_graph",
    "unfold",
    "dominates",
    "verify_abstraction",
    "symbolic_iteration",
    "SymbolicIteration",
    "TokenId",
    "convert_to_hsdf",
    "sdf_to_maxplus_matrix",
    "HsdfConversion",
    "prune_redundant_edges",
    "conservative_multirate_bound",
    "expansion_abstraction",
    "discover_abstraction",
]
