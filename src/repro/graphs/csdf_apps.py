"""Cyclo-static application models.

Realistic CSDF shapes for the extension subpackage, mirroring how the
CSDF literature refines the classic SDF benchmarks:

* :func:`polyphase_cd2dat` — the CD-to-DAT converter with its first
  rate-changing stage expressed as a polyphase filter: instead of one
  actor consuming 3 and producing 2, a 3-phase actor consumes one
  sample per phase and emits on two of the three phases.  Same
  aggregate rates, finer-grained timing, smaller buffers.
* :func:`ip_frame_decoder` — a frame decoder whose parser alternates
  through a group-of-pictures pattern (one I-frame phase, ``p_frames``
  P-frame phases) with per-phase execution times; the CSDF analogue of
  the scenario model in :mod:`repro.scenarios` when the pattern is
  fixed rather than FSM-controlled.
"""

from __future__ import annotations

from repro.csdf.graph import CSDFGraph


def _self_edge(graph: CSDFGraph, actor: str) -> None:
    phases = graph.phase_count(actor)
    graph.add_edge(actor, actor, [1] * phases, [1] * phases, 1, name=f"self_{actor}")


def polyphase_cd2dat() -> CSDFGraph:
    """CD (44.1 kHz) to DAT (48 kHz), first stage 2:3 as a polyphase filter.

    Actors: ``cd`` source (1 phase), ``poly`` 3-phase polyphase stage
    (consumes 1 per phase, produces [1, 0, 1] — two outputs per three
    inputs, i.e. the 2/3 stage), ``s2`` 2:7 stage, ``dat`` sink.  The
    cycle-level rates match the SDF converter's first stages, so the
    repetition vector scales the same way.
    """
    g = CSDFGraph("polyphase-cd2dat")
    g.add_actor("cd", [1])
    g.add_actor("poly", [2, 1, 2])     # heavier on the output phases
    g.add_actor("s2", [3])
    g.add_actor("dat", [1])
    for actor in ("cd", "poly", "s2", "dat"):
        _self_edge(g, actor)
    g.add_edge("cd", "poly", production=[1], consumption=[1, 1, 1], name="in")
    g.add_edge("poly", "s2", production=[1, 0, 1], consumption=[7], name="mid")
    g.add_edge("s2", "dat", production=[2], consumption=[3], name="out")
    return g


def ip_frame_decoder(p_frames: int = 3) -> CSDFGraph:
    """A GOP-patterned decoder: I-frame phase then ``p_frames`` P-phases.

    The parser cycles through ``1 + p_frames`` phases; the I phase is
    slow and emits a full reference frame's worth of data (4 blocks),
    P phases are fast and emit 1 block.  A single-phase renderer
    consumes blocks; a frame-buffer feedback paces the pipeline.
    """
    if p_frames < 1:
        raise ValueError("need at least one P-frame per GOP")
    phases = 1 + p_frames
    g = CSDFGraph(f"ip-decoder-{p_frames}p")
    g.add_actor("parse", [9] + [2] * p_frames)
    g.add_actor("render", [3])
    _self_edge(g, "parse")
    _self_edge(g, "render")
    blocks = [4] + [1] * p_frames
    g.add_edge("parse", "render", production=blocks, consumption=[1], name="blocks")
    # Frame buffer: the renderer returns display slots, enough for a GOP.
    total = sum(blocks)
    g.add_edge(
        "render",
        "parse",
        production=[1],
        consumption=[4] + [1] * p_frames,
        tokens=total,
        name="framebuffer",
    )
    return g
