"""The Table-1 benchmark registry.

Couples each of the paper's eight test cases to its graph factory and to
the paper's reported sizes, so tests and the benchmark harness iterate
one list.  ``paper_new`` sizes depend on initial-token placement that the
paper does not enumerate per graph; our reconstructions are compared
against them qualitatively (same winner, same order of magnitude) while
``paper_traditional`` — which equals Σγ — must match exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.graphs.dsp import modem, sample_rate_converter, satellite_receiver
from repro.graphs.multimedia import (
    h263_decoder,
    h263_encoder,
    mp3_decoder_block_parallel,
    mp3_decoder_granule_parallel,
    mp3_playback,
)
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class Table1Case:
    """One row of Table 1 of the paper."""

    index: int
    name: str
    factory: Callable[[], SDFGraph]
    paper_traditional: int
    paper_new: int

    @property
    def paper_ratio(self) -> float:
        return self.paper_traditional / self.paper_new

    def build(self) -> SDFGraph:
        return self.factory()


TABLE1_CASES = [
    Table1Case(1, "h.263 decoder", h263_decoder, 1190, 10),
    Table1Case(2, "h.263 encoder", h263_encoder, 201, 11),
    Table1Case(3, "modem", modem, 48, 210),
    Table1Case(4, "mp3 dec. block par.", mp3_decoder_block_parallel, 911, 8),
    Table1Case(5, "mp3 dec. granule par.", mp3_decoder_granule_parallel, 27, 8),
    Table1Case(6, "mp3 playback", mp3_playback, 10601, 38),
    Table1Case(7, "sample rate conv.", sample_rate_converter, 612, 31),
    Table1Case(8, "satellite", satellite_receiver, 4515, 217),
]
