"""Random graph generators for property-based testing.

All generators take a :class:`random.Random` instance so hypothesis (or a
seed) fully controls them, and construct graphs that are *correct by
construction*: consistent (rates derived from a chosen repetition
vector), live (tokens placed to complete one iteration) and token-bound
(every actor gets an incoming edge).
"""

from __future__ import annotations

import random
from fractions import Fraction
from math import gcd
from typing import Optional

from repro.mcm.graphlib import RatioGraph
from repro.sdf.graph import SDFGraph


def random_consistent_sdf(
    rng: random.Random,
    n_actors: int = 6,
    extra_edges: int = 3,
    max_repetition: int = 6,
    max_time: int = 10,
) -> SDFGraph:
    """A random consistent, live, token-bound SDF graph.

    Construction: draw a repetition vector, arrange the actors in a
    random pipeline order, connect consecutive actors with the minimal
    consistent rates (``p = γ_b/g, c = γ_a/g``), close the loop with a
    feedback edge carrying exactly the tokens its head needs for one
    iteration, sprinkle ``extra_edges`` random forward/backward edges
    (backward ones get a full iteration of tokens), and add a self-loop
    to every actor.
    """
    names = [f"a{i}" for i in range(n_actors)]
    order = names[:]
    rng.shuffle(order)
    gamma = {a: rng.randint(1, max_repetition) for a in names}

    g = SDFGraph(f"random-{rng.randrange(10**6)}")
    for a in names:
        g.add_actor(a, rng.randint(1, max_time))
        g.add_edge(a, a, tokens=1, name=f"self_{a}")

    def consistent_rates(a: str, b: str) -> tuple:
        div = gcd(gamma[a], gamma[b])
        return gamma[b] // div, gamma[a] // div

    def add(a: str, b: str, backward: bool) -> None:
        p, c = consistent_rates(a, b)
        # A backward edge needs one iteration's worth of tokens to not
        # constrain the (already live) forward schedule.
        tokens = gamma[b] * c if backward else 0
        g.add_edge(a, b, production=p, consumption=c, tokens=tokens)

    for a, b in zip(order, order[1:]):
        add(a, b, backward=False)
    if n_actors > 1:
        add(order[-1], order[0], backward=True)

    position = {a: i for i, a in enumerate(order)}
    for _ in range(extra_edges):
        a, b = rng.sample(names, 2) if n_actors > 1 else (names[0], names[0])
        add(a, b, backward=position[a] >= position[b])
    return g


def random_live_hsdf(
    rng: random.Random,
    n_actors: int = 8,
    extra_edges: int = 6,
    max_time: int = 10,
    max_tokens: int = 3,
) -> SDFGraph:
    """A random live HSDF graph (every cycle carries at least one token).

    A random topological order is drawn; forward edges are token-free,
    backward edges carry 1..max_tokens tokens, so the zero-token
    subgraph is a DAG and the graph is live.  Self-loops bound every
    actor.
    """
    names = [f"h{i}" for i in range(n_actors)]
    order = names[:]
    rng.shuffle(order)
    position = {a: i for i, a in enumerate(order)}

    g = SDFGraph(f"random-hsdf-{rng.randrange(10**6)}")
    for a in names:
        g.add_actor(a, rng.randint(0, max_time))
        g.add_edge(a, a, tokens=1, name=f"self_{a}")
    for a, b in zip(order, order[1:]):
        g.add_edge(a, b)
    if n_actors > 1:
        g.add_edge(order[-1], order[0], tokens=rng.randint(1, max_tokens))
    for _ in range(extra_edges):
        if n_actors < 2:
            break
        a, b = rng.sample(names, 2)
        backward = position[a] >= position[b]
        g.add_edge(a, b, tokens=rng.randint(1, max_tokens) if backward else 0)
    return g


def random_live_csdf(
    rng: random.Random,
    n_actors: int = 4,
    max_phases: int = 4,
    max_rate: int = 3,
    max_time: int = 8,
):
    """A random consistent, live, token-bound CSDF graph.

    A pipeline with feedback, like :func:`random_consistent_sdf`, but
    with per-phase rate/time sequences; consecutive actors exchange the
    same number of tokens per cycle (cycle-balanced by construction, so
    all cycle repetition factors are 1) and the feedback edge carries a
    full iteration of tokens.
    """
    from repro.csdf.graph import CSDFGraph

    names = [f"c{i}" for i in range(n_actors)]
    order = names[:]
    rng.shuffle(order)
    phases = {a: rng.randint(1, max_phases) for a in names}
    # Tokens moved per full cycle on every channel: a common multiple so
    # every per-phase split is expressible.
    per_cycle = max_rate * max(phases.values())

    def split(total: int, parts: int):
        cuts = sorted(rng.randint(0, total) for _ in range(parts - 1))
        previous = 0
        out = []
        for cut in cuts:
            out.append(cut - previous)
            previous = cut
        out.append(total - previous)
        return out

    g = CSDFGraph(f"random-csdf-{rng.randrange(10**6)}")
    for a in names:
        g.add_actor(a, [rng.randint(0, max_time) for _ in range(phases[a])])
        g.add_edge(a, a, [1] * phases[a], [1] * phases[a], 1, name=f"self_{a}")

    for a, b in zip(order, order[1:]):
        g.add_edge(
            a,
            b,
            production=split(per_cycle, phases[a]),
            consumption=split(per_cycle, phases[b]),
        )
    if n_actors > 1:
        g.add_edge(
            order[-1],
            order[0],
            production=split(per_cycle, phases[order[-1]]),
            consumption=split(per_cycle, phases[order[0]]),
            tokens=per_cycle,
        )
    return g


def random_ratio_graph(
    rng: random.Random,
    n_nodes: int = 6,
    n_edges: int = 12,
    max_weight: int = 20,
    max_transit: int = 3,
    allow_negative: bool = False,
) -> RatioGraph:
    """A random cycle-ratio instance with no zero-transit cycles.

    Nodes get a random order; forward edges may have transit 0, backward
    edges (including self-loops) have transit >= 1, so every cycle has
    positive total transit — the precondition of the MCR solvers.
    """
    graph = RatioGraph()
    order = list(range(n_nodes))
    rng.shuffle(order)
    position = {node: i for i, node in enumerate(order)}
    for node in range(n_nodes):
        graph.add_node(node)
    low = -max_weight if allow_negative else 0
    for _ in range(n_edges):
        a = rng.randrange(n_nodes)
        b = rng.randrange(n_nodes)
        backward = position[a] >= position[b]
        transit = rng.randint(1, max_transit) if backward else rng.randint(0, max_transit)
        graph.add_edge(a, b, Fraction(rng.randint(low, max_weight)), transit)
    return graph
