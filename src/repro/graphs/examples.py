"""The paper's small illustrative graphs.

* :func:`section41_example` — Figure 1(a) with the Section 4.1 execution
  times (n = 6); its single-iteration makespan is 23 and its throughput
  1/23, as the paper computes by hand.
* :func:`figure2_graph` — a graph with the features of Figure 2(a): two
  groups of ring-ordered actors with per-actor self-loops, so that the
  abstraction produces the redundant three-token self-edge the paper uses
  to motivate pruning.  (The figure's edge set is not fully enumerated in
  the text; this reconstruction keeps every behaviour the running text
  relies on.)
* :func:`figure3_graph` — the two-actor multirate graph of the symbolic
  execution example (Figure 3): four initial tokens, an iteration of
  three firings, and the stamps max(t1+3, t2+3) and
  max(t1+6, t2+6, t3+3) after the two firings of the left actor.
"""

from __future__ import annotations

from repro.core.abstraction import Abstraction
from repro.graphs.synthetic import regular_prefetch, regular_prefetch_abstraction
from repro.sdf.graph import SDFGraph


def section41_example() -> SDFGraph:
    """Figure 1(a) with the paper's execution times (n = 6)."""
    return regular_prefetch(6)


def section41_abstraction() -> Abstraction:
    """The grouping used in Section 4.1 (Ai → A, Bi → B)."""
    return regular_prefetch_abstraction(6)


def figure2_graph() -> SDFGraph:
    """A Figure 2(a)-style graph: a 3-ring of A's and a 2-chain of B's.

    * ``A1 → A2 → A3 → A1`` (one token on the back edge) with a one-token
      self-loop on every ``Ai`` — under the abstraction (Ai → A at phase
      i−1, N = 3) the self-loops map to a self-edge on ``A`` with
      ``0 + 3·1 = 3`` tokens, which is redundant next to the ring's
      ``0 − 2 + 3·1 = 1``-token self-edge, exactly the pruning example of
      Section 4.2;
    * ``B1 → B2`` plus feedback ``B2 → B1`` with one token (B gets a
      dummy third phase since N = 3);
    * cross edges ``A1 → B1`` and ``B2 → A3``.
    """
    g = SDFGraph("figure2")
    for i, time in zip((1, 2, 3), (2, 1, 3)):
        g.add_actor(f"A{i}", time)
    for i, time in zip((1, 2), (2, 2)):
        g.add_actor(f"B{i}", time)

    g.add_edge("A1", "A2")
    g.add_edge("A2", "A3")
    g.add_edge("A3", "A1", tokens=1)
    for i in (1, 2, 3):
        g.add_edge(f"A{i}", f"A{i}", tokens=1, name=f"self_A{i}")
    g.add_edge("B1", "B2")
    g.add_edge("B2", "B1", tokens=1)
    g.add_edge("A1", "B1")
    g.add_edge("B2", "A3", tokens=1)
    return g


def figure2_abstraction() -> Abstraction:
    """Group the A's (phases 0-2) and B's (phases 0-1, dummy phase 2)."""
    return Abstraction(
        mapping={"A1": "A", "A2": "A", "A3": "A", "B1": "B", "B2": "B"},
        index={"A1": 0, "A2": 1, "A3": 2, "B1": 0, "B2": 1},
    )


def figure3_graph(left_time: int = 3, right_time: int = 1) -> SDFGraph:
    """The Figure 3 symbolic-execution example.

    Actors ``L`` (the left actor, execution time 3) and ``R``; channels:

    * ``R → L``: production 2, consumption 1, two initial tokens
      (the paper's t1 and t3);
    * self-loop on ``L`` with one token (t2);
    * ``L → R``: production 1, consumption 2;
    * self-loop on ``R`` with one token (t4).

    The repetition vector is (L: 2, R: 1) — "an iteration consists of
    three firings, two of the left and one of the right actor".
    """
    g = SDFGraph("figure3")
    g.add_actor("L", left_time)
    g.add_actor("R", right_time)
    g.add_edge("R", "L", production=2, consumption=1, tokens=2, name="t1_t3")
    g.add_edge("L", "L", tokens=1, name="t2")
    g.add_edge("L", "R", production=1, consumption=2, name="data")
    g.add_edge("R", "R", tokens=1, name="t4")
    return g
