"""Parameterised synthetic graph families from the paper.

* :func:`regular_prefetch` — the (almost) regular HSDF graph of
  Figure 1(a) / Section 4.1: a ring of computation actors ``A1 … An``
  with pre-fetch helper actors ``B1 … B(n-2)``.  With the paper's
  execution times its iteration period is ``5n − 7`` (checked
  numerically in the tests; the paper reports throughput ``1/(5n−7)``
  and the abstract bound ``1/(5n)``).
* :func:`remote_memory_access` — the Figure 5 model from [16]: a ring of
  block computations whose input data is pre-fetched through
  communication-assist (CA) actors on both sides of a network-on-chip.
  With communication faster than computation the abstraction is exact.
* :func:`homogeneous_pipeline` — a plain HSDF pipeline with self-loops,
  handy as a baseline in tests and benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.abstraction import Abstraction
from repro.errors import ValidationError
from repro.sdf.graph import SDFGraph


def _prefetch_time(i: int, n: int) -> int:
    """Paper execution times for Ai, generalised over n.

    Section 4.1 (n = 6): A1, A2 take 2; A3, A4 take 5; A5, A6 take 3.
    The generalisation keeping the reported 1/(5n−7) throughput is:
    the first two actors take 2, the last two take 3, the middle takes 5.
    """
    if i <= 2:
        return 2
    if i >= n - 1:
        return 3
    return 5


def regular_prefetch(
    n: int = 6,
    a_times: Optional[Sequence[int]] = None,
    b_time: int = 4,
) -> SDFGraph:
    """The Figure 1(a) graph with ``n`` computation actors.

    Structure (all rates 1):

    * ring ``A1 → A2 → … → An → A1``, one initial token on the back edge;
    * helper chain ``B1 → … → B(n−2)`` (no back edge — the start/end of a
      frame breaks the regularity, as the paper highlights);
    * ``Ai → Bi`` and ``Bi → A(i+2)`` for ``1 ≤ i ≤ n−2``.

    ``a_times`` overrides the per-actor execution times of the A's.
    """
    if n < 4:
        raise ValidationError(f"regular_prefetch needs n >= 4, got {n}")
    if a_times is None:
        a_times = [_prefetch_time(i, n) for i in range(1, n + 1)]
    elif len(a_times) != n:
        raise ValidationError(f"need {n} A execution times, got {len(a_times)}")

    g = SDFGraph(f"prefetch-{n}")
    for i in range(1, n + 1):
        g.add_actor(f"A{i}", a_times[i - 1])
    for i in range(1, n - 1):
        g.add_actor(f"B{i}", b_time)

    for i in range(1, n):
        g.add_edge(f"A{i}", f"A{i + 1}")
    g.add_edge(f"A{n}", "A1", tokens=1)
    for i in range(1, n - 2):
        g.add_edge(f"B{i}", f"B{i + 1}")
    for i in range(1, n - 1):
        g.add_edge(f"A{i}", f"B{i}")
        g.add_edge(f"B{i}", f"A{i + 2}")
    return g


def regular_prefetch_abstraction(n: int = 6) -> Abstraction:
    """The paper's abstraction for :func:`regular_prefetch`: all ``Ai``
    collapse to ``A`` and all ``Bi`` to ``B``, with phase ``i − 1``."""
    mapping = {f"A{i}": "A" for i in range(1, n + 1)}
    index = {f"A{i}": i - 1 for i in range(1, n + 1)}
    mapping.update({f"B{i}": "B" for i in range(1, n - 1)})
    index.update({f"B{i}": i - 1 for i in range(1, n - 1)})
    return Abstraction(mapping=mapping, index=index)


def remote_memory_access(
    n_blocks: int = 1584,
    compute_time: int = 100,
    ca_time: int = 40,
    prefetch_distance: int = 2,
) -> SDFGraph:
    """The Figure 5 remote-memory-access model (from reference [16]).

    Per block ``i`` (1-based, all rates 1):

    * computation actor ``A{i}``, in a sequential ring with one token on
      the wrap-around edge (one processor executes the blocks in order);
    * a pre-fetch path ``A{i} → CAl{i} → CAr{i} → A{i + prefetch_distance}``:
      after computing block ``i`` the communication assists ship the data
      for the block ``prefetch_distance`` ahead; edges that wrap past the
      end of the frame carry one initial token (they cross the frame
      boundary).

    The full-search block-matching workload of [16] performs 1584 such
    computations per video frame, all with the same execution time.
    With ``2·ca_time ≤ compute_time`` the network is never the
    bottleneck and the paper's abstraction is throughput-exact.
    """
    if n_blocks < prefetch_distance + 1:
        raise ValidationError(
            f"need more than {prefetch_distance} blocks, got {n_blocks}"
        )
    g = SDFGraph(f"remote-memory-{n_blocks}")
    for i in range(1, n_blocks + 1):
        g.add_actor(f"A{i}", compute_time)
    for i in range(1, n_blocks + 1):
        g.add_actor(f"CAl{i}", ca_time)
        g.add_actor(f"CAr{i}", ca_time)

    for i in range(1, n_blocks):
        g.add_edge(f"A{i}", f"A{i + 1}")
    g.add_edge(f"A{n_blocks}", "A1", tokens=1)

    for i in range(1, n_blocks + 1):
        g.add_edge(f"A{i}", f"CAl{i}")
        g.add_edge(f"CAl{i}", f"CAr{i}")
        target = i + prefetch_distance
        wraps = target > n_blocks
        target = (target - 1) % n_blocks + 1
        g.add_edge(f"CAr{i}", f"A{target}", tokens=1 if wraps else 0)
    return g


def remote_memory_abstraction(
    n_blocks: int = 1584, prefetch_distance: int = 2
) -> Abstraction:
    """Group the block ring into ``A`` and the CA columns into ``CAl``/``CAr``."""
    mapping = {}
    index = {}
    for i in range(1, n_blocks + 1):
        for stem in ("A", "CAl", "CAr"):
            mapping[f"{stem}{i}"] = stem
            index[f"{stem}{i}"] = i - 1
    return Abstraction(mapping=mapping, index=index)


def homogeneous_pipeline(
    stages: int, execution_times: Optional[Sequence[int]] = None, tokens: int = 1
) -> SDFGraph:
    """An HSDF pipeline ``P1 → … → Pk`` with a feedback edge and self-loops.

    The feedback edge (``tokens`` initial tokens) bounds the pipelining
    depth; self-loops serialise each stage.  A simple well-behaved graph
    for tests: its cycle time is ``max(sum(T)/tokens, max(T))``.
    """
    if stages < 1:
        raise ValidationError("pipeline needs at least one stage")
    if execution_times is None:
        execution_times = [1] * stages
    elif len(execution_times) != stages:
        raise ValidationError(
            f"need {stages} execution times, got {len(execution_times)}"
        )
    g = SDFGraph(f"pipeline-{stages}")
    for i in range(1, stages + 1):
        g.add_actor(f"P{i}", execution_times[i - 1])
        g.add_edge(f"P{i}", f"P{i}", tokens=1, name=f"self_P{i}")
    for i in range(1, stages):
        g.add_edge(f"P{i}", f"P{i + 1}")
    g.add_edge(f"P{stages}", "P1", tokens=tokens)
    return g
