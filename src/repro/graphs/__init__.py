"""Benchmark and example graphs.

* :mod:`repro.graphs.examples` — the paper's illustrative figures
  (Section 4.1 / Figure 1, Figure 2, Figure 3);
* :mod:`repro.graphs.synthetic` — parameterised families: the regular
  prefetch graphs of Figure 1 and the remote-memory-access model of
  Figure 5 / Section 7;
* :mod:`repro.graphs.dsp` and :mod:`repro.graphs.multimedia` —
  reconstructions of the eight applications of Table 1 (see DESIGN.md
  for the substitution notes: the published repetition vectors are
  matched exactly, token placement follows SDF3 modelling conventions);
* :mod:`repro.graphs.random_sdf` — random consistent/live graph
  generators for property-based testing;
* :mod:`repro.graphs.registry` — the Table-1 case list used by the
  benchmark harness.
"""

from repro.graphs.examples import figure2_graph, figure3_graph, section41_example
from repro.graphs.synthetic import regular_prefetch, remote_memory_access, homogeneous_pipeline
from repro.graphs.dsp import modem, sample_rate_converter, satellite_receiver
from repro.graphs.multimedia import (
    h263_decoder,
    h263_encoder,
    mp3_decoder_block_parallel,
    mp3_decoder_granule_parallel,
    mp3_playback,
)
from repro.graphs.csdf_apps import ip_frame_decoder, polyphase_cd2dat
from repro.graphs.random_sdf import (
    random_consistent_sdf,
    random_live_hsdf,
    random_ratio_graph,
)
from repro.graphs.registry import TABLE1_CASES, Table1Case

__all__ = [
    "figure2_graph",
    "figure3_graph",
    "section41_example",
    "regular_prefetch",
    "remote_memory_access",
    "homogeneous_pipeline",
    "modem",
    "sample_rate_converter",
    "satellite_receiver",
    "h263_decoder",
    "h263_encoder",
    "mp3_decoder_block_parallel",
    "mp3_decoder_granule_parallel",
    "mp3_playback",
    "ip_frame_decoder",
    "polyphase_cd2dat",
    "random_consistent_sdf",
    "random_live_hsdf",
    "random_ratio_graph",
    "TABLE1_CASES",
    "Table1Case",
]
