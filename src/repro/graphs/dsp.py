"""DSP application graphs of Table 1: modem, sample-rate converter, satellite.

These are *reconstructions*: the original SDF3 benchmark files (reference
[14] of the paper) are not redistributable here, so each graph is rebuilt
from its published structure — actor counts and repetition vectors first
(they pin the traditional-conversion column of Table 1 exactly), initial
tokens per the usual modelling conventions (delay lines, frame feedback,
self-loops on shared resources).  See DESIGN.md, "Substitutions".

Published shapes matched exactly:

* modem (Lee & Messerschmitt 1987): 16 actors, Σγ = 48, token-rich and
  almost homogeneous — the one case where the paper's new conversion is
  *larger* than the traditional one (ratio 0.23);
* CD-to-DAT sample-rate converter: 6-stage chain with repetition vector
  (147, 147, 98, 28, 32, 160), Σγ = 612;
* satellite receiver (Ritz et al.): 22 actors, Σγ = 4515.
"""

from __future__ import annotations

from repro.sdf.graph import SDFGraph


def modem() -> SDFGraph:
    """A 16-actor modem with Σγ = 48 and a delay-heavy equalizer loop.

    Structure: a 12-actor homogeneous control/equalisation ring with
    delay tokens on the adaptation loops (the modem's decision-feedback
    equaliser and carrier-tracking delays), a 2-stage symbol path at
    double rate, and a 2-stage bit path at 8x rate hanging off it.
    Repetition vector: twelve 1's, two 2's, two 16's (sum 48).
    """
    g = SDFGraph("modem")
    ring = [f"m{i}" for i in range(1, 13)]
    times = [2, 3, 2, 4, 3, 2, 5, 3, 2, 4, 3, 2]
    for name, time in zip(ring, times):
        g.add_actor(name, time)
    g.add_actor("sym1", 3)
    g.add_actor("sym2", 3)
    g.add_actor("bit1", 1)
    g.add_actor("bit2", 1)

    # Control ring with one token to close it.
    for a, b in zip(ring, ring[1:]):
        g.add_edge(a, b)
    g.add_edge(ring[-1], ring[0], tokens=1)

    # Delay lines of the adaptive parts: equaliser taps, carrier
    # tracking, timing recovery, AGC.  One token per feedback edge — a
    # unit delay consumed and refilled every iteration, exactly like the
    # modem's z^-1 elements.  These give the modem its unusually large
    # initial-token count (the property that makes the compact conversion
    # *larger* than the traditional one).
    delay_lines = [
        ("m4", "m2", "equaliser_tap1"),
        ("m6", "m3", "equaliser_tap2"),
        ("m8", "m5", "equaliser_tap3"),
        ("m10", "m7", "carrier_delay"),
        ("m12", "m9", "carrier_delay2"),
        ("m11", "m4", "timing_delay"),
        ("m9", "m6", "timing_delay2"),
        ("m7", "m2", "agc_delay"),
        ("m12", "m11", "agc_delay2"),
    ]
    for a, b, label in delay_lines:
        g.add_edge(a, b, tokens=1, name=label)

    # Symbol path: the ring's output is split into two symbols.
    g.add_edge("m12", "sym1", production=2, consumption=1)
    g.add_edge("sym1", "sym2")
    # Symbol feedback into the decision device: two tokens of slack.
    g.add_edge("sym2", "m1", production=1, consumption=2, tokens=2, name="decision_feedback")

    # Bit path: each symbol carries 8 bits.
    g.add_edge("sym2", "bit1", production=8, consumption=1)
    g.add_edge("bit1", "bit2")
    # Serialise the bit-rate actors (one hardware serialiser each).
    g.add_edge("bit1", "bit1", tokens=1, name="self_bit1")
    g.add_edge("bit2", "bit2", tokens=1, name="self_bit2")
    return g


def sample_rate_converter() -> SDFGraph:
    """The classical CD-to-DAT converter: 44.1 kHz → 48 kHz in 4 stages.

    Chain ``cd → s1 → s2 → s3 → s4 → dat`` with rate changes
    1:1, 2:3, 2:7, 8:7, 5:1; repetition vector
    (147, 147, 98, 28, 32, 160), Σγ = 612.  Every stage runs on one
    processor, modelled by one-token self-loops (these six tokens are
    what the compact conversion builds its matrix from).
    """
    g = SDFGraph("samplerate")
    names = ["cd", "s1", "s2", "s3", "s4", "dat"]
    times = [1, 2, 3, 5, 3, 1]
    for name, time in zip(names, times):
        g.add_actor(name, time)
        g.add_edge(name, name, tokens=1, name=f"self_{name}")
    rates = [(1, 1), (2, 3), (2, 7), (8, 7), (5, 1)]
    for (a, b), (p, c) in zip(zip(names, names[1:]), rates):
        g.add_edge(a, b, production=p, consumption=c)
    return g


def satellite_receiver() -> SDFGraph:
    """A 22-actor satellite receiver with Σγ = 4515 (Ritz et al. style).

    A shared front end (γ=3) feeds two symmetric I/Q branches of ten
    actors each (filter cascades stepping the rate up by 8x, 6x and 2x,
    branch Σγ = 2250), merged into a sink (γ=12).  Feedback from the
    sink to the source (frame pacing, twelve tokens) plus self-loops on
    the first 480-rate filter of each branch yield the token count the
    compact conversion works from.
    """
    g = SDFGraph("satellite")
    g.add_actor("src", 2)
    g.add_actor("sink", 1)

    branch_gamma = [5, 5, 40, 40, 240, 240, 480, 480, 480, 240]
    branch_times = [8, 8, 4, 4, 2, 2, 1, 1, 1, 2]
    for side in ("i", "q"):
        names = [f"{side}{k}" for k in range(1, 11)]
        for name, time in zip(names, branch_times):
            g.add_actor(name, time)
        # src (γ=3) feeds the branch head (γ=5) at rate 5:3.
        g.add_edge("src", names[0], production=5, consumption=3)
        rates = {
            (5, 5): (1, 1),
            (5, 40): (8, 1),
            (40, 40): (1, 1),
            (40, 240): (6, 1),
            (240, 240): (1, 1),
            (240, 480): (2, 1),
            (480, 480): (1, 1),
            (480, 240): (1, 2),
        }
        for (a, ga), (b, gb) in zip(
            zip(names, branch_gamma), zip(names[1:], branch_gamma[1:])
        ):
            p, c = rates[(ga, gb)]
            g.add_edge(a, b, production=p, consumption=c)
        # Branch tail (γ=240) into the sink (γ=12) at 1:20.
        g.add_edge(names[-1], "sink", production=1, consumption=20)
        # Serialise the first fast filter (shared multiplier resource).
        g.add_edge(names[6], names[6], tokens=1, name=f"self_{names[6]}")
    # Frame pacing: the sink (γ=12) releases the source (γ=3) 1:4;
    # twelve tokens of slack keep a full frame in flight.
    g.add_edge("sink", "src", production=1, consumption=4, tokens=12)
    # The source is serialised too.
    g.add_edge("src", "src", tokens=1, name="self_src")
    return g
