"""Multimedia application graphs of Table 1: H.263 and MP3 variants.

Reconstructions matching the published repetition vectors (see DESIGN.md,
"Substitutions"); the traditional-conversion sizes of Table 1 — which
equal Σγ — are matched exactly:

* H.263 decoder: (1, 594, 594, 1), Σγ = 1190 (one QCIF frame is 99
  macroblocks = 594 blocks);
* H.263 encoder: (1, 99, 99, 1, 1), Σγ = 201 (macroblock-level motion
  estimation and coding);
* MP3 decoder, block parallelisation: Σγ = 911;
* MP3 decoder, granule parallelisation: Σγ = 27;
* MP3 playback (decoder + sample-rate conversion + DAC): Σγ = 10601.
"""

from __future__ import annotations

from repro.sdf.graph import SDFGraph


def h263_decoder() -> SDFGraph:
    """H.263 QCIF decoder: VLD → IQ/IDCT (per block) → motion comp → frame.

    Repetition vector (vld: 1, idct: 594, mc: 594, frame: 1); the frame
    feedback (reference frame for motion compensation) carries one token,
    and the block-level actors are serialised with self-loops (a single
    accelerator instance each).
    """
    g = SDFGraph("h263-decoder")
    g.add_actor("vld", 26018)
    g.add_actor("idct", 559)
    g.add_actor("mc", 486)
    g.add_actor("frame", 10958)

    g.add_edge("vld", "idct", production=594, consumption=1)
    g.add_edge("idct", "mc")
    g.add_edge("mc", "frame", production=1, consumption=594)
    g.add_edge("frame", "vld", tokens=1, name="reference_frame")
    g.add_edge("idct", "idct", tokens=1, name="self_idct")
    g.add_edge("mc", "mc", tokens=1, name="self_mc")
    return g


def h263_encoder() -> SDFGraph:
    """H.263 QCIF encoder: per-macroblock motion estimation and coding.

    Repetition vector (camera: 1, me: 99, dct_q: 99, vlc: 1, rec: 1);
    rate 99 = macroblocks per QCIF frame.  The reconstructed-frame
    feedback carries one token; macroblock actors are serialised.
    """
    g = SDFGraph("h263-encoder")
    g.add_actor("camera", 1000)
    g.add_actor("me", 590)
    g.add_actor("dct_q", 460)
    g.add_actor("vlc", 26000)
    g.add_actor("rec", 11000)

    g.add_edge("camera", "me", production=99, consumption=1)
    g.add_edge("me", "dct_q")
    g.add_edge("dct_q", "vlc", production=1, consumption=99)
    g.add_edge("vlc", "rec")
    g.add_edge("rec", "camera", tokens=1, name="reconstructed_frame")
    g.add_edge("me", "me", tokens=1, name="self_me")
    g.add_edge("dct_q", "dct_q", tokens=1, name="self_dct_q")
    return g


def mp3_decoder_block_parallel() -> SDFGraph:
    """MP3 decoder exposing block-level parallelism, Σγ = 911.

    Repetition vector (huffman: 1, requant: 2, reorder: 2, alias: 12,
    imdct: 576, freqinv: 288, synth: 18, subband: 11, pcm: 1): one frame
    is two granules, the hybrid filterbank runs per frequency line, and
    synthesis aggregates.  Exactly two initial tokens (frame feedback
    and the Huffman self-loop) — the compact conversion of this graph is
    a full 2x2 matrix plus (de)multiplexers: 8 actors, as in Table 1.
    """
    g = SDFGraph("mp3-block")
    spec = [
        ("huffman", 1, 400),
        ("requant", 2, 110),
        ("reorder", 2, 70),
        ("alias", 12, 30),
        ("imdct", 576, 20),
        ("freqinv", 288, 10),
        ("synth", 18, 120),
        ("subband", 11, 95),
        ("pcm", 1, 80),
    ]
    for name, _, time in spec:
        g.add_actor(name, time)
    chain = [
        ("huffman", "requant", 2, 1),
        ("requant", "reorder", 1, 1),
        ("reorder", "alias", 6, 1),
        ("alias", "imdct", 48, 1),
        ("imdct", "freqinv", 1, 2),
        ("freqinv", "synth", 1, 16),
        ("synth", "subband", 11, 18),
        ("subband", "pcm", 1, 11),
    ]
    for a, b, p, c in chain:
        g.add_edge(a, b, production=p, consumption=c)
    g.add_edge("pcm", "huffman", tokens=1, name="frame_feedback")
    g.add_edge("huffman", "huffman", tokens=1, name="self_huffman")
    return g


def mp3_decoder_granule_parallel() -> SDFGraph:
    """MP3 decoder at granule granularity, Σγ = 27.

    A coarse pipeline: frame decode (γ=1), twelve granule-level stages
    (γ=2 each), merge and output (γ=1 each): 15 actors, Σγ = 27.  Two
    initial tokens as in the block-parallel variant.
    """
    g = SDFGraph("mp3-granule")
    g.add_actor("frame", 400)
    stage_times = [110, 70, 30, 20, 10, 120, 95, 80, 60, 50, 40, 30]
    for i, time in enumerate(stage_times, start=1):
        g.add_actor(f"granule{i}", time)
    g.add_actor("merge", 35)
    g.add_actor("out", 25)

    g.add_edge("frame", "granule1", production=2, consumption=1)
    for i in range(1, 12):
        g.add_edge(f"granule{i}", f"granule{i + 1}")
    g.add_edge("granule12", "merge", production=1, consumption=2)
    g.add_edge("merge", "out")
    g.add_edge("out", "frame", tokens=1, name="frame_feedback")
    g.add_edge("frame", "frame", tokens=1, name="self_frame")
    return g


def mp3_playback() -> SDFGraph:
    """MP3 playback: decoder, 44.1→48 kHz sample-rate converter, DAC.

    Σγ = 10601: the block-parallel decoder front end (Σ = 911), a
    CD-to-DAT-style converter scaled to the playback block size
    (γ = 1470, 1470, 980, 280, 320, 1600; Σ = 6120) and a 3-stage DAC
    back end (γ = 3200, 320, 50; Σ = 3570).  Six initial tokens: the two
    decoder tokens plus self-loops on the converter head, the DAC head
    and the DAC output, and one pipelining token between decoder and
    converter.
    """
    g = mp3_decoder_block_parallel()
    g.name = "mp3-playback"

    src_spec = [
        ("src1", 1470, 2),
        ("src2", 1470, 2),
        ("src3", 980, 3),
        ("src4", 280, 5),
        ("src5", 320, 3),
        ("src6", 1600, 1),
    ]
    for name, _, time in src_spec:
        g.add_actor(name, time)
    # pcm (γ=1) releases 1470 samples per frame into the converter.
    g.add_edge("pcm", "src1", production=1470, consumption=1, tokens=1, name="pcm_buffer")
    g.add_edge("src1", "src2")
    g.add_edge("src2", "src3", production=2, consumption=3)
    g.add_edge("src3", "src4", production=2, consumption=7)
    g.add_edge("src4", "src5", production=8, consumption=7)
    g.add_edge("src5", "src6", production=5, consumption=1)
    g.add_edge("src1", "src1", tokens=1, name="self_src1")

    dac_spec = [("dac1", 3200, 1), ("dac2", 320, 4), ("dac3", 50, 30)]
    for name, _, time in dac_spec:
        g.add_actor(name, time)
    g.add_edge("src6", "dac1", production=2, consumption=1)
    g.add_edge("dac1", "dac2", production=1, consumption=10)
    g.add_edge("dac2", "dac3", production=5, consumption=32)
    g.add_edge("dac1", "dac1", tokens=1, name="self_dac1")
    g.add_edge("dac3", "dac3", tokens=1, name="self_dac3")
    return g
