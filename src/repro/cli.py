"""Command-line interface: ``python -m repro <command> …``.

Gives the library's analyses a design-flow-friendly surface::

    python -m repro info graph.json
    python -m repro throughput graph.xml --method symbolic
    python -m repro throughput graph.xml --trace trace.json --metrics m.prom
    python -m repro explain builtin:modem --html report.html --json prov.json
    python -m repro profile builtin:modem --format json
    python -m repro batch --registry --workers 4 --analysis throughput latency
    python -m repro batch --registry --journal run.jsonl --store .repro-store
    python -m repro cache verify --store .repro-store --journal run.jsonl
    python -m repro obs analyze trace.json --json summary.json
    python -m repro obs flame spans.jsonl -o profile.folded
    python -m repro obs diff before.json after.json --format html -o diff.html
    python -m repro obs regress --history benchmarks/results/history.jsonl
    python -m repro obs check trace.json metrics.prom BENCH_obs.json
    python -m repro convert graph.json -o compact.json
    python -m repro convert graph.json --traditional -o expanded.xml
    python -m repro abstract graph.json --strategy name -o abstract.json
    python -m repro bottleneck graph.json
    python -m repro schedule graph.json
    python -m repro gantt builtin:figure1 --horizon 46
    python -m repro lint graph.json --format sarif --fail-on error
    python -m repro csdf csdf-graph.json
    python -m repro dot builtin:modem -o modem.dot
    python -m repro table1

Graphs are read from ``.json`` (the library's dict format) or ``.xml``
(SDF3-style); the built-in benchmark suite is reachable as
``builtin:<name>`` (see ``python -m repro builtins``).
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
from fractions import Fraction

from repro.analysis.latency import latency
from repro.analysis.throughput import throughput
from repro.core.abstraction import abstract_graph
from repro.core.conservativity import verify_abstraction
from repro.core.grouping import discover_abstraction
from repro.core.hsdf_conversion import convert_to_hsdf
from repro.core.pruning import prune_redundant_edges
from repro.errors import ReproError
from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure2_graph, figure3_graph, section41_example
from repro.graphs.synthetic import regular_prefetch, remote_memory_access
from repro.sdf import io as sdf_io
from repro.sdf.dot import to_dot
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import is_consistent, iteration_length, repetition_vector
from repro.sdf.schedule import is_live
from repro.sdf.transform import traditional_hsdf

#: Graphs reachable as ``builtin:<name>`` from the command line.
BUILTIN_GRAPHS = {
    "figure1": section41_example,
    "figure2": figure2_graph,
    "figure3": figure3_graph,
    "prefetch": regular_prefetch,
    "remote-memory": lambda: remote_memory_access(64),
    **{case.name.replace(" ", "-").replace(".", ""): case.factory for case in TABLE1_CASES},
}


def load_graph(spec: str) -> SDFGraph:
    """Load a graph from a file path or a ``builtin:<name>`` spec."""
    if spec.startswith("builtin:"):
        name = spec[len("builtin:"):]
        factory = BUILTIN_GRAPHS.get(name)
        if factory is None:
            raise ReproError(
                f"unknown builtin {name!r}; available: {', '.join(sorted(BUILTIN_GRAPHS))}"
            )
        return factory()
    path = pathlib.Path(spec)
    text = path.read_text()
    if path.suffix == ".xml":
        return sdf_io.from_sdf3_xml(text)
    return sdf_io.from_json(text)


def save_graph(graph: SDFGraph, path_spec: str) -> None:
    path = pathlib.Path(path_spec)
    if path.suffix == ".xml":
        path.write_text(sdf_io.to_sdf3_xml(graph))
    elif path.suffix == ".dot":
        path.write_text(to_dot(graph))
    else:
        path.write_text(sdf_io.to_json(graph))


def _fmt(value) -> str:
    if isinstance(value, Fraction) and value.denominator != 1:
        return f"{value} (~{float(value):.6g})"
    return str(value)


def cmd_info(args) -> int:
    g = load_graph(args.graph)
    print(f"graph:      {g.name}")
    print(f"actors:     {g.actor_count()}")
    print(f"edges:      {g.edge_count()}")
    print(f"tokens:     {g.total_tokens()}")
    print(f"homogeneous: {g.is_homogeneous()}")
    print(f"strongly connected: {g.is_strongly_connected()}")
    consistent = is_consistent(g)
    print(f"consistent: {consistent}")
    if consistent:
        gamma = repetition_vector(g)
        print(f"iteration length (sum of repetition vector): {sum(gamma.values())}")
        if args.verbose:
            for actor in g.actor_names:
                print(f"  gamma({actor}) = {gamma[actor]}")
        print(f"live:       {is_live(g)}")
    return 0


def cmd_throughput(args) -> int:
    from repro.analysis.deadline import Deadline
    from repro.errors import AnalysisTimeout

    g = load_graph(args.graph)
    if args.fallback:
        from repro.analysis.resilience import analyse_with_policy

        outcome = analyse_with_policy(g, timeout=args.timeout,
                                      kernel=args.kernel)
        print(outcome.describe())
        return 0 if outcome.status != "timed-out" else 3
    deadline = Deadline.after(args.timeout) if args.timeout else None
    try:
        result = throughput(g, method=args.method, precheck=args.lint,
                            deadline=deadline, kernel=args.kernel)
    except AnalysisTimeout as error:
        progress = ", ".join(f"{k}={v}" for k, v in error.progress.items())
        print(f"error: analysis timed out after {error.elapsed:.2f}s "
              f"in stage {error.stage or '?'}"
              + (f" ({progress})" if progress else ""), file=sys.stderr)
        print("hint: re-run with --fallback for a conservative bound "
              "(Theorem 1)", file=sys.stderr)
        return 3
    if result.unbounded:
        print("throughput: unbounded (no recurrent timing constraint)")
        return 0
    print(f"iteration period: {_fmt(result.cycle_time)}")
    for actor, rate in result.per_actor.items():
        print(f"  rate({actor}) = {_fmt(rate)}")
    return 0


def cmd_profile(args) -> int:
    import json

    from repro.obs.profile import profile_graph

    g = load_graph(args.graph)
    report = profile_graph(g, methods=tuple(args.method))
    if args.format == "json":
        doc = {"schema": "repro-profile-v1", **report.as_dict()}
        print(json.dumps(doc, indent=2))
    else:
        print(report.render())
    return 0


def cmd_explain(args) -> int:
    import json

    from repro.analysis.deadline import Deadline
    from repro.errors import AnalysisTimeout
    from repro.obs.provenance import WitnessError, verify_witness
    from repro.obs.report import render_html, render_text, witness_highlights
    from repro.obs.trace import Tracer

    g = load_graph(args.graph)
    timed_out = False
    tracer = Tracer()  # spans feed the HTML timeline
    with tracer:
        if args.fallback or args.stages:
            from repro.analysis.resilience import DEFAULT_STAGES, AnalysisPolicy

            policy = AnalysisPolicy(
                stages=tuple(args.stages) if args.stages else DEFAULT_STAGES,
                timeout=args.timeout,
                kernel=args.kernel,
            )
            outcome = policy.run(g)
            record = outcome.record
            timed_out = outcome.status == "timed-out"
        else:
            deadline = Deadline.after(args.timeout) if args.timeout else None
            try:
                result = throughput(g, method=args.method, deadline=deadline,
                                    kernel=args.kernel)
            except AnalysisTimeout as error:
                print(f"error: analysis timed out after {error.elapsed:.2f}s "
                      f"in stage {error.stage or '?'}", file=sys.stderr)
                print("hint: re-run with --fallback for a provenance record "
                      "of the degraded chain", file=sys.stderr)
                return 3
            record = result.provenance

    print(render_text(record, graph=g))
    if args.json:
        pathlib.Path(args.json).write_text(
            json.dumps(record.as_dict(), indent=2) + "\n"
        )
        print(f"provenance: written to {args.json}", file=sys.stderr)
    if args.html:
        pathlib.Path(args.html).write_text(
            render_html(record, graph=g, spans=tracer.spans())
        )
        print(f"report: written to {args.html}", file=sys.stderr)
    if args.dot:
        actors, edges = witness_highlights(record, g)
        pathlib.Path(args.dot).write_text(
            to_dot(g, highlight_actors=actors, highlight_edges=edges)
        )
        print(f"dot: written to {args.dot}", file=sys.stderr)

    if args.require_witness:
        if record.witness is None:
            print(f"error: no verifiable witness: "
                  f"{record.witness_unavailable or 'unavailable'}",
                  file=sys.stderr)
            return 4
        try:
            verify_witness(g, record)
        except WitnessError as error:
            print(f"error: witness failed verification: {error}",
                  file=sys.stderr)
            return 4
    return 3 if timed_out else 0


def cmd_latency(args) -> int:
    g = load_graph(args.graph)
    result = latency(g)
    print(f"iteration makespan: {_fmt(result.makespan)}")
    for actor, value in result.first_completion.items():
        print(f"  first completion({actor}) = {_fmt(value)}")
    return 0


def cmd_batch(args) -> int:
    from repro.analysis.batch import ANALYSES, run_batch
    from repro.analysis.cache import default_cache
    from repro.analysis.faults import FaultPlan, parse_fault

    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    journal = args.journal or args.resume
    faults = None
    if args.inject:
        faults = FaultPlan(
            tuple(parse_fault(spec) for spec in args.inject),
            seed=args.fault_seed,
        )
    specs = list(args.graphs)
    graphs = []
    if args.registry:
        for case in TABLE1_CASES:
            graphs.append(case.build())
    for spec in specs:
        graphs.append(load_graph(spec))
    if not graphs:
        print("error: no graphs given (pass specs and/or --registry)", file=sys.stderr)
        return 2

    cache = default_cache()
    before = cache.stats()
    report = run_batch(
        graphs,
        analyses=tuple(args.analysis),
        method=args.method,
        backend=args.backend,
        workers=args.workers,
        cache=cache,
        lint=args.lint,
        timeout=args.timeout,
        retries=args.retries,
        faults=faults,
        journal=journal,
        resume=bool(args.resume),
        kernel=args.kernel,
        store=args.store,
    )
    after = report.cache_stats

    print(f"{'graph':<26} {'status':<11} {'cycle time':>14} {'time':>9}")
    for result in report.results:
        if result.ok:
            tr = result.values.get("throughput")
            if isinstance(tr, dict):  # resumed from journal: JSON summary
                cycle = "unbounded" if tr.get("unbounded") else tr.get("cycle_time", "-")
            elif tr is None:
                cycle = "-"
            else:
                cycle = "unbounded" if tr.unbounded else _fmt(tr.cycle_time)
            status = "resumed" if result.resumed else "ok"
            print(f"{result.name:<26} {status:<11} {cycle:>14} "
                  f"{result.duration:>8.3f}s")
        else:
            status = "QUARANTINE" if result.quarantined else (
                "TIMEOUT" if result.timed_out else "FAILED")
            print(f"{result.name:<26} {status:<11} {result.error_type:>14} "
                  f"{result.duration:>8.3f}s")
            print(f"  {result.error}")
    hits = after.hits - before.hits
    misses = after.misses - before.misses
    rate = hits / (hits + misses) if hits + misses else 0.0
    summary = (f"\n{len(report.ok)}/{len(report.results)} ok in "
               f"{report.duration:.3f}s ({report.backend}, "
               f"{report.workers} workers)")
    if report.resumed:
        summary += f", {len(report.resumed)} resumed from journal"
    if report.quarantined:
        summary += f", {len(report.quarantined)} quarantined"
    print(summary)
    if journal:
        print(f"journal: {journal}")
    print(f"cache: {hits} hits / {misses} misses this run "
          f"(hit rate {rate:.0%}; lifetime {after.hit_rate:.0%}, "
          f"{after.size}/{after.maxsize} entries)")
    if args.store:
        disk_hits = after.disk_hits - before.disk_hits
        disk_misses = after.disk_misses - before.disk_misses
        line = (f"store: {disk_hits} disk hits / {disk_misses} disk misses, "
                f"{after.disk_puts - before.disk_puts} published "
                f"({args.store})")
        if after.disk_quarantined - before.disk_quarantined:
            line += (f", {after.disk_quarantined - before.disk_quarantined} "
                     "quarantined")
        print(line)
    return 0 if not report.failures else 1


def cmd_cache(args) -> int:
    import json

    from repro.analysis.store import DEFAULT_MAX_BYTES, ResultStore

    max_bytes = getattr(args, "max_bytes", None)
    store = ResultStore(args.store, max_bytes=max_bytes
                        if max_bytes is not None else DEFAULT_MAX_BYTES)

    if args.action == "stats":
        stats = store.stats()
        if args.json:
            doc = {"schema": "repro-store-stats-v1", **stats.as_dict()}
            print(json.dumps(doc, indent=2))
        else:
            print(f"store:       {stats.root}")
            print(f"records:     {stats.records} "
                  f"({stats.bytes} bytes of {stats.max_bytes} budget)")
            print(f"quarantined: {stats.quarantined_records}")
            print(f"tmp files:   {stats.tmp_files}")
        return 0

    if args.action == "verify":
        report = store.verify(quarantine=not args.no_quarantine)
        if args.journal:
            store.check_journal(args.journal, report=report)
        doc = report.as_dict()
        if args.json:
            pathlib.Path(args.json).write_text(json.dumps(doc, indent=2) + "\n")
            print(f"report: written to {args.json}", file=sys.stderr)
        print(f"verified {report.records} record(s): {report.valid} valid, "
              f"{len(report.corrupt)} corrupt "
              f"({report.quarantined_now} quarantined now, "
              f"{report.undetected_corrupt} undetected)")
        if report.journal is not None:
            j = report.journal
            print(f"journal: {j['matched']}/{j['checked']} journaled "
                  f"result(s) present in the store")
            for entry in j["missing"]:
                print(f"  missing: {entry['analysis']} of "
                      f"{entry['fingerprint'][:16]} ({entry['status']})")
        return 0 if report.ok else 1

    if args.action == "purge":
        removed = store.purge(analysis=args.analysis,
                              quarantine_only=args.quarantine)
        what = ("quarantined record(s)" if args.quarantine
                else f"{args.analysis or 'all'} record(s)")
        print(f"purged {removed} {what} from {store.root}")
        return 0

    # compact
    outcome = store.compact()
    print(f"compacted {store.root}: evicted {outcome['evicted']} record(s) "
          f"({outcome['freed_bytes']} bytes), swept {outcome['tmp_removed']} "
          f"tmp file(s), {outcome['remaining_bytes']} bytes remain")
    return 0


def cmd_obs_analyze(args) -> int:
    import json

    from repro.obs.analyze import render_summary_text, summarize_files

    try:
        summary = summarize_files(args.traces)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(summary, indent=2) + "\n")
        print(f"summary: written to {args.json} "
              "(validate with repro obs check)", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(summary, indent=2))
    else:
        print(render_summary_text(summary, top=args.top))
    return 0


def cmd_obs_flame(args) -> int:
    from repro.obs.analyze import collapsed_stacks, load_trace

    try:
        lines = collapsed_stacks([(str(p), load_trace(p))
                                  for p in args.traces])
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.output:
        pathlib.Path(args.output).write_text(
            "\n".join(lines) + ("\n" if lines else "")
        )
        print(f"flamegraph: {len(lines)} stack(s) written to {args.output} "
              "(feed to flamegraph.pl or https://speedscope.app)",
              file=sys.stderr)
    else:
        for line in lines:
            print(line)
    return 0


def cmd_obs_diff(args) -> int:
    import json

    from repro.obs.diff import diff_files, render_diff_html, render_diff_text

    try:
        diff = diff_files(args.a, args.b, noise_floor=args.noise)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    render = {
        "text": render_diff_text,
        "json": lambda d: json.dumps(d, indent=2),
        "html": render_diff_html,
    }
    text = render[args.format](diff)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"diff: written to {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def cmd_obs_regress(args) -> int:
    import json

    from repro.obs.regress import evaluate_history, render_regress_text

    try:
        report = evaluate_history(
            args.history,
            window=args.window,
            min_samples=args.min_samples,
            threshold=args.threshold,
            noise_rel=args.noise,
            mad_mult=args.mad_mult,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if args.json:
        pathlib.Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"verdicts: written to {args.json} "
              "(validate with repro obs check)", file=sys.stderr)
    if args.format == "json":
        print(json.dumps(report, indent=2))
    else:
        print(render_regress_text(report, verbose=args.verbose))
    if report["counts"]["regressed"] and not args.report_only:
        return 5
    return 0


def cmd_obs_check(args) -> int:
    from repro.obs.check import main as check_main

    return check_main(list(args.paths))


def cmd_convert(args) -> int:
    g = load_graph(args.graph)
    if args.traditional:
        converted = traditional_hsdf(g)
        print(f"traditional HSDF: {converted.actor_count()} actors, "
              f"{converted.edge_count()} edges (= sum of repetition vector)")
    else:
        conversion = convert_to_hsdf(g)
        converted = conversion.graph
        n = len(conversion.token_ids)
        print(f"compact HSDF: {conversion.actor_count} actors "
              f"(bound N(N+2) = {n * (n + 2)}), {conversion.edge_count} edges, "
              f"{conversion.token_count} tokens")
    if args.output:
        save_graph(converted, args.output)
        print(f"written to {args.output}")
    return 0


def cmd_abstract(args) -> int:
    g = load_graph(args.graph)
    abstraction = discover_abstraction(g, strategy=args.strategy)
    groups = abstraction.groups()
    print(f"discovered {len(groups)} groups over {g.actor_count()} actors "
          f"(N = {abstraction.phase_count} phases)")
    for name, members in sorted(groups.items()):
        preview = ", ".join(members[:4]) + (", …" if len(members) > 4 else "")
        print(f"  {name}: {len(members)} actors ({preview})")
    abstract = prune_redundant_edges(abstract_graph(g, abstraction))
    print(f"abstract graph: {abstract.actor_count()} actors, {abstract.edge_count()} edges")
    if args.verify:
        cert = verify_abstraction(g, abstraction, check_dominance=not args.no_dominance)
        print(f"exact cycle time:  {_fmt(cert.original_cycle_time)}")
        print(f"abstract bound:    {_fmt(cert.bound_cycle_time)}")
        print(f"conservative:      {cert.conservative}")
        if cert.relative_error is not None:
            print(f"relative error:    {_fmt(cert.relative_error)}")
    if args.output:
        save_graph(abstract, args.output)
        print(f"written to {args.output}")
    return 0


def cmd_bottleneck(args) -> int:
    from repro.analysis.bottleneck import bottleneck

    g = load_graph(args.graph)
    report = bottleneck(g)
    print(report.describe())
    if report.bounded and report.slack_per_token is not None:
        print(f"best case with one extra critical token: period "
              f"{_fmt(report.slack_per_token)}")
    return 0


def cmd_schedule(args) -> int:
    from repro.analysis.periodic_schedule import rate_optimal_schedule

    g = load_graph(args.graph)
    schedule = rate_optimal_schedule(g)
    print(f"rate-optimal static periodic schedule, period {_fmt(schedule.period)}")
    for (actor, index), offset in sorted(
        schedule.offsets.items(), key=lambda kv: (kv[1], kv[0])
    ):
        print(f"  t = {str(offset):>8}  {actor}#{index}")
    return 0


def load_csdf(spec: str):
    import pathlib as _pathlib

    from repro.csdf.io import from_json as csdf_from_json

    return csdf_from_json(_pathlib.Path(spec).read_text())


def cmd_csdf(args) -> int:
    from repro.analysis.throughput import throughput as sdf_throughput
    from repro.csdf import (
        csdf_repetition_vector,
        csdf_throughput,
        csdf_to_hsdf,
        is_csdf_live,
    )
    from repro.csdf.analysis import is_csdf_consistent

    g = load_csdf(args.graph)
    print(f"CSDF graph: {g.name}: {g.actor_count()} actors, "
          f"{g.edge_count()} edges, {g.total_tokens()} tokens")
    if not is_csdf_consistent(g):
        print("inconsistent: no repetition vector exists")
        return 1
    gamma = csdf_repetition_vector(g)
    print(f"repetition vector (firings): {gamma}")
    if not is_csdf_live(g):
        print("deadlocked: no iteration completes")
        return 1
    result = csdf_throughput(g)
    print(f"iteration period: {_fmt(result.cycle_time)}")
    for actor, rate in result.per_actor.items():
        print(f"  rate({actor}) = {_fmt(rate)}")
    conversion = csdf_to_hsdf(g)
    print(f"compact HSDF: {conversion.actor_count} actors "
          f"(phase expansion: {sum(gamma.values())})")
    if args.output:
        save_graph(conversion.graph, args.output)
        print(f"written to {args.output}")
    return 0


def cmd_map(args) -> int:
    from repro.mapping import (
        greedy_load_balance,
        mapped_throughput,
        processor_utilisation,
        sweep_processor_counts,
    )

    g = load_graph(args.graph)
    if args.processors:
        mapping = greedy_load_balance(g, args.processors)
        result = mapped_throughput(g, mapping)
        print(f"{args.processors} processors: guaranteed period {_fmt(result.cycle_time)}")
        for processor, value in sorted(processor_utilisation(g, mapping).items()):
            actors = sorted(a for a, p in mapping.assignment.items() if p == processor)
            print(f"  {processor}: utilisation {float(value):.2f}  ({', '.join(actors)})")
        return 0
    print(f"{'procs':>6} {'guaranteed period':>18} {'speedup':>8}")
    points = sweep_processor_counts(g, max_processors=args.max_processors)
    base = points[0].cycle_time
    for point in points:
        print(f"{point.processors:>6} {str(point.cycle_time):>18} "
              f"{float(base / point.cycle_time):>7.2f}x")
    return 0


def cmd_lint(args) -> int:
    from repro.analysis.cache import default_cache
    from repro.lint import (
        lint_csdf,
        load_baseline,
        load_config,
        render_json,
        render_sarif,
        render_text,
        rule_codes,
        run_lint,
        write_baseline,
    )

    def split_codes(raw):
        if not raw:
            return ()
        codes = tuple(code.strip() for code in raw.split(",") if code.strip())
        unknown = [code for code in codes if code not in rule_codes()]
        if unknown:
            print(
                f"error: unknown rule code(s) {', '.join(unknown)}; "
                f"registered: {', '.join(rule_codes())}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return codes

    config = load_config(args.config).merged(
        select=split_codes(args.select),
        ignore=split_codes(args.ignore),
        baseline=args.baseline,
    )

    if args.csdf:
        reports = [lint_csdf(load_csdf(spec), config=config) for spec in args.graphs]
    else:
        graphs = []
        if args.registry:
            graphs += [case.build() for case in TABLE1_CASES]
        graphs += [load_graph(spec) for spec in args.graphs]
        cache = default_cache()
        reports = [run_lint(g, config=config, cache=cache) for g in graphs]
    if not reports:
        print("error: no graphs given (pass specs and/or --registry)", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, reports)
        print(
            f"baseline written to {args.write_baseline} ({count} finding(s))",
            file=sys.stderr,
        )
    if config.baseline:
        reports = [r.without_fingerprints(load_baseline(config.baseline)) for r in reports]

    render = {"text": render_text, "json": render_json, "sarif": render_sarif}
    text = render[args.format](reports)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"written to {args.output}", file=sys.stderr)
    else:
        print(text)

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.fail_on == "never":
        return 0
    if errors:
        return 2
    if warnings and args.fail_on == "warning":
        return 1
    return 0


def cmd_devlint(args) -> int:
    from repro.devlint import CONFIG_FILENAME, DEVLINT, run_devlint
    from repro.lint import (
        load_baseline,
        load_config,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )
    from repro.lint.config import LintConfig

    codes = DEVLINT.rule_codes()

    def split_codes(raw):
        if not raw:
            return ()
        selected = tuple(code.strip() for code in raw.split(",") if code.strip())
        unknown = [code for code in selected if code not in codes]
        if unknown:
            print(
                f"error: unknown rule code(s) {', '.join(unknown)}; "
                f"registered: {', '.join(codes)}",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return selected

    config = load_config(args.config, filename=CONFIG_FILENAME).merged(
        select=split_codes(args.select),
        ignore=split_codes(args.ignore),
        baseline=args.baseline,
    )

    paths = args.paths or ["src/repro"]
    reports = run_devlint(paths, config=config)
    if not reports:
        print("error: no Python files under the given paths", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(args.write_baseline, reports)
        print(
            f"baseline written to {args.write_baseline} ({count} finding(s))",
            file=sys.stderr,
        )
    if config.baseline:
        fingerprints = load_baseline(config.baseline)
        reports = [r.without_fingerprints(fingerprints) for r in reports]

    rules = DEVLINT.all_rules()
    render = {
        "text": lambda rs: render_text(rs, skip_clean=True),
        "json": lambda rs: render_json(rs, tool_name="repro-devlint"),
        "sarif": lambda rs: render_sarif(rs, rules=rules,
                                         tool_name="repro-devlint"),
    }
    text = render[args.format](reports)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n")
        print(f"written to {args.output}", file=sys.stderr)
    else:
        print(text)

    errors = sum(len(r.errors) for r in reports)
    warnings = sum(len(r.warnings) for r in reports)
    if args.fail_on == "never":
        return 0
    if errors:
        return 2
    if warnings and args.fail_on == "warning":
        return 1
    return 0


def cmd_gantt(args) -> int:
    from fractions import Fraction

    from repro.sdf.gantt import gantt

    g = load_graph(args.graph)
    print(gantt(g, Fraction(args.horizon), width=args.width))
    return 0


def cmd_dot(args) -> int:
    g = load_graph(args.graph)
    text = to_dot(g)
    if args.output:
        pathlib.Path(args.output).write_text(text)
        print(f"written to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_table1(args) -> int:
    print(f"{'test case':<26} {'traditional':>11} {'new':>6} {'ratio':>8}")
    for case in TABLE1_CASES:
        g = case.build()
        traditional = iteration_length(g)
        compact = convert_to_hsdf(g)
        print(f"{f'{case.index}. {case.name}':<26} {traditional:>11} "
              f"{compact.actor_count:>6} {traditional / compact.actor_count:>8.2f}")
    return 0


def cmd_builtins(args) -> int:
    for name in sorted(BUILTIN_GRAPHS):
        print(f"builtin:{name}")
    return 0


def _add_observability_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", metavar="FILE",
                   help="record a trace of the run: Chrome trace_event JSON "
                        "(open in chrome://tracing or ui.perfetto.dev), or "
                        "one span per line when FILE ends in .jsonl")
    p.add_argument("--metrics", metavar="FILE",
                   help="dump the metrics registry after the run: Prometheus "
                        "text for .prom/.txt, JSON snapshot otherwise")


@contextlib.contextmanager
def _observe(args):
    """Arm ``--trace``/``--metrics`` around a command and write the
    artefacts on the way out (also on error, so a failed run still
    leaves its trace behind)."""
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    if not trace_path and not metrics_path:
        yield
        return
    from repro.obs.trace import Tracer

    tracer = Tracer().install() if trace_path else None
    try:
        yield
    finally:
        if tracer is not None:
            tracer.uninstall()
            if str(trace_path).endswith(".jsonl"):
                count = tracer.write_jsonl(trace_path)
                print(f"trace: {count} span(s) written to {trace_path}",
                      file=sys.stderr)
            else:
                count = tracer.write_chrome_trace(trace_path)
                print(f"trace: {count} event(s) written to {trace_path} "
                      "(load in chrome://tracing or ui.perfetto.dev)",
                      file=sys.stderr)
        if metrics_path:
            from repro.analysis.cache import default_cache
            from repro.obs.metrics import default_registry

            registry = default_registry()
            default_cache().register_metrics(registry)
            registry.write(metrics_path)
            print(f"metrics: written to {metrics_path}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="SDF graph reduction and analysis (Geilen, DAC 2009 reproduction)",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="structural facts and consistency")
    p.add_argument("graph")
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("throughput", help="exact throughput analysis")
    p.add_argument("graph")
    p.add_argument("--method", choices=("symbolic", "simulation", "hsdf"),
                   default="symbolic")
    p.add_argument("--kernel", choices=("auto", "numpy", "exact"),
                   default="auto",
                   help="compute kernel: numpy (vectorized, exact-certified), "
                        "exact (pure-python Fractions) or auto (numpy when "
                        "available); results are identical either way")
    p.add_argument("--lint", action="store_true",
                   help="lint first; refuse graphs with error findings")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="cooperative deadline for the analysis")
    p.add_argument("--fallback", action="store_true",
                   help="on timeout, degrade through the tiered policy "
                        "(exact -> symbolic -> Theorem-1 conservative bound)")
    _add_observability_args(p)
    p.set_defaults(func=cmd_throughput)

    p = sub.add_parser(
        "profile",
        help="per-stage wall/CPU/peak-memory cost of the throughput back-ends "
             "(symbolic conversion vs classical HSDF expansion)",
    )
    p.add_argument("graph")
    p.add_argument("--method", nargs="+",
                   choices=("symbolic", "simulation", "hsdf"),
                   default=["symbolic", "hsdf"],
                   help="back-ends to profile (default: symbolic hsdf)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="text table or a repro-profile-v1 JSON document")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "explain",
        help="how a throughput number was produced: reduction steps, "
             "fallback tiers and an independently checkable "
             "critical-cycle witness (repro-provenance-v1)",
    )
    p.add_argument("graph")
    p.add_argument("--method", choices=("symbolic", "simulation", "hsdf"),
                   default="symbolic")
    p.add_argument("--kernel", choices=("auto", "numpy", "exact"),
                   default="auto",
                   help="compute kernel (recorded in the provenance "
                        "certificate; see docs/kernels.md)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="cooperative deadline (exit 3 on timeout)")
    p.add_argument("--fallback", action="store_true",
                   help="analyse through the tiered policy and explain the "
                        "whole chain (tier history, degradation reason)")
    p.add_argument("--stages", nargs="+", metavar="STAGE",
                   choices=("simulation", "symbolic", "hsdf", "abstraction"),
                   help="restrict the policy to these tiers (implies "
                        "--fallback); e.g. --stages abstraction forces the "
                        "Theorem-1 conservative bound")
    p.add_argument("--json", metavar="FILE",
                   help="write the repro-provenance-v1 certificate "
                        "(validate with python -m repro.obs.check)")
    p.add_argument("--html", metavar="FILE",
                   help="write a self-contained HTML report (step table, "
                        "highlighted critical cycle, tier timeline)")
    p.add_argument("--dot", metavar="FILE",
                   help="write the graph as DOT with the critical cycle "
                        "highlighted")
    p.add_argument("--require-witness", action="store_true",
                   help="exit 4 unless the record carries a witness that "
                        "verifies against the graph")
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser("batch", help="analyse many graphs concurrently (cached)")
    p.add_argument("graphs", nargs="*", metavar="graph",
                   help="graph files or builtin:<name> specs")
    p.add_argument("--registry", action="store_true",
                   help="include all Table-1 registry graphs")
    p.add_argument("--analysis", nargs="+",
                   choices=("repetition", "throughput", "latency",
                            "symbolic_iteration"),
                   default=["throughput"])
    p.add_argument("--method", choices=("symbolic", "simulation", "hsdf"),
                   default="symbolic", help="throughput back-end")
    p.add_argument("--kernel", choices=("auto", "numpy", "exact"),
                   default="auto",
                   help="compute kernel for throughput analyses; cache "
                        "entries and journals are shared across kernels")
    p.add_argument("--backend", choices=("thread", "process", "serial"),
                   default="thread")
    p.add_argument("--workers", type=int, default=4)
    p.add_argument("--lint", choices=("error", "warning"), default=None,
                   help="pre-analysis lint gate: fail graphs with findings "
                        "at this severity before analysing them")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-graph cooperative deadline")
    p.add_argument("--retries", type=int, default=0,
                   help="retries (with backoff) for transient failures")
    p.add_argument("--journal", metavar="FILE",
                   help="append every finished graph to this crash-safe "
                        "JSONL journal")
    p.add_argument("--resume", metavar="JOURNAL",
                   help="skip graphs this journal records as completed and "
                        "keep journaling to it")
    p.add_argument("--store", metavar="DIR",
                   help="durable result store: serve repeat analyses from "
                        "disk and publish new results crash-consistently "
                        "(shared with process-backend workers; inspect with "
                        "'repro cache')")
    p.add_argument("--inject", action="append", metavar="SPEC", default=[],
                   help="deterministic fault injection, e.g. "
                        "'name=modem:kill', 'p=0.2:raise:"
                        "TransientWorkerError@1', 'fp=sdfg-v1:ab:hang' "
                        "(repeatable)")
    p.add_argument("--fault-seed", type=int, default=0,
                   help="seed for probabilistic fault selectors")
    _add_observability_args(p)
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "cache",
        help="inspect and maintain a durable result store "
             "(see docs/robustness.md for the durability model)",
    )
    cache_sub = p.add_subparsers(dest="action", required=True)

    def _store_arg(sp):
        sp.add_argument("--store", metavar="DIR", required=True,
                        help="root directory of the result store")

    sp = cache_sub.add_parser("stats", help="record census and size budget")
    _store_arg(sp)
    sp.add_argument("--json", action="store_true",
                    help="print a repro-store-stats-v1 JSON document")
    sp.set_defaults(func=cmd_cache)

    sp = cache_sub.add_parser(
        "verify",
        help="re-check every record's checksum, key echo and payload; "
             "quarantine corrupt ones (exit 1 if any corruption survives "
             "undetected or the journal disagrees)",
    )
    _store_arg(sp)
    sp.add_argument("--json", metavar="FILE",
                    help="write a repro-store-verify-v1 report (validate "
                         "with python -m repro.obs.check)")
    sp.add_argument("--journal", metavar="FILE",
                    help="also check every ok-journaled analysis has a "
                         "valid store record (journal ⊆ store)")
    sp.add_argument("--no-quarantine", action="store_true",
                    help="report corrupt records but leave them in place")
    sp.set_defaults(func=cmd_cache)

    sp = cache_sub.add_parser("purge", help="delete records")
    _store_arg(sp)
    sp.add_argument("--analysis", metavar="NAME",
                    help="only records of this analysis")
    sp.add_argument("--quarantine", action="store_true",
                    help="only the quarantine directory")
    sp.set_defaults(func=cmd_cache)

    sp = cache_sub.add_parser(
        "compact", help="sweep tmp garbage and evict LRU records to budget"
    )
    _store_arg(sp)
    sp.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="size budget to compact down to (default 256 MiB)")
    sp.set_defaults(func=cmd_cache)

    p = sub.add_parser(
        "obs",
        help="consume the emitted telemetry: trace analytics, "
             "flamegraphs, A/B diffs, the benchmark regression sentinel "
             "and schema checks (see docs/observability.md)",
    )
    obs_sub = p.add_subparsers(dest="action", required=True)

    sp = obs_sub.add_parser(
        "analyze",
        help="reconstruct span trees from trace files (Chrome trace or "
             "span JSONL), attribute self time per (stage, graph, kernel) "
             "and extract the critical path (repro-trace-summary-v1)",
    )
    sp.add_argument("traces", nargs="+", metavar="TRACE",
                    help="trace files from --trace (Chrome JSON or .jsonl); "
                         "several runs aggregate into one percentile table")
    sp.add_argument("--format", choices=("text", "json"), default="text",
                    help="terminal report or the raw summary document")
    sp.add_argument("--json", metavar="FILE",
                    help="also write the repro-trace-summary-v1 document")
    sp.add_argument("--top", type=int, default=20,
                    help="stage rows to show in the text report (default 20)")
    sp.set_defaults(func=cmd_obs_analyze)

    sp = obs_sub.add_parser(
        "flame",
        help="collapsed-stack flamegraph (self-time µs per unique span "
             "stack; render with flamegraph.pl or speedscope.app)",
    )
    sp.add_argument("traces", nargs="+", metavar="TRACE")
    sp.add_argument("-o", "--output", metavar="FILE",
                    help="write the .folded file (default: stdout)")
    sp.set_defaults(func=cmd_obs_flame)

    sp = obs_sub.add_parser(
        "diff",
        help="structural A/B diff of two trace summaries or two "
             "repro-metrics-v1 snapshots, with noise-floored relative "
             "deltas (repro-trace-diff-v1)",
    )
    sp.add_argument("a", help="baseline document (JSON)")
    sp.add_argument("b", help="candidate document (JSON)")
    sp.add_argument("--format", choices=("text", "json", "html"),
                    default="text")
    sp.add_argument("--noise", type=float, default=0.05, metavar="FRACTION",
                    help="relative changes below this magnitude are "
                         "published as unchanged (default 0.05)")
    sp.add_argument("-o", "--output", metavar="FILE",
                    help="write the rendering to a file")
    sp.set_defaults(func=cmd_obs_diff)

    sp = obs_sub.add_parser(
        "regress",
        help="statistical regression sentinel over the benchmark history "
             "journal: per-(suite, entry) robust baselines (median + MAD "
             "over host-compatible samples), exit 5 on any regression "
             "(repro-regress-v1)",
    )
    sp.add_argument("--history", metavar="FILE",
                    default="benchmarks/results/history.jsonl",
                    help="history journal "
                         "(default benchmarks/results/history.jsonl)")
    sp.add_argument("--window", type=int, default=20, metavar="K",
                    help="rolling baseline window (default 20)")
    sp.add_argument("--min-samples", dest="min_samples", type=int, default=3,
                    metavar="N",
                    help="host-compatible priors needed for a verdict "
                         "(default 3)")
    sp.add_argument("--threshold", type=float, default=0.25,
                    metavar="FRACTION",
                    help="relative drift that counts as a regression "
                         "(default 0.25)")
    sp.add_argument("--noise", type=float, default=0.20, metavar="FRACTION",
                    help="MAD/|median| above this marks a series noisy "
                         "(default 0.20)")
    sp.add_argument("--mad-mult", dest="mad_mult", type=float, default=4.0,
                    metavar="X",
                    help="widen the threshold to X times the series' own "
                         "MAD (default 4.0)")
    sp.add_argument("--format", choices=("text", "json"), default="text")
    sp.add_argument("--json", metavar="FILE",
                    help="also write the repro-regress-v1 document")
    sp.add_argument("--report-only", dest="report_only", action="store_true",
                    help="always exit 0 (report without gating)")
    sp.add_argument("-v", "--verbose", action="store_true",
                    help="also list ok / insufficient-data series")
    sp.set_defaults(func=cmd_obs_regress)

    sp = obs_sub.add_parser(
        "check",
        help="validate observability/benchmark artefacts against their "
             "schemas (alias of python -m repro.obs.check)",
    )
    sp.add_argument("paths", nargs="+", metavar="ARTEFACT")
    sp.set_defaults(func=cmd_obs_check)

    p = sub.add_parser("latency", help="single-iteration latency")
    p.add_argument("graph")
    p.set_defaults(func=cmd_latency)

    p = sub.add_parser("convert", help="SDF-to-HSDF conversion")
    p.add_argument("graph")
    p.add_argument("--traditional", action="store_true",
                   help="classical expansion instead of the compact conversion")
    p.add_argument("-o", "--output", help=".json, .xml or .dot file to write")
    p.set_defaults(func=cmd_convert)

    p = sub.add_parser("abstract", help="discover and apply an abstraction")
    p.add_argument("graph")
    p.add_argument("--strategy", choices=("name", "structural"), default="name")
    p.add_argument("--verify", action="store_true",
                   help="verify conservativity (Theorem 1) numerically")
    p.add_argument("--no-dominance", action="store_true",
                   help="skip the Proposition-1 dominance check (large graphs)")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_abstract)

    p = sub.add_parser("map", help="multiprocessor mapping sweep / analysis")
    p.add_argument("graph")
    p.add_argument("--processors", type=int, default=0,
                   help="analyse one greedy mapping at this processor count")
    p.add_argument("--max-processors", type=int, default=4,
                   help="sweep 1..N processors (default 4)")
    p.set_defaults(func=cmd_map)

    p = sub.add_parser("csdf", help="analyse a cyclo-static (CSDF) JSON graph")
    p.add_argument("graph")
    p.add_argument("-o", "--output",
                   help="write the compact HSDF equivalent (.json/.xml/.dot)")
    p.set_defaults(func=cmd_csdf)

    p = sub.add_parser(
        "lint", help="static analysis: structured diagnostics (text/json/sarif)"
    )
    p.add_argument("graphs", nargs="*", metavar="graph",
                   help="graph files or builtin:<name> specs")
    p.add_argument("--registry", action="store_true",
                   help="also lint every Table-1 registry graph")
    p.add_argument("--csdf", action="store_true",
                   help="treat the inputs as CSDF JSON graphs")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default text)")
    p.add_argument("--fail-on", dest="fail_on",
                   choices=("error", "warning", "never"), default="error",
                   help="exit 2 on errors; 'warning' also exits 1 on "
                        "warnings-only; 'never' always exits 0")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated rule codes to run (default: all)")
    p.add_argument("--ignore", metavar="CODES",
                   help="comma-separated rule codes to suppress")
    p.add_argument("--baseline", metavar="FILE",
                   help="subtract the accepted findings in this baseline file")
    p.add_argument("--write-baseline", dest="write_baseline", metavar="FILE",
                   help="write the current findings as a new baseline")
    p.add_argument("--config", metavar="FILE",
                   help="lint config (default: ./.reprolint.json when present)")
    p.add_argument("-o", "--output", help="write the report to a file")
    _add_observability_args(p)
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "devlint",
        help="source-level invariant analyzer over the project's own code",
    )
    p.add_argument("paths", nargs="*", metavar="path",
                   help="files or directories to analyze (default: src/repro)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="output format (default text)")
    p.add_argument("--fail-on", dest="fail_on",
                   choices=("error", "warning", "never"), default="error",
                   help="exit 2 on errors; 'warning' also exits 1 on "
                        "warnings-only; 'never' always exits 0")
    p.add_argument("--select", metavar="CODES",
                   help="comma-separated rule codes to run (default: all)")
    p.add_argument("--ignore", metavar="CODES",
                   help="comma-separated rule codes to suppress")
    p.add_argument("--baseline", metavar="FILE",
                   help="subtract the accepted findings in this baseline file")
    p.add_argument("--write-baseline", dest="write_baseline", metavar="FILE",
                   help="write the current findings as a new baseline")
    p.add_argument("--config", metavar="FILE",
                   help="devlint config (default: ./.reprodevlint.json "
                        "when present)")
    p.add_argument("-o", "--output", help="write the report to a file")
    _add_observability_args(p)
    p.set_defaults(func=cmd_devlint)

    p = sub.add_parser("gantt", help="ASCII Gantt chart of self-timed execution")
    p.add_argument("graph")
    p.add_argument("--horizon", type=int, default=50,
                   help="simulate until this time (default 50)")
    p.add_argument("--width", type=int, default=100)
    p.set_defaults(func=cmd_gantt)

    p = sub.add_parser("bottleneck", help="locate the critical cycle")
    p.add_argument("graph")
    p.set_defaults(func=cmd_bottleneck)

    p = sub.add_parser("schedule", help="rate-optimal static periodic schedule")
    p.add_argument("graph")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("dot", help="Graphviz DOT export")
    p.add_argument("graph")
    p.add_argument("-o", "--output")
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser("table1", help="regenerate Table 1 of the paper")
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser("builtins", help="list built-in graphs")
    p.set_defaults(func=cmd_builtins)

    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with _observe(args):
            return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into a consumer that closed early (e.g. `head`).
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
