"""The FSM-SADF model: scenarios over shared tokens, sequenced by an FSM."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.symbolic import symbolic_iteration
from repro.errors import ValidationError
from repro.maxplus.matrix import MaxPlusMatrix
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class Scenario:
    """One mode of operation: a timed SDF graph over the persistent tokens.

    All scenarios of a model must hold the *same number* of initial
    tokens: the tokens persist across scenario switches and carry the
    timing state from one iteration to the next (conceptually the same
    channels, possibly with different rates/times per scenario).  The
    scenario's behaviour is its max-plus iteration matrix.
    """

    name: str
    graph: SDFGraph

    def matrix(self) -> MaxPlusMatrix:
        return symbolic_iteration(self.graph).matrix


class ScenarioFSM:
    """A finite state machine over scenario labels.

    States are arbitrary hashables; each transition fires one scenario
    iteration.  Every infinite path from the initial state is an
    admissible scenario sequence; worst-case analysis quantifies over
    all of them.
    """

    def __init__(self, initial):
        self.initial = initial
        self._transitions: List[Tuple[object, str, object]] = []
        self._states = {initial}

    def add_transition(self, source, scenario: str, target) -> None:
        self._states.add(source)
        self._states.add(target)
        self._transitions.append((source, scenario, target))

    @property
    def states(self) -> List[object]:
        return list(self._states)

    @property
    def transitions(self) -> List[Tuple[object, str, object]]:
        return list(self._transitions)

    def outgoing(self, state) -> List[Tuple[str, object]]:
        return [(s, t) for (src, s, t) in self._transitions if src == state]

    def scenario_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for _, scenario, _ in self._transitions:
            seen.setdefault(scenario)
        return list(seen)

    def validate(self, scenarios: Dict[str, Scenario]) -> None:
        """Check labels resolve and all scenarios agree on token count."""
        missing = [s for s in self.scenario_names() if s not in scenarios]
        if missing:
            raise ValidationError(f"transitions use unknown scenarios {missing}")
        sizes = {
            name: scenarios[name].graph.total_tokens()
            for name in self.scenario_names()
        }
        if len(set(sizes.values())) > 1:
            raise ValidationError(
                f"scenarios disagree on persistent token count: {sizes}"
            )
        for state in self._states:
            if not self.outgoing(state):
                raise ValidationError(
                    f"state {state!r} has no outgoing transition; infinite "
                    "scenario sequences must exist from every reachable state"
                )

    @classmethod
    def free_choice(cls, scenario_names: Sequence[str]) -> "ScenarioFSM":
        """The FSM allowing any scenario at any time (single state)."""
        fsm = cls("*")
        for name in scenario_names:
            fsm.add_transition("*", name, "*")
        return fsm
