"""Worst-case throughput of FSM-SADF models.

Method (Geilen & Stuijk, the (max,+) automaton view): explore the graph
whose nodes are pairs (FSM state, normalised token-time vector) and
whose edges apply one scenario's matrix; the edge weight is the amount
of time the normalisation strips off.  Any cycle of this graph is a
realisable periodic scenario sequence whose average iteration time is
the cycle's mean weight, and conversely — so the worst-case cycle time
is the graph's maximum cycle mean (Karp per SCC).

The explored space is finite whenever the scenario matrices reach
finitely many normalised vectors from the start vector — true for the
models this theory targets; a node budget guards the rest.  The method
has a genuine blind spot worth knowing: if some admissible scenario
composition *decouples* the tokens into classes with different growth
rates (a reducible product matrix), the classes drift apart linearly,
the normalised vectors never recur, and the exploration reports
:class:`ConvergenceError` instead of an answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConvergenceError, ValidationError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.maxplus.spectral import eigenvalue
from repro.mcm.graphlib import RatioGraph
from repro.mcm.karp import karp_mcm
from repro.scenarios.model import Scenario, ScenarioFSM


@dataclass
class WorstCaseResult:
    """Outcome of the worst-case exploration.

    ``cycle_time`` is the supremum, over infinite admissible scenario
    sequences, of the long-run average time per iteration; ``witness``
    is a realisable periodic scenario sequence attaining it; ``explored``
    the number of (state, vector) pairs visited.
    """

    cycle_time: Optional[Fraction]
    witness: Tuple[str, ...]
    explored: int

    @property
    def throughput(self) -> Optional[Fraction]:
        if self.cycle_time in (None, 0):
            return None
        return 1 / self.cycle_time


def worst_case_cycle_time(
    scenarios: Dict[str, Scenario],
    fsm: ScenarioFSM,
    max_nodes: int = 50_000,
) -> WorstCaseResult:
    """Exact worst-case iteration period of an FSM-SADF model."""
    fsm.validate(scenarios)
    matrices = {name: scenarios[name].matrix() for name in fsm.scenario_names()}
    sizes = {m.nrows for m in matrices.values()}
    size = sizes.pop() if sizes else 0

    start_vector = MaxPlusVector.zeros(size).normalised()
    start = (fsm.initial, start_vector)
    graph = RatioGraph()
    graph.add_node(start)
    frontier = [start]
    seen = {start}
    while frontier:
        if len(seen) > max_nodes:
            raise ConvergenceError(
                f"scenario state space exceeded {max_nodes} nodes; the "
                "normalised vectors do not recur"
            )
        state, vector = frontier.pop()
        for scenario, target in fsm.outgoing(state):
            image = matrices[scenario].apply(vector)
            weight = image.norm()
            if weight == EPSILON:
                raise ValidationError(
                    f"scenario {scenario!r} erases all token timing "
                    "information (all-ε image); model is not well-formed"
                )
            node = (target, image.normalised())
            graph.add_edge((state, vector), node, Fraction(weight), 1, key=scenario)
            if node not in seen:
                seen.add(node)
                frontier.append(node)

    result = karp_mcm(graph)
    if result.value is None:
        return WorstCaseResult(None, (), len(seen))
    witness = tuple(e.key for e in result.cycle)
    return WorstCaseResult(Fraction(result.value), witness, len(seen))


def sequence_cycle_time(
    scenarios: Dict[str, Scenario], sequence: Iterable[str]
) -> Fraction:
    """Long-run average iteration time of one periodic scenario sequence.

    The sequence repeats forever; its rate is eigenvalue(M_sk ⊗ … ⊗ M_s1)
    divided by the sequence length.
    """
    names = list(sequence)
    if not names:
        raise ValidationError("empty scenario sequence")
    product_matrix: Optional[MaxPlusMatrix] = None
    for name in names:
        matrix = scenarios[name].matrix()
        product_matrix = (
            matrix if product_matrix is None else matrix.multiply(product_matrix)
        )
    lam = eigenvalue(product_matrix)
    if lam is None:
        return Fraction(0)
    return Fraction(lam) / len(names)


def enumerate_periodic_sequences(
    fsm: ScenarioFSM, max_length: int
) -> List[Tuple[str, ...]]:
    """All periodic scenario sequences realisable as FSM cycles up to
    ``max_length`` (brute-force oracle for the exploration)."""
    sequences: List[Tuple[str, ...]] = []
    states = fsm.states

    def walk(state, labels, visited_start):
        if labels and state == visited_start:
            sequences.append(tuple(labels))
        if len(labels) >= max_length:
            return
        for scenario, target in fsm.outgoing(state):
            walk(target, labels + [scenario], visited_start)

    for state in states:
        walk(state, [], state)
    # Deduplicate rotations-equal sequences cheaply (keep all: the oracle
    # only needs coverage, duplicates are harmless but wasteful).
    return sequences
