"""Scenario-aware dataflow (FSM-SADF): dynamic behaviour over SDF scenarios.

The paper derives Algorithm 1 "from an algorithm to convert an SDFG into
a MaxPlus matrix [8, 7]" — reference [7] being Geilen's *Synchronous
dataflow scenarios*.  This subpackage implements that companion theory:
an application switches between *scenarios* (each a timed SDF graph over
the same persistent tokens, hence a max-plus matrix), with the admissible
scenario orders given by a finite state machine.  Worst-case throughput
over all infinite admissible scenario sequences is computed by exploring
the finite space of (FSM state, normalised token-time vector) pairs and
taking a maximum cycle mean — the (max,+) automaton approach of
Geilen & Stuijk.
"""

from repro.scenarios.model import Scenario, ScenarioFSM
from repro.scenarios.analysis import (
    WorstCaseResult,
    enumerate_periodic_sequences,
    sequence_cycle_time,
    worst_case_cycle_time,
)

__all__ = [
    "Scenario",
    "ScenarioFSM",
    "WorstCaseResult",
    "enumerate_periodic_sequences",
    "sequence_cycle_time",
    "worst_case_cycle_time",
]
