"""The devlint rule passes.

Each rule is a generator over a :class:`repro.devlint.context.FileContext`
registered into :data:`repro.devlint.registry.DEVLINT`.  The rules encode
the *project invariants* the codebase has accumulated PR by PR — the
exact-Fraction discipline, the cooperative-deadline protocol, the
provenance flight-recorder contract, the lock discipline of the shared
caches — as flow-insensitive AST checks.  Every check is deliberately an
approximation: module scopes (which files a contract covers) are config
options, and intentional exceptions carry ``# devlint: ignore[...]``
suppressions with a reason.

The two suppression-grammar rules (``bad-suppression``,
``unused-suppression``) are emitted by the engine itself; they register
here only so their metadata reaches the SARIF driver and the docs.
"""

from __future__ import annotations

import ast
import pathlib
import re
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.devlint.context import FileContext, FunctionNode, ProjectIndex
from repro.devlint.registry import rule
from repro.lint.diagnostics import ERROR, WARNING

# ---------------------------------------------------------------------------
# Module scopes (all overridable via the config file's "options")
# ---------------------------------------------------------------------------

#: Modules on the exact-Fraction path: no float arithmetic at all.
EXACT_MODULES = ("core/", "mcm/", "maxplus/", "sdf/")

#: The vectorised kernels: floats allowed, equality on them is not.
KERNEL_MODULES = ("kernels/",)

#: Modules whose long-running loops must honour the cooperative deadline.
HOT_MODULES = ("core/", "mcm/", "maxplus/", "kernels/", "sdf/simulation.py")

#: Modules that must stay replay-deterministic.
DETERMINISTIC_MODULES = (
    "core/", "mcm/", "maxplus/", "sdf/", "analysis/", "kernels/",
    "lint/", "devlint/",
)

#: Modules owning crash-consistent on-disk state: every write must
#: follow the durable publish protocol (see docs/robustness.md).
DURABLE_MODULES = ("analysis/store.py", "analysis/journal.py")

#: Modules whose declared artefact schemas must be validatable: a
#: ``*_SCHEMA = "repro-...-vN"`` constant here needs a matching
#: validator routed through ``repro.obs.check``.
SCHEMA_MODULES = ("obs/",)

#: The cooperative-deadline poll methods (``repro.analysis.deadline``).
_POLL_METHODS = {"check", "check_now", "checkpoint", "raise_if_cancelled"}

#: Calls considered too cheap to need a deadline poll around them.
_CHEAP_BUILTINS = {
    "len", "isinstance", "issubclass", "min", "max", "abs", "sum",
    "range", "enumerate", "zip", "sorted", "reversed", "tuple", "list",
    "set", "dict", "frozenset", "repr", "str", "int", "bool", "format",
    "id", "iter", "next", "getattr", "hasattr", "setattr", "divmod",
    "round", "ord", "chr", "Fraction", "gcd", "lcm",
}
_CHEAP_METHODS = {
    "append", "add", "extend", "items", "keys", "values", "get", "pop",
    "popleft", "appendleft", "setdefault", "update", "join", "split",
    "strip", "startswith", "endswith", "index", "count", "insert",
    "remove", "discard", "copy", "gcd", "lcm", "numerator",
    "denominator", "as_integer_ratio",
    # graph topology accessors are dict lookups; unit vectors are O(n)
    "in_edges", "out_edges", "unit",
}

_ARITH_OPS = (
    ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow,
)


# ---------------------------------------------------------------------------
# Small AST predicates
# ---------------------------------------------------------------------------

def _is_float_literal(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is float


def _is_float_cast(node: ast.AST) -> bool:
    """``float(x)`` — excluding the exact sentinels ``float("inf")`` /
    ``float("-inf")`` (IEEE infinities compare exactly, and the max-plus
    layer uses them as the semiring's ε)."""
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "float"):
        return False
    if len(node.args) == 1 and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return False
    return True


def _is_fraction_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else ""
    )
    return name == "Fraction"


def _call_tail(node: ast.Call) -> str:
    """The last name of the called expression (``a.b.c()`` → ``c``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression (``a.b.c`` → "a.b.c")."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    else:
        return ""
    return ".".join(reversed(parts))


def _binop_operands(node: ast.AST) -> Tuple[ast.AST, ...]:
    if isinstance(node, ast.BinOp):
        return (node.left, node.right)
    if isinstance(node, ast.Compare):
        return (node.left, *node.comparators)
    return ()


# ---------------------------------------------------------------------------
# exactness
# ---------------------------------------------------------------------------

@rule(
    code="exactness-discipline",
    category="exactness",
    severity=ERROR,
    summary="no float arithmetic on the exact-Fraction path; kernel "
            "floats never compared for equality",
)
def _exactness_discipline(ctx: FileContext) -> Iterator:
    """Two facets of the exact-arithmetic contract.

    *Exact modules* (``core/``, ``mcm/``, ``maxplus/``, ``sdf/``) carry
    Fractions end to end: any ``float()`` conversion or float-literal
    arithmetic/comparison there silently destroys the exactness
    guarantee the analyses certify.  *Kernel modules* may use floats —
    they search with them — but a float equality comparison is always a
    bug: candidates must be certified through the exact slack API
    (``certification_slack`` / ``certify_*`` in ``kernels.backend``).
    """
    if ctx.in_modules(ctx.scope_option("exact_modules", EXACT_MODULES)):
        for node in ast.walk(ctx.tree):
            if _is_float_cast(node):
                yield ctx.diag(
                    "exactness-discipline",
                    "float() conversion in an exact-arithmetic module; "
                    "keep values as Fraction (kernels/ certify float "
                    "candidates exactly)",
                    node=node,
                    fix="move the conversion into kernels/ behind the "
                        "certify API, or drop it",
                )
            else:
                for operand in _binop_operands(node):
                    if _is_float_literal(operand):
                        yield ctx.diag(
                            "exactness-discipline",
                            "float literal in arithmetic/comparison on "
                            "the exact path; use Fraction "
                            f"({operand.value!r})",
                            node=node,
                        )
                        break
    if ctx.in_modules(ctx.scope_option("kernel_modules", KERNEL_MODULES)):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                operands = _binop_operands(node)
                if any(_is_float_literal(o) or _is_float_cast(o)
                       for o in operands):
                    yield ctx.diag(
                        "exactness-discipline",
                        "float equality comparison in a kernel; certify "
                        "the candidate through the exact tolerance API "
                        "instead",
                        node=node,
                        fix="use certification_slack()/certify_* from "
                            "repro.kernels.backend",
                    )
            elif isinstance(node, ast.Call) and \
                    _dotted(node.func) == "math.isclose":
                yield ctx.diag(
                    "exactness-discipline",
                    "math.isclose in a kernel; kernel candidates are "
                    "certified exactly, not approximately",
                    node=node,
                )


@rule(
    code="fraction-float-mixing",
    category="exactness",
    severity=ERROR,
    summary="Fraction and float mixed in one expression",
)
def _fraction_float_mixing(ctx: FileContext) -> Iterator:
    """Mixing ``Fraction(...)`` with a float in one arithmetic or
    comparison expression coerces the Fraction to float — the single
    most common way exactness leaks.  Applies to every module."""
    for node in ast.walk(ctx.tree):
        operands = _binop_operands(node)
        if not operands:
            continue
        has_fraction = any(_is_fraction_call(o) for o in operands)
        has_float = any(
            _is_float_literal(o) or _is_float_cast(o) for o in operands
        )
        if has_fraction and has_float:
            yield ctx.diag(
                "fraction-float-mixing",
                "expression mixes Fraction(...) with a float operand; "
                "the Fraction is silently coerced to float",
                node=node,
                fix="wrap the float side in Fraction(...) or do the "
                    "whole computation in floats inside kernels/",
            )


# ---------------------------------------------------------------------------
# resilience (cooperative deadlines)
# ---------------------------------------------------------------------------

def _deadline_param(func: ast.AST) -> Optional[ast.arg]:
    """The ``deadline`` parameter of a function, when it is (or may be)
    a :class:`repro.analysis.deadline.Deadline` — an annotation that
    names a different type (e.g. the ``Fraction`` time horizon of
    ``SimulationState.run_until``) opts the function out."""
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.arg != "deadline":
            continue
        if arg.annotation is None:
            return arg
        annotation = ast.unparse(arg.annotation)
        if "Deadline" in annotation:
            return arg
        return None
    return None


def _deadline_aliases(func: ast.AST) -> Set[str]:
    """Names bound to the deadline object inside ``func`` (the parameter
    itself plus simple rebindings like ``d = deadline.sub(1.0)`` or
    ``deadline = deadline or Deadline.after(...)``)."""
    aliases = {"deadline"}
    for _ in range(2):  # two passes resolve alias-of-alias chains
        for node in ast.walk(func):
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                continue
            if any(isinstance(sub, ast.Name) and sub.id in aliases
                   for sub in ast.walk(node.value)):
                aliases.add(node.targets[0].id)
    return aliases


def _polls_or_forwards(node: ast.AST, aliases: Set[str]) -> bool:
    """Whether a subtree polls a deadline alias or forwards one into a
    call (the callee is then responsible for polling)."""
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if (isinstance(func, ast.Attribute) and func.attr in _POLL_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases):
            return True
        for argument in (*sub.args, *(kw.value for kw in sub.keywords)):
            if any(isinstance(a, ast.Name) and a.id in aliases
                   for a in ast.walk(argument)):
                return True
    return False


def _raise_subtrees(node: ast.AST) -> Set[int]:
    """ids of every node under a ``raise`` statement in ``node``."""
    under: Set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Raise):
            for inner in ast.walk(sub):
                under.add(id(inner))
    return under


def _significant_loop(loop: ast.AST) -> bool:
    """Whether a loop can plausibly run long enough to need a poll.

    ``while`` loops always qualify (unbounded by construction).  ``for``
    loops qualify when they contain a nested loop or any call that is
    not a cheap builtin/container method and not part of a ``raise``
    (validation loops that only raise on bad input are exempt)."""
    if isinstance(loop, ast.While):
        return True
    exempt = _raise_subtrees(loop)
    for stmt in loop.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, (ast.For, ast.AsyncFor, ast.While)):
                return True
            if isinstance(sub, ast.Call) and id(sub) not in exempt:
                tail = _call_tail(sub)
                if isinstance(sub.func, ast.Name):
                    if tail not in _CHEAP_BUILTINS:
                        return True
                elif tail not in _CHEAP_METHODS:
                    return True
    return False


def _outermost_loops(func: ast.AST) -> List[ast.AST]:
    loops: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                loops.append(child)
            elif isinstance(child, FunctionNode):
                continue  # nested defs polled under their own contract
            else:
                visit(child)

    for stmt in func.body:
        if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            loops.append(stmt)
        else:
            visit(stmt)
    return loops


@rule(
    code="deadline-polling",
    category="resilience",
    severity=WARNING,
    summary="hot loop accepts a deadline but never polls or forwards it",
)
def _deadline_polling(ctx: FileContext) -> Iterator:
    """The cooperative-deadline contract: a function in a hot module
    that *accepts* a ``deadline`` must consult it — every significant
    loop polls (``check``/``check_now``/``checkpoint``) or forwards the
    deadline into a callee, and the parameter must not be silently
    dropped.  Storing the deadline on ``self`` hands the obligation to
    the methods that read it back."""
    if not ctx.in_modules(ctx.scope_option("hot_modules", HOT_MODULES)):
        return
    for qualname, func in ctx.functions():
        if _deadline_param(func) is None:
            continue
        aliases = _deadline_aliases(func)
        stored = any(
            isinstance(node, ast.Assign)
            and any(isinstance(t, ast.Attribute) for t in node.targets)
            and any(isinstance(sub, ast.Name) and sub.id in aliases
                    for sub in ast.walk(node.value))
            for node in ast.walk(func)
        )
        if stored:
            continue
        used = any(
            isinstance(node, ast.Name) and node.id in aliases
            and isinstance(node.ctx, ast.Load)
            for stmt in func.body for node in ast.walk(stmt)
        )
        if not used:
            yield ctx.diag(
                "deadline-polling",
                f"{qualname} accepts a deadline but never consults it",
                node=func,
                fix="poll deadline.check()/checkpoint() in the work "
                    "loop, or forward the deadline to the callee doing "
                    "the work",
            )
            continue
        for loop in _outermost_loops(func):
            if not _significant_loop(loop):
                continue
            if not _polls_or_forwards(loop, aliases):
                yield ctx.diag(
                    "deadline-polling",
                    f"loop in {qualname} does not poll or forward the "
                    "deadline; a cancelled or expired analysis cannot "
                    "stop here",
                    node=loop,
                    fix="add deadline.check() (strided, cheap) inside "
                        "the loop body",
                )


# ---------------------------------------------------------------------------
# provenance
# ---------------------------------------------------------------------------

#: Primitives that make a call chain "recording": the flight recorder's
#: step API (and the recorder accessor used to attach witnesses).
_RECORD_PRIMITIVES = {"record_step"}

#: Graph-construction markers: a function calling these *builds* a model.
_BUILD_CALLS = {"add_actor", "add_edge"}
_BUILD_CONSTRUCTORS = {"SDFGraph"}

#: Context-manager factories of the tracing/provenance layer.
_SPAN_FACTORIES = {"span", "recording"}


def _builds_graph(func: ast.AST) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            tail = _call_tail(node)
            if isinstance(node.func, ast.Attribute) and tail in _BUILD_CALLS:
                return True
            if tail in _BUILD_CONSTRUCTORS:
                return True
    return False


@rule(
    code="provenance-hygiene",
    category="provenance",
    severity=WARNING,
    summary="reduction entry point records no step; span used outside "
            "a with-statement",
)
def _provenance_hygiene(ctx: FileContext) -> Iterator:
    """The flight-recorder contract (the provenance layer): every public
    reduction entry point in ``core/`` that builds a result graph must
    reach :func:`repro.obs.provenance.record_step` somewhere in its call
    closure (a flow-insensitive, name-based approximation), and tracing
    spans (:func:`repro.obs.trace.span`, ``recording()``) only ever open
    through ``with`` — a span entered by hand leaks on the error path.
    """
    # Facet (b): spans/recorders must be context-managed — everywhere.
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.Call)
                and _call_tail(node) in _SPAN_FACTORIES):
            continue
        parent = ctx.parent(node)
        if isinstance(parent, ast.Expr):
            yield ctx.diag(
                "provenance-hygiene",
                f"{_call_tail(node)}(...) creates a context manager "
                "that is immediately dropped; open it with a "
                "with-statement",
                node=node,
            )
        elif (isinstance(parent, ast.Attribute)
              and parent.attr == "__enter__"):
            yield ctx.diag(
                "provenance-hygiene",
                f"{_call_tail(node)}(...).__enter__() bypasses the "
                "with-statement; the span leaks if the body raises",
                node=node,
                fix="use `with span(...):` (or ExitStack.enter_context)",
            )

    # Facet (a): core/ entry points that build graphs must record.
    if not ctx.pkg_path.startswith("core/"):
        return
    project = ctx.project
    if project is None:
        project = ProjectIndex()
        project.add_file(ctx)
    recorders = project.closure_reaching(set(_RECORD_PRIMITIVES))
    for stmt in ctx.tree.body:
        if not isinstance(stmt, FunctionNode):
            continue
        if stmt.name.startswith("_"):
            continue
        if not _builds_graph(stmt):
            continue
        if stmt.name in recorders:
            continue
        yield ctx.diag(
            "provenance-hygiene",
            f"public reduction entry point {stmt.name} builds a graph "
            "but never reaches record_step; the provenance certificate "
            "will have a hole",
            node=stmt,
            fix="call record_step(kind, before=..., after=...) once the "
                "result graph is assembled",
        )


# ---------------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------------

def _lock_with(node: ast.AST) -> bool:
    """Whether ``node`` is a ``with`` statement acquiring a lock — its
    context expression is an attribute chain ending in a name containing
    ``lock`` (``self._lock``, ``self._registry._lock``)."""
    if not isinstance(node, (ast.With, ast.AsyncWith)):
        return False
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            expr = expr.func
        if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
            return True
    return False


_LOCK_EXEMPT_METHODS = {
    "__init__", "__new__", "__del__", "__repr__", "__enter__", "__exit__",
}


@rule(
    code="lock-discipline",
    category="concurrency",
    severity=WARNING,
    summary="attribute guarded by a lock elsewhere is accessed unlocked",
)
def _lock_discipline(ctx: FileContext) -> Iterator:
    """A lexical race detector for the shared cache/metrics/trace layers:
    if some method of a class writes ``self.X`` under ``with
    self.<...>lock:``, then ``X`` is *lock-guarded* and every other
    access of ``self.X`` outside a lock (in any non-dunder method) races
    with it.  ``__init__``/``__repr__`` and the context-manager dunders
    are exempt (no concurrent self yet / diagnostic-only)."""
    for class_qual, klass in ctx.classes():
        guarded: Set[str] = set()
        accesses: List[Tuple[str, ast.Attribute, bool, bool]] = []

        for node in ast.walk(klass):
            if not isinstance(node, FunctionNode):
                continue
            func = ctx.enclosing_function(node)  # skip nested defs
            method = node

            def walk(sub: ast.AST, locked: bool) -> None:
                if _lock_with(sub):
                    locked = True
                for child in ast.iter_child_nodes(sub):
                    if isinstance(child, FunctionNode):
                        continue
                    if isinstance(child, ast.Attribute) and \
                            isinstance(child.value, ast.Name) and \
                            child.value.id == "self":
                        is_store = isinstance(child.ctx, ast.Store)
                        parent = ctx.parent(child)
                        if isinstance(parent, ast.Subscript) and \
                                isinstance(parent.ctx, ast.Store):
                            is_store = True
                        accesses.append((method.name, child, locked, is_store))
                        if locked and is_store and \
                                method.name != "__init__":
                            guarded.add(child.attr)
                    walk(child, locked)

            if func is None:  # only walk top-level methods once
                walk(method, False)

        reported: Set[Tuple[str, str]] = set()
        for method_name, attr_node, locked, is_store in accesses:
            if locked or method_name in _LOCK_EXEMPT_METHODS:
                continue
            if attr_node.attr not in guarded:
                continue
            key = (method_name, attr_node.attr)
            if key in reported:
                continue
            reported.add(key)
            verb = "written" if is_store else "read"
            yield ctx.diag(
                "lock-discipline",
                f"self.{attr_node.attr} is {verb} without the lock in "
                f"{class_qual}.{method_name} but assigned under the "
                "lock elsewhere; this races",
                node=attr_node,
                fix="move the access inside `with self._lock:`, or "
                    "suppress with a reason if the caller provably "
                    "holds the lock",
            )


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------

#: Dotted call names that break replay determinism.
_NONDETERMINISTIC_CALLS = {
    "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
    "datetime.datetime.now", "datetime.datetime.utcnow", "date.today",
    "datetime.date.today", "uuid.uuid1", "uuid.uuid4", "os.urandom",
}

#: Module-level ``random.*`` — the unseeded global RNG.
_RANDOM_MODULE = "random"


@rule(
    code="determinism",
    category="determinism",
    severity=ERROR,
    summary="wall-clock or unseeded randomness in an analysis module",
)
def _determinism(ctx: FileContext) -> Iterator:
    """Analyses must be replayable byte for byte: the journal and the
    provenance certificates assume two runs over the same model agree.
    Wall-clock reads (``time.time``, ``datetime.now``) and the global
    RNG are therefore banned in analysis/kernel modules — monotonic
    clocks (``time.monotonic``/``perf_counter``, used by the deadline
    and tracing layers) are fine, and fault injection draws from hashes,
    not ``random``."""
    if not ctx.in_modules(
        ctx.scope_option("deterministic_modules", DETERMINISTIC_MODULES)
    ):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted in _NONDETERMINISTIC_CALLS:
            yield ctx.diag(
                "determinism",
                f"{dotted}() is not replay-deterministic; use "
                "time.monotonic()/perf_counter() for intervals or "
                "derive draws from content hashes",
                node=node,
            )
        elif (isinstance(node.func, ast.Attribute)
              and isinstance(node.func.value, ast.Name)
              and node.func.value.id == _RANDOM_MODULE):
            yield ctx.diag(
                "determinism",
                f"global random.{node.func.attr}() draws from the "
                "unseeded process RNG; thread an explicit "
                "random.Random(seed) through instead",
                node=node,
            )


# ---------------------------------------------------------------------------
# durability
# ---------------------------------------------------------------------------

def _path_mentions_temp(expr: ast.AST) -> bool:
    """Whether a path expression is recognisably a temp location: a name
    or attribute containing ``tmp``/``temp``, or a call whose tail does
    (``self._tmp_path(...)``)."""
    for sub in ast.walk(expr):
        text = ""
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        elif isinstance(sub, ast.Call):
            text = _call_tail(sub)
        if "tmp" in text.lower() or "temp" in text.lower():
            return True
    return False


def _open_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of an ``open(...)`` call, or ``None``
    when it is dynamic (dynamic modes are treated as writes)."""
    mode: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule(
    code="durability-discipline",
    category="durability",
    severity=ERROR,
    summary="durable module writes a final path in place instead of "
            "write-temp → fsync → os.replace",
)
def _durability_discipline(ctx: FileContext) -> Iterator:
    """The crash-consistency contract of the persistence layer
    (``analysis/store.py``, ``analysis/journal.py``): a process may die
    at any instruction, so a file under a durable root must never be
    truncated or created at its final path — a crash mid-write leaves a
    torn file that a later reader can mistake for the real thing.  The
    only blessed publish protocol is write to a temp path, ``fsync`` the
    handle, then ``os.replace`` onto the final name (atomic on POSIX);
    append-only logs may write the final path but must ``fsync`` in the
    same function.  ``Path.write_text``/``write_bytes`` truncate in
    place and are banned outright in durable modules.
    """
    if not ctx.in_modules(ctx.scope_option("durable_modules",
                                           DURABLE_MODULES)):
        return
    for qualname, func in ctx.functions():
        fsyncs = False
        replaces = False
        opens: List[Tuple[ast.Call, Optional[str], ast.AST]] = []
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted == "os.fsync":
                fsyncs = True
            elif dotted in ("os.replace", "os.rename"):
                replaces = True
            elif _call_tail(node) in ("write_text", "write_bytes") \
                    and isinstance(node.func, ast.Attribute):
                yield ctx.diag(
                    "durability-discipline",
                    f"{_call_tail(node)}() in {qualname} truncates its "
                    "target in place; a crash mid-write leaves a torn "
                    "file at the final path",
                    node=node,
                    fix="write to a temp path, os.fsync the handle, "
                        "then os.replace onto the final name",
                )
            elif dotted in ("open", "io.open") and node.args:
                opens.append((node, _open_mode(node), node.args[0]))
        for node, mode, path_expr in opens:
            if mode == "r" or (mode is not None
                               and not set(mode) & {"w", "x", "a", "+"}):
                continue
            appending = mode is not None and "a" in mode \
                and not set(mode) & {"w", "x"}
            if appending:
                if not fsyncs:
                    yield ctx.diag(
                        "durability-discipline",
                        f"append-mode open in {qualname} without "
                        "os.fsync in the same function; the appended "
                        "record is not durable when the process dies",
                        node=node,
                        fix="flush the handle and os.fsync(fileno()) "
                            "before returning",
                    )
                continue
            if not _path_mentions_temp(path_expr):
                yield ctx.diag(
                    "durability-discipline",
                    f"open({ast.unparse(path_expr)!r}-like path, "
                    f"mode {mode!r}) in {qualname} writes a final path "
                    "directly; a reader can observe the torn file",
                    node=node,
                    fix="write to a temp path (name it *tmp*), fsync, "
                        "then os.replace onto the final path",
                )
            elif not (fsyncs and replaces):
                missing = "os.fsync" if not fsyncs else "os.replace"
                yield ctx.diag(
                    "durability-discipline",
                    f"temp-file write in {qualname} never reaches "
                    f"{missing}; the record is either not durable or "
                    "never atomically published",
                    node=node,
                    fix="complete the protocol: write-temp → "
                        "fsync → os.replace",
                )


# ---------------------------------------------------------------------------
# hygiene
# ---------------------------------------------------------------------------

@rule(
    code="broad-except",
    category="hygiene",
    severity=WARNING,
    summary="except clause catches Exception/BaseException (or is bare)",
)
def _broad_except(ctx: FileContext) -> Iterator:
    """Catching ``Exception`` swallows ``AnalysisTimeout``,
    ``AnalysisCancelled`` and plain bugs alike — the resilience layer
    depends on interruptions propagating.  Catch the concrete
    :mod:`repro.errors` type, or suppress with a reason where isolation
    is genuinely the point (the batch runner's per-graph boundary)."""
    broad = {"Exception", "BaseException"}

    def names(expr: Optional[ast.AST]) -> Iterator[str]:
        if expr is None:
            yield "<bare>"
        elif isinstance(expr, ast.Tuple):
            for element in expr.elts:
                yield from names(element)
        else:
            dotted = _dotted(expr)
            if dotted:
                yield dotted

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        caught = [n for n in names(node.type) if n in broad or n == "<bare>"]
        if caught:
            what = "bare except" if caught == ["<bare>"] else \
                f"except {', '.join(caught)}"
            yield ctx.diag(
                "broad-except",
                f"{what} also swallows AnalysisTimeout/AnalysisCancelled "
                "and genuine bugs; catch the concrete repro.errors type",
                node=node,
                fix="narrow to the expected exception type(s), or "
                    "suppress with the isolation rationale",
            )


@rule(
    code="mutable-default",
    category="hygiene",
    severity=ERROR,
    summary="mutable default argument",
)
def _mutable_default(ctx: FileContext) -> Iterator:
    mutable_constructors = {"list", "dict", "set", "bytearray",
                            "defaultdict", "OrderedDict", "Counter", "deque"}
    for qualname, func in ctx.functions():
        defaults = [*func.args.defaults,
                    *(d for d in func.args.kw_defaults if d is not None)]
        for default in defaults:
            bad = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_tail(default) in mutable_constructors
            )
            if bad:
                yield ctx.diag(
                    "mutable-default",
                    f"mutable default argument in {qualname} is shared "
                    "across calls",
                    node=default,
                    fix="default to None and create the container in "
                        "the body",
                )


_SCHEMA_TAG = re.compile(r"^repro-[a-z0-9-]+-v\d+$")


@rule(
    code="schema-validator-sync",
    category="hygiene",
    severity=ERROR,
    summary="declared artefact schema has no validator in obs/check.py",
)
def _schema_validator_sync(ctx: FileContext) -> Iterator:
    """Every artefact schema the obs package declares — a module-level
    ``SCHEMA``/``*_SCHEMA`` constant holding a ``repro-...-vN`` tag —
    must be recognised by :mod:`repro.obs.check`, or CI cannot gate the
    new artefact and the schema silently becomes write-only.  The
    contract is satisfied when the sibling ``check.py`` either repeats
    the literal tag (the "kept in sync" constant idiom) or imports the
    constant by name (the ``from repro.obs.metrics import SCHEMA``
    idiom)."""
    scopes = ctx.scope_option("schema-modules", SCHEMA_MODULES)
    if not ctx.in_modules(scopes) or ctx.pkg_path.endswith("check.py"):
        return
    check_path = pathlib.Path(ctx.path).resolve().parent / "check.py"
    try:
        check_source = check_path.read_text()
    except OSError:
        return
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            targets = [t for t in node.targets if isinstance(t, ast.Name)]
            value = node.value
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not (isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and _SCHEMA_TAG.match(value.value)):
            continue
        for target in targets:
            name = target.id
            if name != "SCHEMA" and not name.endswith("_SCHEMA"):
                continue
            known = (
                value.value in check_source
                or re.search(rf"\b{re.escape(name)}\b", check_source)
            )
            if not known:
                yield ctx.diag(
                    "schema-validator-sync",
                    f"schema {value.value!r} ({name}) is not validatable: "
                    "obs/check.py neither repeats the tag nor imports "
                    "the constant",
                    node=node,
                    fix="add a validate_* function for the new schema and "
                        "route it through check_file",
                )


@rule(
    code="bad-suppression",
    category="hygiene",
    severity=ERROR,
    summary="malformed devlint suppression comment",
)
def _bad_suppression(ctx: FileContext) -> Iterator:
    """Emitted by the engine: a ``# devlint: ignore[...]`` comment that
    names an unknown rule or omits the mandatory reason."""
    return
    yield  # pragma: no cover


@rule(
    code="unused-suppression",
    category="hygiene",
    severity=WARNING,
    summary="suppression comment matched no finding",
)
def _unused_suppression(ctx: FileContext) -> Iterator:
    """Emitted by the engine: a suppression that suppressed nothing —
    the violation it excused was fixed, so the comment must go too."""
    return
    yield  # pragma: no cover
