"""The devlint rule registry.

Devlint rules live in their own :class:`repro.lint.registry.RuleRegistry`
namespace so they never collide with graph-model rules, get their own
documentation page (``docs/devlint.md``) and their own category order.
Categories group the project invariants each rule enforces:

* ``exactness`` — the exact-Fraction discipline (PR 7's kernels made
  every float a *candidate* that must be certified; nothing else in the
  analysis stack may do float arithmetic).
* ``resilience`` — the cooperative-deadline contract of PR 4 (hot loops
  must poll).
* ``provenance`` — the flight-recorder contract of PR 6 (reductions
  record steps; spans open via context managers).
* ``concurrency`` — the lock discipline of the shared cache/metrics/
  trace layers (PRs 2 and 5).
* ``determinism`` — analyses must be replayable: no wall-clock or
  unseeded randomness outside the sanctioned call sites.
* ``durability`` — the crash-consistency contract of the persistence
  layer (journal, result store): files under a durable root publish via
  write-temp → fsync → atomic rename, never by writing the final path
  in place.
* ``hygiene`` — generic Python footguns (broad excepts, mutable
  defaults) plus the suppression-comment grammar itself.
"""

from __future__ import annotations

from repro.lint.registry import RuleRegistry

CATEGORIES = (
    "exactness",
    "resilience",
    "provenance",
    "concurrency",
    "determinism",
    "durability",
    "hygiene",
)

DOC_PAGE = "https://repro-sdf.readthedocs.io/devlint"

#: The one registry all devlint rules register into.
DEVLINT = RuleRegistry(CATEGORIES, models=("source",), doc_page=DOC_PAGE)

#: Decorator shorthand mirroring ``repro.lint.registry.rule``.
rule = DEVLINT.rule
