"""Per-file analysis context for devlint rules.

A :class:`FileContext` wraps one parsed Python source file: the AST with
parent back-links, qualified names for every function/class, the path
relative to the ``repro`` package (which is what the module-scoping
options match against), and the diagnostic factory that stamps physical
locations.  A :class:`ProjectIndex` spans all files of one run and
carries the flow-insensitive call-graph approximations that cross-file
rules (provenance hygiene) need.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.devlint.registry import DEVLINT
from repro.lint.diagnostics import Diagnostic

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def package_path(path: str) -> str:
    """``path`` relative to the ``repro`` package root, posix-style.

    ``src/repro/mcm/karp.py`` → ``mcm/karp.py``; paths outside a
    ``repro`` directory are returned unchanged (fixture files in tests
    simply match no module scope unless the rule covers all files).
    """
    parts = path.replace("\\", "/").split("/")
    for index, part in enumerate(parts[:-1]):
        if part == "repro":
            return "/".join(parts[index + 1:])
    return "/".join(parts)


def module_in(pkg_path: str, scopes: Sequence[str]) -> bool:
    """Whether a package-relative path falls under any scope pattern.

    A pattern ending in ``/`` matches a package prefix; otherwise it
    must name the file exactly.
    """
    for scope in scopes:
        if scope.endswith("/"):
            if pkg_path.startswith(scope):
                return True
        elif pkg_path == scope:
            return True
    return False


class FileContext:
    """One source file under analysis."""

    model = "source"

    def __init__(
        self,
        path: str,
        source: str,
        tree: Optional[ast.Module] = None,
        project: Optional["ProjectIndex"] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = path.replace("\\", "/")
        self.pkg_path = package_path(self.path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self.project = project
        self.options = dict(options or {})
        self._parents: Dict[ast.AST, ast.AST] = {}
        self._qualnames: Dict[ast.AST, str] = {}
        self._index_tree()

    def _index_tree(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        for node in ast.walk(self.tree):
            if isinstance(node, FunctionNode + (ast.ClassDef,)):
                self._qualnames[node] = self._compute_qualname(node)

    def _compute_qualname(self, node: ast.AST) -> str:
        parts = [node.name]
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, FunctionNode + (ast.ClassDef,)):
                parts.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(parts))

    # -- navigation -----------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, FunctionNode):
                return ancestor
        return None

    def qualname(self, node: ast.AST) -> str:
        """Qualified name of a def/class node, or of the innermost
        def/class enclosing any other node (``<module>`` at top level)."""
        if node in self._qualnames:
            return self._qualnames[node]
        for ancestor in self.ancestors(node):
            if ancestor in self._qualnames:
                return self._qualnames[ancestor]
        return "<module>"

    def functions(self) -> List[Tuple[str, ast.AST]]:
        """All function definitions (methods included) with qualnames."""
        return [
            (self._qualnames[node], node)
            for node in ast.walk(self.tree)
            if isinstance(node, FunctionNode)
        ]

    def classes(self) -> List[Tuple[str, ast.ClassDef]]:
        return [
            (self._qualnames[node], node)
            for node in ast.walk(self.tree)
            if isinstance(node, ast.ClassDef)
        ]

    def in_modules(self, scopes: Sequence[str]) -> bool:
        return module_in(self.pkg_path, scopes)

    def scope_option(self, name: str, default: Sequence[str]) -> Tuple[str, ...]:
        """A module-scope list option, overridable via the config file."""
        value = self.options.get(name, default)
        return tuple(value)

    # -- diagnostics ----------------------------------------------------

    def diag(
        self,
        code: str,
        message: str,
        *,
        node: Optional[ast.AST] = None,
        line: Optional[int] = None,
        col: Optional[int] = None,
        severity: Optional[str] = None,
        data: Optional[Dict[str, Any]] = None,
        fix: Optional[str] = None,
        anchor: Optional[str] = None,
    ) -> Diagnostic:
        """A file-anchored diagnostic; location from ``node`` unless
        given explicitly, logical anchor from the enclosing scope."""
        meta = DEVLINT.get_rule(code).meta
        if node is not None:
            line = getattr(node, "lineno", 0) if line is None else line
            col = getattr(node, "col_offset", 0) + 1 if col is None else col
            anchor = self.qualname(node) if anchor is None else anchor
        return Diagnostic(
            code=code,
            severity=severity or meta.default_severity,
            message=message,
            category=meta.category,
            actors=(anchor,) if anchor else (),
            data=data or {},
            fix=fix,
            file=self.path,
            line=line or 0,
            col=col or 0,
        )


class ProjectIndex:
    """Flow-insensitive, name-based call-graph facts for one run.

    ``callees`` maps every function's qualified name (per file) to the
    set of bare names it calls (``f()`` → ``f``, ``x.g()`` → ``g``).
    :meth:`closure_reaching` computes the set of function names whose
    call closure reaches any of a set of primitive names — the
    approximation both the provenance rule ("does this entry point
    record a step, possibly via a helper?") and future rules use.
    """

    def __init__(self) -> None:
        self.callees: Dict[str, Set[str]] = {}

    def add_file(self, ctx: FileContext) -> None:
        for qualname, node in ctx.functions():
            called: Set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    func = sub.func
                    if isinstance(func, ast.Name):
                        called.add(func.id)
                    elif isinstance(func, ast.Attribute):
                        called.add(func.attr)
            # Name-keyed (not path-keyed): cross-module calls resolve by
            # bare name, which is the documented approximation.
            self.callees.setdefault(node.name, set()).update(called)
            self.callees.setdefault(qualname, set()).update(called)

    def closure_reaching(self, primitives: Set[str]) -> Set[str]:
        """Function names whose transitive callees include a primitive."""
        reaching: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, called in self.callees.items():
                if name in reaching:
                    continue
                if called & primitives or called & reaching:
                    reaching.add(name)
                    changed = True
        return reaching
