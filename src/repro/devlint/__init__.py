"""Devlint: the project's own invariant analyzer.

An AST-based static analyzer (stdlib :mod:`ast` + :mod:`tokenize`, no
dependencies) that enforces the cross-cutting code contracts this
codebase accumulated PR by PR: the exact-Fraction discipline, the
cooperative-deadline protocol, the provenance flight-recorder contract,
the lock discipline of the shared caches, replay determinism, and a few
generic hygiene rules.  It shares the diagnostic model, config, baseline
and output formats (text/JSON/SARIF) with :mod:`repro.lint` — same
flags, same exit codes, different subject: the source tree instead of a
dataflow model.

Run it with ``repro devlint [paths]`` (defaults to ``src/repro``); the
rule catalogue lives in ``docs/devlint.md``.
"""

from repro.devlint.engine import (
    CONFIG_FILENAME,
    collect_files,
    lint_source,
    parse_suppressions,
    run_devlint,
)
from repro.devlint.registry import CATEGORIES, DEVLINT, DOC_PAGE

# Importing the rules module registers every rule into DEVLINT.
from repro.devlint import rules as _rules  # noqa: F401

__all__ = [
    "CATEGORIES",
    "CONFIG_FILENAME",
    "DEVLINT",
    "DOC_PAGE",
    "collect_files",
    "lint_source",
    "parse_suppressions",
    "run_devlint",
]
