"""The devlint engine: file collection, suppressions, rule execution.

The engine mirrors the graph-lint engine's contract — rules come from a
registry, findings are :class:`~repro.lint.diagnostics.Diagnostic`
objects in :class:`~repro.lint.diagnostics.LintReport` containers, the
config is a :class:`~repro.lint.config.LintConfig` (select/ignore/
severity/options/baseline all behave identically) — but runs over Python
source files instead of dataflow models.

Suppressions
------------
A finding is suppressed by a comment naming its rule **with a reason**::

    self._evictions += 1  # devlint: ignore[lock-discipline] caller holds the lock

    # devlint: ignore[broad-except] per-graph isolation boundary
    except Exception as error:

A trailing comment covers its own line; a standalone comment covers the
next code line.  Several codes separate with commas.  A suppression that
names an unknown rule or omits the reason is itself a finding
(``bad-suppression``); one that matches nothing is ``unused-suppression``
— so stale excuses cannot accumulate.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import pathlib
import re
import tokenize
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.devlint.context import FileContext, ProjectIndex
from repro.devlint.registry import DEVLINT
from repro.devlint import rules as _rules  # noqa: F401  (registers rules)
from repro.errors import ReproError
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, LintReport

#: Default config filename probed in the working directory (the graph
#: linter's is ``.reprolint.json``; devlint keeps its own namespace).
CONFIG_FILENAME = ".reprodevlint.json"

#: The suppression-comment grammar.
_SUPPRESS_RE = re.compile(
    r"#\s*devlint:\s*ignore\[(?P<codes>[^\]]*)\]\s*(?P<reason>.*)$"
)


@dataclasses.dataclass
class Suppression:
    """One parsed ``# devlint: ignore[...]`` comment."""

    line: int            # the comment's own line
    target: int          # the code line it covers
    codes: Tuple[str, ...]
    reason: str
    used: bool = False


def parse_suppressions(source: str) -> Tuple[List[Suppression], List[str]]:
    """All suppression comments of a file, with tokenize-accurate
    comment detection (a ``#`` inside a string is not a comment).

    Returns ``(suppressions, parse_notes)``; notes record a tokenizer
    failure (the engine then runs with no suppressions for the file).
    """
    comments: List[Tuple[int, int, str]] = []  # (line, col, text)
    code_lines: Set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
            elif token.type not in (
                tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                tokenize.DEDENT, tokenize.ENCODING, tokenize.ENDMARKER,
            ):
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
    except (tokenize.TokenError, IndentationError) as error:
        return [], [f"tokenizer failed: {error}"]

    suppressions: List[Suppression] = []
    for line, col, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
            if code.strip()
        )
        reason = match.group("reason").strip().lstrip("-:").strip()
        if line in code_lines:
            target = line
        else:  # standalone comment: covers the next code line
            later = [l for l in code_lines if l > line]
            target = min(later) if later else line
        suppressions.append(
            Suppression(line=line, target=target, codes=codes, reason=reason)
        )
    return suppressions, []


def _suppression_diagnostics(
    ctx: FileContext, suppressions: Sequence[Suppression]
) -> List[Diagnostic]:
    """``bad-suppression`` / ``unused-suppression`` findings."""
    known = set(DEVLINT.rule_codes())
    findings: List[Diagnostic] = []
    for suppression in suppressions:
        unknown = [c for c in suppression.codes if c not in known]
        if not suppression.codes:
            findings.append(ctx.diag(
                "bad-suppression",
                "suppression names no rule; write "
                "`# devlint: ignore[rule-code] reason`",
                line=suppression.line, col=1, anchor=f"L{suppression.line}",
            ))
            continue
        if unknown:
            findings.append(ctx.diag(
                "bad-suppression",
                f"suppression names unknown rule(s) "
                f"{', '.join(sorted(unknown))}; known: "
                f"{', '.join(sorted(known))}",
                line=suppression.line, col=1, anchor=f"L{suppression.line}",
            ))
        if not suppression.reason:
            findings.append(ctx.diag(
                "bad-suppression",
                "suppression has no reason; every ignore must say why "
                "the invariant does not apply here",
                line=suppression.line, col=1, anchor=f"L{suppression.line}",
            ))
        elif not unknown and not suppression.used:
            findings.append(ctx.diag(
                "unused-suppression",
                f"suppression for {', '.join(suppression.codes)} matched "
                "no finding; the excuse is stale — delete the comment",
                line=suppression.line, col=1, anchor=f"L{suppression.line}",
            ))
    return findings


def _disambiguate(findings: List[Diagnostic]) -> List[Diagnostic]:
    """Suffix the logical anchor of repeated (code, anchor) findings so
    every finding in a file keeps a distinct baseline fingerprint."""
    seen: Dict[Tuple[str, Tuple[str, ...]], int] = {}
    result: List[Diagnostic] = []
    for finding in findings:
        key = (finding.code, finding.actors)
        count = seen.get(key, 0)
        seen[key] = count + 1
        if count and finding.actors:
            finding = dataclasses.replace(
                finding,
                actors=(f"{finding.actors[0]}#{count + 1}",
                        *finding.actors[1:]),
            )
        result.append(finding)
    return result


def lint_source(
    source: str,
    path: str = "<memory>",
    config: Optional[LintConfig] = None,
    project: Optional[ProjectIndex] = None,
) -> LintReport:
    """Run every devlint rule over one source string."""
    config = config or LintConfig()
    try:
        ctx = FileContext(
            path, source, project=project, options=config.option_map
        )
    except SyntaxError as error:
        raise ReproError(f"devlint: {path}: {error}") from error

    raw: List[Diagnostic] = []
    for registered in DEVLINT.all_rules():
        raw.extend(registered.check(ctx))

    suppressions, _notes = parse_suppressions(source)
    kept: List[Diagnostic] = []
    for finding in raw:
        suppressed = False
        for suppression in suppressions:
            if suppression.target == finding.line and \
                    finding.code in suppression.codes:
                suppression.used = True
                # A reasonless/unknown suppression still registers as
                # used but the bad-suppression finding keeps the gate
                # red, so nothing silently disappears.
                suppressed = suppressed or bool(suppression.reason)
        if not suppressed:
            kept.append(finding)
    kept.extend(_suppression_diagnostics(ctx, suppressions))

    severity_map = config.severity_map
    select = set(config.select)
    ignore = set(config.ignore)
    final: List[Diagnostic] = []
    for finding in kept:
        if select and finding.code not in select:
            continue
        if finding.code in ignore:
            continue
        if finding.code in severity_map:
            finding = finding.with_severity(severity_map[finding.code])
        final.append(dataclasses.replace(finding, graph=ctx.path))

    final.sort(key=lambda f: (f.line, f.code, f.actors))
    digest = hashlib.sha256(source.encode()).hexdigest()[:16]
    return LintReport(ctx.path, _disambiguate(final), fingerprint=digest)


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    files: List[str] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            files.extend(
                str(p) for p in sorted(path.rglob("*.py"))
                if "__pycache__" not in p.parts
            )
        elif path.is_file():
            files.append(str(path))
        else:
            raise ReproError(f"devlint: no such file or directory: {raw}")
    # stable order, duplicates removed
    unique: List[str] = []
    seen: Set[str] = set()
    for file in files:
        if file not in seen:
            seen.add(file)
            unique.append(file)
    return unique


def run_devlint(
    paths: Sequence[str], config: Optional[LintConfig] = None
) -> List[LintReport]:
    """Lint every Python file under ``paths`` (files or directories).

    All files are parsed first so cross-file rules see the whole
    project's call graph, then each file is analyzed and reported
    separately (one :class:`LintReport` per file, ``graph`` = path).
    """
    config = config or LintConfig()
    files = collect_files(paths)
    sources: List[Tuple[str, str]] = []
    project = ProjectIndex()
    for file in files:
        try:
            source = pathlib.Path(file).read_text(encoding="utf-8")
        except OSError as error:
            raise ReproError(f"devlint: cannot read {file}: {error}") from error
        sources.append((file, source))
        try:
            project.add_file(FileContext(file, source))
        except SyntaxError as error:
            raise ReproError(f"devlint: {file}: {error}") from error

    return [
        lint_source(source, path=file, config=config, project=project)
        for file, source in sources
    ]
