"""repro — reproduction of "Reduction Techniques for Synchronous Dataflow Graphs".

This package reimplements, from scratch, the system described in

    M. Geilen, "Reduction Techniques for Synchronous Dataflow Graphs",
    Proc. 46th Design Automation Conference (DAC'09), pp. 911-916, 2009.

It contains a complete timed-SDF analysis substrate (repetition vectors,
scheduling, self-timed simulation, the classical SDF-to-HSDF conversion,
max-plus algebra and maximum cycle mean/ratio solvers) plus the paper's two
contributions:

* the conservative *abstraction* transformation (Sections 4-5 of the
  paper): :mod:`repro.core.abstraction`, :mod:`repro.core.unfolding` and
  :mod:`repro.core.conservativity`;
* the *symbolic* SDF-to-HSDF conversion (Section 6, Algorithm 1):
  :mod:`repro.core.symbolic` and :mod:`repro.core.hsdf_conversion`.

Quickstart::

    from repro import SDFGraph, throughput, convert_to_hsdf

    g = SDFGraph("example")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=1)
    g.add_edge("A", "B", production=1, consumption=2, tokens=2)
    g.add_edge("B", "A", production=2, consumption=1, tokens=2)

    print(throughput(g).per_actor["A"])   # exact Fraction, firings/time
    h = convert_to_hsdf(g)                # compact HSDF (Algorithm 1)
"""

from repro.sdf.graph import Actor, Edge, SDFGraph
from repro.sdf.repetition import repetition_vector, is_consistent
from repro.sdf.schedule import sequential_schedule
from repro.sdf.transform import traditional_hsdf
from repro.analysis.throughput import throughput, ThroughputResult
from repro.analysis.latency import latency
from repro.analysis.bottleneck import bottleneck
from repro.analysis.transient import transient_analysis
from repro.analysis.periodic_schedule import rate_optimal_schedule
from repro.analysis.cache import AnalysisCache, default_cache
from repro.analysis.batch import run_batch
from repro.core.abstraction import Abstraction, abstract_graph
from repro.core.unfolding import unfold
from repro.core.conservativity import dominates
from repro.core.hsdf_conversion import convert_to_hsdf, sdf_to_maxplus_matrix
from repro.core.pruning import prune_redundant_edges
from repro.core.grouping import discover_abstraction
from repro.lint import Diagnostic, LintReport, ensure_lint_clean, run_lint

__all__ = [
    "Actor",
    "Edge",
    "SDFGraph",
    "repetition_vector",
    "is_consistent",
    "sequential_schedule",
    "traditional_hsdf",
    "throughput",
    "ThroughputResult",
    "latency",
    "bottleneck",
    "transient_analysis",
    "rate_optimal_schedule",
    "AnalysisCache",
    "default_cache",
    "run_batch",
    "Abstraction",
    "abstract_graph",
    "unfold",
    "dominates",
    "convert_to_hsdf",
    "sdf_to_maxplus_matrix",
    "prune_redundant_edges",
    "discover_abstraction",
    "Diagnostic",
    "LintReport",
    "run_lint",
    "ensure_lint_clean",
]

def _detect_version() -> str:
    """Resolve the package version from its single source of truth.

    ``pyproject.toml`` owns the version.  In a source checkout (the
    normal layout here: ``src/repro/`` next to ``pyproject.toml``) it is
    parsed directly — no tomllib, which 3.10 lacks; for an installed
    distribution :mod:`importlib.metadata` answers instead.
    """
    import pathlib
    import re

    pyproject = pathlib.Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(), re.MULTILINE
        )
        if match:
            return match.group(1)
    except OSError:
        pass
    try:
        from importlib.metadata import version

        return version("repro")
    except (ImportError, OSError):
        # PackageNotFoundError is an ImportError; OSError covers broken
        # metadata directories.
        return "0.0.0+unknown"


__version__ = _detect_version()
