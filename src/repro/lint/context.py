"""Shared, memoized analysis context for one lint pass.

Several rules need the same derived analyses — the repetition vector,
a sequential schedule, strongly connected components.  The context
computes each at most once per pass and remembers negative outcomes
(inconsistency, deadlock) as facts rather than exceptions, so the whole
pass stays near-linear and rules can run *independently*: a rule that
does not require consistency still runs on an inconsistent graph.
"""

from __future__ import annotations

from functools import cached_property
from typing import Any, Dict, List, Optional

from repro.errors import DeadlockError, InconsistentGraphError
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import get_rule


class BaseLintContext:
    """Option store + diagnostic factory shared by all model kinds."""

    #: Which :data:`repro.lint.registry.MODELS` kind this context lints.
    model = "sdf"

    def __init__(self, options: Optional[Dict[str, Any]] = None):
        self.options = dict(options or {})

    def diag(
        self,
        code: str,
        message: str,
        *,
        severity: Optional[str] = None,
        actors=(),
        edges=(),
        data: Optional[Dict[str, Any]] = None,
        fix: Optional[str] = None,
    ) -> Diagnostic:
        """A diagnostic for ``code``, category and default severity
        filled in from the rule's registered metadata."""
        meta = get_rule(code).meta
        return Diagnostic(
            code=code,
            severity=severity or meta.default_severity,
            message=message,
            category=meta.category,
            actors=tuple(actors),
            edges=tuple(edges),
            data=data or {},
            fix=fix,
        )

    def satisfies(self, requirement: str) -> bool:
        """Whether a rule precondition holds (see ``RuleMeta.requires``)."""
        if requirement == "consistent":
            return getattr(self, "gamma", None) is not None
        raise ValueError(f"unknown rule requirement {requirement!r}")


class LintContext(BaseLintContext):
    """Memoized analyses of one SDF graph."""

    model = "sdf"

    def __init__(self, graph, options: Optional[Dict[str, Any]] = None):
        super().__init__(options)
        self.graph = graph

    @cached_property
    def gamma(self) -> Optional[Dict[str, int]]:
        """The repetition vector, or ``None`` when inconsistent (the
        witnessing error is kept in :attr:`inconsistency`)."""
        from repro.sdf.repetition import repetition_vector

        try:
            return repetition_vector(self.graph)
        except InconsistentGraphError as error:
            self.inconsistency = error
            return None

    @cached_property
    def inconsistency(self) -> Optional[InconsistentGraphError]:
        self.gamma  # populates the attribute on failure
        return self.__dict__.get("inconsistency")

    @cached_property
    def schedule(self) -> Optional[List[str]]:
        """A sequential single-iteration schedule, or ``None`` when the
        graph deadlocks (error kept in :attr:`deadlock`) or is
        inconsistent."""
        from repro.sdf.schedule import sequential_schedule

        if self.gamma is None:
            return None
        try:
            return sequential_schedule(self.graph, repetitions=dict(self.gamma))
        except DeadlockError as error:
            self.deadlock = error
            return None

    @cached_property
    def deadlock(self) -> Optional[DeadlockError]:
        self.schedule  # populates the attribute on failure
        return self.__dict__.get("deadlock")

    @cached_property
    def components(self) -> List[List[str]]:
        return self.graph.undirected_components()

    @cached_property
    def sccs(self) -> List[List[str]]:
        return self.graph.strongly_connected_components()


class CSDFLintContext(BaseLintContext):
    """Memoized analyses of one CSDF graph."""

    model = "csdf"

    def __init__(self, graph, options: Optional[Dict[str, Any]] = None):
        super().__init__(options)
        self.graph = graph

    @cached_property
    def gamma(self) -> Optional[Dict[str, int]]:
        from repro.csdf.analysis import csdf_repetition_vector

        try:
            return csdf_repetition_vector(self.graph)
        except InconsistentGraphError as error:
            self.inconsistency = error
            return None

    @cached_property
    def inconsistency(self) -> Optional[InconsistentGraphError]:
        self.gamma
        return self.__dict__.get("inconsistency")

    @cached_property
    def phases_ok(self) -> bool:
        """Whether every edge's rate sequences match its endpoints'
        phase counts (the firing rule is undefined otherwise)."""
        graph = self.graph
        return all(
            len(edge.production) == graph.phase_count(edge.source)
            and len(edge.consumption) == graph.phase_count(edge.target)
            for edge in graph.edges
        )

    @cached_property
    def live(self) -> Optional[bool]:
        """Whether one iteration completes (``None`` when inconsistent
        or when broken phase vectors leave the firing rule undefined)."""
        from repro.csdf.analysis import is_csdf_live

        if self.gamma is None or not self.phases_ok:
            return None
        return is_csdf_live(self.graph)


class ScenarioLintContext(BaseLintContext):
    """Context over an FSM-SADF model: named scenarios plus the FSM."""

    model = "scenario"

    def __init__(self, scenarios, fsm, options: Optional[Dict[str, Any]] = None):
        super().__init__(options)
        self.scenarios = dict(scenarios)
        self.fsm = fsm

    @cached_property
    def reachable_states(self) -> List[Any]:
        seen = {self.fsm.initial}
        frontier = [self.fsm.initial]
        while frontier:
            state = frontier.pop()
            for _, target in self.fsm.outgoing(state):
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return list(seen)

    @cached_property
    def reachable_scenarios(self) -> List[str]:
        """Scenario labels on transitions leaving reachable states."""
        seen: Dict[str, None] = {}
        reachable = set(self.reachable_states)
        for source, scenario, _ in self.fsm.transitions:
            if source in reachable:
                seen.setdefault(scenario)
        return list(seen)
