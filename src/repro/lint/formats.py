"""Diagnostic output formats: text, stable JSON, SARIF 2.1.0.

The JSON shape (``--format json``) is versioned and documented in
``docs/lint.md``; the SARIF emitter targets the SARIF 2.1.0 schema so
reports upload directly to code-scanning UIs (one *run*, one *result*
per finding, rules carried in the tool's driver with their metadata).

The emitters are shared by the graph lint engine and the source-level
:mod:`repro.devlint` analyzer: pass ``rules=``/``tool_name=`` to emit
under a different rule namespace, and findings carrying ``file``/
``line`` anchors render SARIF *physical* locations (clickable in code
scanning) in addition to the logical graph anchors.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.diagnostics import ERROR, INFO, WARNING, LintReport
from repro.lint.registry import RegisteredRule, all_rules

#: Version of the ``--format json`` envelope.
JSON_FORMAT_VERSION = 1

TOOL_NAME = "repro-lint"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

_SARIF_LEVEL = {ERROR: "error", WARNING: "warning", INFO: "note"}


def _tool_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


def render_text(reports: Sequence[LintReport], skip_clean: bool = False) -> str:
    """The human-readable report (what the CLI prints by default).

    ``skip_clean`` collapses clean reports into one summary line — the
    devlint CLI uses it so a 90-file scan prints findings, not 90
    "clean" lines.
    """
    blocks: List[str] = []
    clean = 0
    for report in reports:
        summary = report.summary()
        if report.clean:
            clean += 1
            if not skip_clean:
                blocks.append(f"{report.graph}: clean")
            continue
        lines = [
            f"{report.graph}: {summary['errors']} error(s), "
            f"{summary['warnings']} warning(s)"
        ]
        for finding in report.findings:
            lines.append(f"  {finding}")
            if finding.fix:
                lines.append(f"      fix: {finding.fix}")
        blocks.append("\n".join(lines))
    if skip_clean:
        findings = sum(len(r.findings) for r in reports)
        blocks.append(
            f"{len(reports)} file(s) scanned, {clean} clean, "
            f"{findings} finding(s)"
        )
    return "\n".join(blocks)


def to_json_dict(
    reports: Sequence[LintReport], tool_name: str = TOOL_NAME
) -> Dict[str, Any]:
    """The stable machine-readable envelope of one lint invocation."""
    return {
        "version": JSON_FORMAT_VERSION,
        "tool": {"name": tool_name, "version": _tool_version()},
        "runs": [report.as_dict() for report in reports],
        "summary": {
            "graphs": len(reports),
            "findings": sum(len(r.findings) for r in reports),
            "errors": sum(len(r.errors) for r in reports),
            "warnings": sum(len(r.warnings) for r in reports),
        },
    }


def render_json(
    reports: Sequence[LintReport], tool_name: str = TOOL_NAME
) -> str:
    return json.dumps(
        to_json_dict(reports, tool_name=tool_name),
        indent=2, sort_keys=True, default=str,
    )


def _locations(report: LintReport, finding) -> List[Dict[str, Any]]:
    """SARIF locations: a physical one for file findings, plus one
    logical location per graph/function anchor."""
    locations: List[Dict[str, Any]] = []
    if finding.file:
        region: Dict[str, Any] = {"startLine": finding.line or 1}
        if finding.col:
            region["startColumn"] = finding.col
        locations.append(
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.file},
                    "region": region,
                }
            }
        )
    locations.extend(
        {
            "logicalLocations": [
                {
                    "name": actor,
                    "kind": "member",
                    "fullyQualifiedName": f"{report.graph}::{actor}",
                }
            ]
        }
        for actor in finding.actors
    )
    return locations


def to_sarif(
    reports: Sequence[LintReport],
    rules: Optional[Sequence[RegisteredRule]] = None,
    tool_name: str = TOOL_NAME,
) -> Dict[str, Any]:
    """A SARIF 2.1.0 log: one run, all reports' findings as results.

    Graph findings anchor with *logical locations* (``<graph>::<actor>``);
    devlint findings additionally carry *physical locations* (file +
    line).  ``rules`` defaults to the graph registry — pass the devlint
    registry's rules to emit under the ``repro-devlint`` driver.
    """
    if rules is None:
        rules = all_rules()
    rule_index: Dict[str, int] = {}
    sarif_rules: List[Dict[str, Any]] = []
    for registered in rules:
        meta = registered.meta
        rule_index[meta.code] = len(sarif_rules)
        sarif_rules.append(
            {
                "id": meta.code,
                "name": _pascal(meta.code),
                "shortDescription": {"text": meta.summary},
                "helpUri": meta.doc_url,
                "defaultConfiguration": {
                    "level": _SARIF_LEVEL[meta.default_severity]
                },
                "properties": {"category": meta.category, "model": meta.model},
            }
        )

    results: List[Dict[str, Any]] = []
    for report in reports:
        for finding in report.findings:
            result: Dict[str, Any] = {
                "ruleId": finding.code,
                "level": _SARIF_LEVEL[finding.severity],
                "message": {"text": finding.message},
                "partialFingerprints": {"reproLint/v1": finding.fingerprint},
                "properties": {
                    "graph": report.graph,
                    "category": finding.category,
                    "edges": list(finding.edges),
                    "data": {k: str(v) for k, v in finding.data.items()},
                },
            }
            if finding.code in rule_index:
                result["ruleIndex"] = rule_index[finding.code]
            locations = _locations(report, finding)
            if locations:
                result["locations"] = locations
            if finding.fix:
                result["properties"]["fix"] = finding.fix
            results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": _tool_version(),
                        "informationUri": "https://github.com/repro-sdf/repro",
                        "rules": sarif_rules,
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
            }
        ],
    }


def render_sarif(
    reports: Sequence[LintReport],
    rules: Optional[Sequence[RegisteredRule]] = None,
    tool_name: str = TOOL_NAME,
) -> str:
    return json.dumps(
        to_sarif(reports, rules=rules, tool_name=tool_name),
        indent=2, sort_keys=True, default=str,
    )


def _pascal(code: str) -> str:
    return "".join(part.capitalize() for part in code.split("-"))
