"""Lint configuration: severity overrides, suppressions, baselines.

The on-disk form is ``.reprolint.json`` next to the models (or wherever
``--config`` points)::

    {
        "select": [],                       // only these codes (empty = all)
        "ignore": ["disconnected"],         // suppressed codes
        "severity": {"unread-tokens": "error"},
        "options": {"unfold_budget": 500},
        "baseline": ".reprolint-baseline.json"
    }

A *baseline* is the set of fingerprints of known, accepted findings; a
lint run subtracts it so only new findings gate.  Write one with
``repro lint … --write-baseline FILE`` and adopt it via the config or
``--baseline``.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.lint.diagnostics import severity_rank

#: Default config filename probed in the working directory.
CONFIG_FILENAME = ".reprolint.json"

_BASELINE_VERSION = 1


@dataclass(frozen=True)
class LintConfig:
    """Immutable engine configuration (hashable parts feed the cache key)."""

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    severity: Tuple[Tuple[str, str], ...] = ()
    options: Tuple[Tuple[str, Any], ...] = ()
    baseline: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "select", tuple(self.select))
        object.__setattr__(self, "ignore", tuple(self.ignore))
        severity = tuple(sorted(dict(self.severity).items()))
        for _, level in severity:
            severity_rank(level)
        object.__setattr__(self, "severity", severity)
        object.__setattr__(
            self, "options", tuple(sorted(dict(self.options).items()))
        )

    @classmethod
    def build(
        cls,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
        severity: Optional[Dict[str, str]] = None,
        options: Optional[Dict[str, Any]] = None,
        baseline: Optional[str] = None,
    ) -> "LintConfig":
        return cls(
            select=tuple(select),
            ignore=tuple(ignore),
            severity=tuple((severity or {}).items()),
            options=tuple((options or {}).items()),
            baseline=baseline,
        )

    @property
    def severity_map(self) -> Dict[str, str]:
        return dict(self.severity)

    @property
    def option_map(self) -> Dict[str, Any]:
        return dict(self.options)

    def merged(
        self,
        select: Sequence[str] = (),
        ignore: Sequence[str] = (),
        baseline: Optional[str] = None,
    ) -> "LintConfig":
        """This config with CLI-level overrides applied (non-empty CLI
        ``select``/``ignore`` replace the file's; baseline path wins)."""
        return LintConfig(
            select=tuple(select) or self.select,
            ignore=tuple(ignore) or self.ignore,
            severity=self.severity,
            options=self.options,
            baseline=baseline or self.baseline,
        )

    def cache_params(self) -> Dict[str, Any]:
        """The cache-key contribution of this config: everything that
        changes the computed findings (the baseline does not — it is
        subtracted after the engine runs)."""
        return {
            "config": json.dumps(
                {
                    "select": list(self.select),
                    "ignore": list(self.ignore),
                    "severity": [list(kv) for kv in self.severity],
                    "options": [list(kv) for kv in self.options],
                },
                sort_keys=True,
                default=str,
            )
        }


def load_config(
    path: Optional[str] = None, filename: str = CONFIG_FILENAME
) -> LintConfig:
    """Load ``path`` (or ``./<filename>`` when present; an absent
    default file yields the empty config).  ``filename`` is the default
    probed in the working directory — ``.reprolint.json`` for graph
    lint, ``.reprodevlint.json`` for the devlint analyzer."""
    probe = pathlib.Path(path) if path else pathlib.Path(filename)
    if not probe.exists():
        if path:
            raise ReproError(f"lint config {path!r} not found")
        return LintConfig()
    try:
        raw = json.loads(probe.read_text())
    except json.JSONDecodeError as error:
        raise ReproError(f"lint config {probe}: invalid JSON ({error})") from error
    if not isinstance(raw, dict):
        raise ReproError(f"lint config {probe}: expected a JSON object")
    unknown = set(raw) - {"select", "ignore", "severity", "options", "baseline"}
    if unknown:
        raise ReproError(
            f"lint config {probe}: unknown keys {sorted(unknown)}"
        )
    try:
        return LintConfig.build(
            select=raw.get("select", ()),
            ignore=raw.get("ignore", ()),
            severity=raw.get("severity"),
            options=raw.get("options"),
            baseline=raw.get("baseline"),
        )
    except (TypeError, ValueError) as error:
        raise ReproError(f"lint config {probe}: {error}") from error


def load_baseline(path: str) -> set:
    """The fingerprint set of a baseline file."""
    probe = pathlib.Path(path)
    if not probe.exists():
        raise ReproError(f"lint baseline {path!r} not found")
    try:
        raw = json.loads(probe.read_text())
    except json.JSONDecodeError as error:
        raise ReproError(f"lint baseline {path}: invalid JSON ({error})") from error
    if isinstance(raw, list):  # bare fingerprint list is accepted too
        return set(raw)
    if not isinstance(raw, dict) or "findings" not in raw:
        raise ReproError(
            f"lint baseline {path}: expected a fingerprint list or a "
            '{"version", "findings"} object'
        )
    return {entry["fingerprint"] for entry in raw["findings"]}


def write_baseline(path: str, reports: Iterable) -> int:
    """Write the baseline of every finding in ``reports``; returns the
    number of baselined findings."""
    findings = []
    for report in reports:
        for diagnostic in report.findings:
            findings.append(
                {
                    "fingerprint": diagnostic.fingerprint,
                    "graph": diagnostic.graph or report.graph,
                    "code": diagnostic.code,
                    "message": diagnostic.message,
                }
            )
    payload = {"version": _BASELINE_VERSION, "findings": findings}
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")
    return len(findings)
