"""Pluggable static analysis (lint) for dataflow models.

The engine that subsumed ``repro.sdf.validation``: a rule registry with
per-rule metadata, structured :class:`Diagnostic` findings with graph
anchors and fix-it suggestions, a driver that runs rules in dependency
order over one memoized analysis context, severity/suppression/baseline
configuration, and text / JSON / SARIF 2.1.0 emitters.  See
``docs/lint.md`` for the full diagnostic catalogue.

Quickstart::

    from repro.lint import run_lint

    report = run_lint(graph)
    if not report.ok:
        print(report)          # [error] deadlock: ...
"""

from repro.lint.diagnostics import (
    Diagnostic,
    ERROR,
    INFO,
    LintReport,
    SEVERITIES,
    WARNING,
    severity_rank,
)
from repro.lint.registry import RuleMeta, all_rules, get_rule, rule, rule_codes
from repro.lint.config import (
    CONFIG_FILENAME,
    LintConfig,
    load_baseline,
    load_config,
    write_baseline,
)
from repro.lint.context import (
    CSDFLintContext,
    LintContext,
    ScenarioLintContext,
)
from repro.lint.engine import (
    ensure_lint_clean,
    lint_csdf,
    lint_scenarios,
    run_lint,
)
from repro.lint.rules import check_abstraction_safety
from repro.lint.formats import (
    render_json,
    render_sarif,
    render_text,
    to_json_dict,
    to_sarif,
)

__all__ = [
    "Diagnostic",
    "LintReport",
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "severity_rank",
    "RuleMeta",
    "rule",
    "all_rules",
    "get_rule",
    "rule_codes",
    "LintConfig",
    "CONFIG_FILENAME",
    "load_config",
    "load_baseline",
    "write_baseline",
    "LintContext",
    "CSDFLintContext",
    "ScenarioLintContext",
    "run_lint",
    "lint_csdf",
    "lint_scenarios",
    "ensure_lint_clean",
    "check_abstraction_safety",
    "render_text",
    "render_json",
    "render_sarif",
    "to_json_dict",
    "to_sarif",
]
