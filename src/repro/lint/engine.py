"""The lint driver: run registered rules over a model, cached.

:func:`run_lint` is the SDF entry point every surface (CLI, batch
runner, analysis pre-checks) goes through.  Rules execute in dependency
order — ``structural`` → ``rate`` → ``temporal`` — over one shared
:class:`~repro.lint.context.LintContext`, so the expensive derived
analyses (repetition vector, schedule, SCCs) are computed at most once
per pass and the pass stays near-linear in the graph size.

SDF reports are memoized through the content-addressed
:class:`~repro.analysis.cache.AnalysisCache`: linting an unchanged graph
again is O(1), and any builder mutation changes the fingerprint and
misses the cache.  The cache key includes the config digest, so runs
with different severity overrides or selections do not alias.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.analysis.cache import AnalysisCache, default_cache
from repro.errors import LintError
from repro.lint import rules as _builtin_rules  # noqa: F401  (registers rules)
from repro.lint.config import LintConfig
from repro.lint.context import (
    BaseLintContext,
    CSDFLintContext,
    LintContext,
    ScenarioLintContext,
)
from repro.lint.diagnostics import Diagnostic, LintReport
from repro.lint.registry import all_rules
from repro.obs.metrics import default_registry
from repro.obs.trace import span

__all__ = ["run_lint", "lint_csdf", "lint_scenarios", "ensure_lint_clean"]


def _run_rules(ctx: BaseLintContext, config: LintConfig) -> List[Diagnostic]:
    severity_map = config.severity_map
    selected = set(config.select)
    ignored = set(config.ignore)
    findings: List[Diagnostic] = []
    fired = default_registry().counter(
        "repro_lint_findings_total",
        "Lint findings produced per rule code and severity "
        "(counted when a pass actually runs, not on cache hits).",
        labels=("code", "severity"),
    )
    for registered in all_rules(model=ctx.model):
        meta = registered.meta
        if selected and meta.code not in selected:
            continue
        if meta.code in ignored:
            continue
        if not all(ctx.satisfies(req) for req in meta.requires):
            continue
        for diagnostic in registered.check(ctx):
            override = severity_map.get(diagnostic.code)
            if override:
                diagnostic = diagnostic.with_severity(override)
            findings.append(diagnostic)
            fired.labels(
                code=diagnostic.code, severity=diagnostic.severity
            ).inc()
    return findings


def _finish(name: str, findings: Iterable[Diagnostic], fingerprint=None) -> LintReport:
    import dataclasses

    stamped = tuple(
        dataclasses.replace(f, graph=name) if not f.graph else f for f in findings
    )
    return LintReport(graph=name, findings=stamped, fingerprint=fingerprint)


def run_lint(
    graph,
    config: Optional[LintConfig] = None,
    cache: Optional[AnalysisCache] = None,
    options: Optional[Dict[str, Any]] = None,
) -> LintReport:
    """Lint an SDF graph; returns the (possibly cached) report.

    ``config`` selects/suppresses codes and overrides severities;
    ``options`` feeds extra per-call rule inputs (e.g. a proposed
    ``abstraction``) and *bypasses the cache*, since such inputs are not
    part of the graph's content hash.  Pass ``cache=None`` to use the
    process-wide default cache.
    """
    config = config or LintConfig()

    def compute() -> LintReport:
        with span("lint", graph=graph.name,
                  fingerprint=graph.fingerprint()) as lint_span:
            ctx = LintContext(
                graph, options={**config.option_map, **(options or {})}
            )
            report = _finish(
                graph.name, _run_rules(ctx, config), graph.fingerprint()
            )
            lint_span.set(findings=len(report.findings))
            return report

    if options:
        return compute()
    if cache is None:
        cache = default_cache()
    return cache.get_or_compute(graph, "lint", compute, params=config.cache_params())


def lint_csdf(graph, config: Optional[LintConfig] = None) -> LintReport:
    """Lint a CSDF graph (uncached: CSDF graphs carry no content hash)."""
    config = config or LintConfig()
    ctx = CSDFLintContext(graph, options=config.option_map)
    return _finish(graph.name, _run_rules(ctx, config))


def lint_scenarios(
    scenarios, fsm, config: Optional[LintConfig] = None, name: str = "scenarios"
) -> LintReport:
    """Lint an FSM-SADF model: scenario dict plus scenario FSM."""
    config = config or LintConfig()
    ctx = ScenarioLintContext(scenarios, fsm, options=config.option_map)
    return _finish(name, _run_rules(ctx, config))


def ensure_lint_clean(
    graph,
    cache: Optional[AnalysisCache] = None,
    config: Optional[LintConfig] = None,
    fail_on: str = "error",
) -> LintReport:
    """Lint ``graph`` and raise :class:`repro.errors.LintError` when it
    has findings at or above ``fail_on`` (``"error"`` or ``"warning"``).

    This is the pre-analysis hook: entry points call it before spending
    work on a model that static analysis already knows is broken.  The
    raised error carries the full report.
    """
    report = run_lint(graph, config=config, cache=cache)
    gating = (
        report.errors if fail_on == "error" else report.errors + report.warnings
    )
    if gating:
        summary = "; ".join(str(f) for f in gating[:3])
        more = f" (+{len(gating) - 3} more)" if len(gating) > 3 else ""
        raise LintError(
            f"graph {graph.name!r} fails lint with {len(gating)} "
            f"{fail_on}-level finding(s): {summary}{more}",
            report=report,
        )
    return report
