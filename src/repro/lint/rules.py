"""The built-in lint rules.

Every rule is a small generator over a context (see
:mod:`repro.lint.context`); the registry decorator carries its metadata.
The inventory subsumes the seven historical ``validate_graph`` checks
and adds the paper-aware safety rules: the equal-repetition precondition
of the abstraction (Definitions 3–4), the size-blowup guard that
recommends the symbolic Algorithm-1 conversion path, GCD-reducible
rates, zero-token self-loops, CSDF phase hygiene and FSM-SADF scenario
reachability.

Rules are deliberately independent: a rule that does not require
consistency still runs (and reports) on an inconsistent graph.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.context import (
    BaseLintContext,
    CSDFLintContext,
    LintContext,
    ScenarioLintContext,
)
from repro.lint.diagnostics import Diagnostic, ERROR, WARNING
from repro.lint.registry import rule
from repro.mcm.graphlib import RatioGraph

#: Above this many actors, classical HSDF expansion / N-fold unfolding
#: is flagged as a blowup (override with the ``unfold_budget`` option).
DEFAULT_UNFOLD_BUDGET = 1000


# ---------------------------------------------------------------------------
# SDF · structural
# ---------------------------------------------------------------------------


@rule(
    code="empty",
    category="structural",
    severity=WARNING,
    summary="the graph has no actors",
)
def _empty(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.graph.actor_count() == 0:
        yield ctx.diag("empty", "graph has no actors")


@rule(
    code="disconnected",
    category="structural",
    severity=WARNING,
    summary="multiple weakly connected components (usually a modelling accident)",
)
def _disconnected(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.graph.actor_count() and len(ctx.components) > 1:
        yield ctx.diag(
            "disconnected",
            f"graph has {len(ctx.components)} weakly connected components",
            data={"components": len(ctx.components)},
        )


@rule(
    code="unbounded-actor",
    category="structural",
    severity=WARNING,
    summary="an actor without incoming edges fires unboundedly often",
)
def _unbounded_actor(ctx: LintContext) -> Iterator[Diagnostic]:
    for actor in ctx.graph.actor_names:
        if not ctx.graph.in_edges(actor):
            yield ctx.diag(
                "unbounded-actor",
                f"actor {actor!r} has no incoming edges; its self-timed "
                "firing rate is unbounded and symbolic analyses reject it",
                actors=(actor,),
                fix=f"add a one-token self-edge to {actor!r} "
                "(SDFGraph.with_self_loops does this for every actor)",
            )


@rule(
    code="self-loop-missing-token",
    category="structural",
    severity=ERROR,
    summary="a self-edge with fewer tokens than one firing consumes deadlocks its actor",
)
def _self_loop_missing_token(ctx: LintContext) -> Iterator[Diagnostic]:
    for edge in ctx.graph.edges:
        if edge.is_self_loop and edge.tokens < edge.consumption:
            yield ctx.diag(
                "self-loop-missing-token",
                f"self-edge {edge.name!r} on actor {edge.source!r} holds "
                f"{edge.tokens} initial tokens but a firing consumes "
                f"{edge.consumption}; only the actor itself produces on this "
                "channel, so it can never fire",
                actors=(edge.source,),
                edges=(edge.name,),
                data={"tokens": edge.tokens, "consumption": edge.consumption},
                fix=f"give {edge.name!r} at least {edge.consumption} initial tokens",
            )


@rule(
    code="parallel-redundant-edge",
    category="structural",
    severity=WARNING,
    summary="a parallel edge with the same rates and more tokens is implied by another",
)
def _parallel_redundant_edge(ctx: LintContext) -> Iterator[Diagnostic]:
    binding: Dict[Tuple[str, str, int, int], object] = {}
    for edge in ctx.graph.edges:
        key = (edge.source, edge.target, edge.production, edge.consumption)
        if key not in binding or edge.tokens < binding[key].tokens:
            binding[key] = edge
    for edge in ctx.graph.edges:
        keeper = binding[(edge.source, edge.target, edge.production, edge.consumption)]
        if keeper is not edge:
            yield ctx.diag(
                "parallel-redundant-edge",
                f"edge {edge.name!r} ({edge.source}->{edge.target}, "
                f"{edge.tokens} tokens) is implied by parallel edge "
                f"{keeper.name!r} with {keeper.tokens} tokens; it never binds",
                actors=(edge.source, edge.target),
                edges=(edge.name, keeper.name),
                data={"redundant": edge.name, "binding": keeper.name},
                fix="remove it with repro.core.pruning.prune_redundant_edges",
            )


# ---------------------------------------------------------------------------
# SDF · rate
# ---------------------------------------------------------------------------


@rule(
    code="inconsistent",
    category="rate",
    severity=ERROR,
    summary="the balance equations have no non-trivial solution",
)
def _inconsistent(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.graph.actor_count() and ctx.gamma is None:
        witness = getattr(ctx.inconsistency, "witness_edge", None)
        yield ctx.diag(
            "inconsistent",
            str(ctx.inconsistency),
            edges=(witness.name,) if witness is not None else (),
        )


@rule(
    code="rate-gcd-reducible",
    category="rate",
    severity=WARNING,
    summary="an edge's rates and tokens share a common divisor; the graph is needlessly large",
)
def _rate_gcd_reducible(ctx: LintContext) -> Iterator[Diagnostic]:
    for edge in ctx.graph.edges:
        divisor = gcd(edge.production, edge.consumption, edge.tokens)
        if divisor > 1:
            yield ctx.diag(
                "rate-gcd-reducible",
                f"edge {edge.name!r} has rates {edge.production}/"
                f"{edge.consumption} and {edge.tokens} tokens, all divisible "
                f"by {divisor}; token counts on this channel stay multiples "
                f"of {divisor}, so scaling down preserves every precedence",
                actors=(edge.source, edge.target),
                edges=(edge.name,),
                data={"gcd": divisor},
                fix=f"divide production, consumption and tokens of "
                f"{edge.name!r} by {divisor}",
            )


@rule(
    code="unread-tokens",
    category="rate",
    severity=WARNING,
    summary="initial tokens exceed what one iteration can consume",
    requires=("consistent",),
)
def _unread_tokens(ctx: LintContext) -> Iterator[Diagnostic]:
    for edge in ctx.graph.edges:
        consumed = ctx.gamma[edge.target] * edge.consumption
        if edge.tokens > consumed:
            yield ctx.diag(
                "unread-tokens",
                f"channel {edge.name!r} holds {edge.tokens} initial tokens "
                f"but one iteration consumes only {consumed}; the surplus is "
                "dead weight (or the delay is misplaced)",
                actors=(edge.source, edge.target),
                edges=(edge.name,),
                data={"tokens": edge.tokens, "consumed_per_iteration": consumed},
            )


@rule(
    code="unfolding-blowup",
    category="rate",
    severity=WARNING,
    summary="classical HSDF conversion / unfolding would exceed the size budget",
    requires=("consistent",),
)
def _unfolding_blowup(ctx: LintContext) -> Iterator[Diagnostic]:
    total = sum(ctx.gamma.values())
    budget = int(ctx.options.get("unfold_budget", DEFAULT_UNFOLD_BUDGET))
    if total > budget:
        tokens = ctx.graph.total_tokens()
        yield ctx.diag(
            "unfolding-blowup",
            f"one iteration is {total} firings (budget {budget}); the "
            f"classical SDF-to-HSDF expansion creates {total} actors, while "
            f"the symbolic conversion (Algorithm 1) is bounded by "
            f"N(N+2) = {tokens * (tokens + 2)} in the token count N = {tokens}",
            data={
                "iteration_length": total,
                "budget": budget,
                "symbolic_bound": tokens * (tokens + 2),
            },
            fix="use convert_to_hsdf / throughput(method='symbolic') instead "
            "of traditional_hsdf or large unfolding factors; if even that "
            "is too slow, analyse_with_policy(graph, timeout=...) degrades "
            "to a Theorem-1 conservative bound (see docs/robustness.md)",
        )


#: The numpy kernels refuse graphs whose LCM-scaled integer weights can
#: push a dynamic-programming sum past exact float64 integer range (the
#: ``NumericalGuardError`` guard in :mod:`repro.kernels.arraygraph`).
#: Mirrored here so the lint layer warns *before* an analysis trips it.
MAX_EXACT_FLOAT_SUM = 2 ** 53

#: Flag when the estimate comes within this factor of the guard
#: (override with the ``overflow_margin`` option).
DEFAULT_OVERFLOW_MARGIN = 16


@rule(
    code="kernel-guard-overflow",
    category="rate",
    severity=WARNING,
    summary="LCM-scaled weights approach the 2**53 exact-float kernel guard",
    requires=("consistent",),
)
def _kernel_guard_overflow(ctx: LintContext) -> Iterator[Diagnostic]:
    """The vectorized kernels scale every edge weight by the LCM of the
    weight denominators into exact integers, and refuse the graph when
    ``(n + 1) * largest_weight`` reaches ``2**53`` (beyond which float64
    sums stop being exact).  The analysis-time weights are sums of
    execution times along dependency chains, so ``scale * Σ γ(a)·t(a)``
    — the scaled work of one whole iteration — bounds every weight the
    kernels can see.  This rule warns when that conservative estimate
    comes within ``overflow_margin`` of the guard: the numpy path would
    raise ``NumericalGuardError`` mid-analysis, falling back to the
    (slower) pure-Fraction kernel."""
    from math import lcm

    graph = ctx.graph
    if not graph.actor_count():
        return
    times = {a: graph.execution_time(a) for a in graph.actor_names}
    scale = 1
    for value in times.values():
        scale = lcm(scale, Fraction(value).denominator)
    iteration_work = sum(
        ctx.gamma[a] * Fraction(t) for a, t in times.items()
    )
    weight_bound = int(scale * iteration_work)
    n = max(sum(ctx.gamma.values()), graph.total_tokens())
    estimate = (n + 1) * max(weight_bound, 1)
    margin = int(ctx.options.get("overflow_margin", DEFAULT_OVERFLOW_MARGIN))
    if estimate * margin >= MAX_EXACT_FLOAT_SUM:
        yield ctx.diag(
            "kernel-guard-overflow",
            f"scaled iteration weights reach ~2**{estimate.bit_length() - 1} "
            f"(denominator LCM {scale}, iteration work {iteration_work}), "
            f"within {margin}x of the 2**53 exact-float64 kernel guard; "
            "the numpy kernels may refuse this graph",
            data={
                "scale": scale,
                "estimate_bits": estimate.bit_length(),
                "guard_bits": 53,
                "margin": margin,
            },
            fix="reduce execution-time denominators (rescale times to a "
                "common base) or run with kernel='exact'",
        )


@rule(
    code="abstraction-unsafe-group",
    category="rate",
    severity=ERROR,
    summary="a proposed grouping violates the Definition 3/4 abstraction preconditions",
    requires=("consistent",),
)
def _abstraction_unsafe_group(ctx: LintContext) -> Iterator[Diagnostic]:
    proposal = ctx.options.get("abstraction")
    if proposal is None:
        return
    mapping, index = _abstraction_parts(proposal)
    graph = ctx.graph
    actors = set(graph.actor_names)

    covered = set(mapping) & set(index)
    missing = sorted(actors - covered)
    extra = sorted((set(mapping) | set(index)) - actors)
    if missing or extra:
        yield ctx.diag(
            "abstraction-unsafe-group",
            f"abstraction does not cover the graph exactly "
            f"(missing {missing}, extraneous {extra})",
            actors=tuple(missing),
            data={"condition": "coverage", "missing": missing, "extra": extra},
        )
        return

    bad_indices = {
        actor: phase
        for actor, phase in index.items()
        if not isinstance(phase, int) or isinstance(phase, bool) or phase < 0
    }
    if bad_indices:
        yield ctx.diag(
            "abstraction-unsafe-group",
            f"phase indices must be non-negative ints, got "
            f"{ {a: repr(p) for a, p in sorted(bad_indices.items())} }",
            actors=tuple(sorted(bad_indices)),
            data={"condition": "index-type"},
        )
        return

    # Equal repetition entries per group — the headline precondition of
    # Definitions 3 and 4: an abstract actor's firing represents one
    # firing of each member, which is only balanced when members fire
    # equally often per iteration.
    groups: Dict[str, List[str]] = {}
    for actor in graph.actor_names:
        groups.setdefault(mapping[actor], []).append(actor)
    for group, members in sorted(groups.items()):
        entries = {actor: ctx.gamma[actor] for actor in members}
        if len(set(entries.values())) > 1:
            yield ctx.diag(
                "abstraction-unsafe-group",
                f"group {group!r} mixes repetition-vector entries "
                f"{sorted(set(entries.values()))} across members "
                f"{sorted(members)}; Definition 3 requires equal entries, "
                "so the abstract graph would not be a conservative bound",
                actors=tuple(sorted(members)),
                data={
                    "condition": "equal-repetition",
                    "group": group,
                    "entries": {a: int(g) for a, g in sorted(entries.items())},
                },
                fix="split the group by repetition entry (discover_abstraction "
                "does this automatically)",
            )

    seen: Dict[Tuple[str, int], str] = {}
    for actor in graph.actor_names:
        key = (mapping[actor], index[actor])
        if key in seen:
            yield ctx.diag(
                "abstraction-unsafe-group",
                f"actors {seen[key]!r} and {actor!r} share abstract actor "
                f"{key[0]!r} and phase index {key[1]}; I must be injective "
                "per group (Definition 3)",
                actors=(seen[key], actor),
                data={"condition": "injective-index", "group": key[0], "index": key[1]},
            )
        else:
            seen[key] = actor

    for edge in graph.edges:
        if edge.tokens == 0 and index[edge.source] > index[edge.target]:
            yield ctx.diag(
                "abstraction-unsafe-group",
                f"zero-delay edge {edge.name!r} ({edge.source}->{edge.target}) "
                f"goes backward in phase order ({index[edge.source]} > "
                f"{index[edge.target]}); Definition 3 requires I(a) <= I(b) "
                "or d > 0",
                actors=(edge.source, edge.target),
                edges=(edge.name,),
                data={"condition": "zero-delay-order"},
            )


def _abstraction_parts(proposal) -> Tuple[Dict[str, str], Dict[str, int]]:
    """Accept an :class:`repro.core.abstraction.Abstraction` or a plain
    ``{"mapping": ..., "index": ...}`` dict."""
    if isinstance(proposal, dict):
        return dict(proposal["mapping"]), dict(proposal["index"])
    return dict(proposal.mapping), dict(proposal.index)


def check_abstraction_safety(graph, abstraction) -> List[Diagnostic]:
    """All ``abstraction-unsafe-group`` diagnostics for applying
    ``abstraction`` to ``graph`` (empty when the proposal is safe).

    This is the lint-rule form of the Definition 3 precondition check;
    :func:`repro.core.abstraction.abstract_graph` refuses to apply an
    abstraction for which this returns error findings.
    """
    ctx = LintContext(graph, options={"abstraction": abstraction})
    if ctx.gamma is None:
        return [
            ctx.diag(
                "inconsistent",
                f"cannot check abstraction preconditions: {ctx.inconsistency}",
            )
        ]
    return list(_abstraction_unsafe_group(ctx))


# ---------------------------------------------------------------------------
# SDF · temporal
# ---------------------------------------------------------------------------


@rule(
    code="deadlock",
    category="temporal",
    severity=ERROR,
    summary="no iteration can complete",
    requires=("consistent",),
)
def _deadlock(ctx: LintContext) -> Iterator[Diagnostic]:
    if ctx.schedule is None and ctx.deadlock is not None:
        blocked = {a: int(n) for a, n in sorted(ctx.deadlock.blocked.items()) if n}
        yield ctx.diag(
            "deadlock",
            str(ctx.deadlock),
            actors=tuple(sorted(blocked)),
            data={"blocked": blocked},
        )


@rule(
    code="zero-time-cycle",
    category="temporal",
    severity=WARNING,
    summary="a token-carrying cycle of zero-time actors spins infinitely fast",
)
def _zero_time_cycle(ctx: LintContext) -> Iterator[Diagnostic]:
    cycle = zero_time_token_cycle(ctx.graph)
    if cycle:
        yield ctx.diag(
            "zero-time-cycle",
            "cycle through "
            + " -> ".join(cycle)
            + " has tokens but zero total execution time; self-timed "
            "execution spins infinitely fast on it",
            actors=tuple(cycle),
            fix="give at least one actor on the cycle a positive execution time",
        )


def zero_time_token_cycle(graph) -> Optional[List[str]]:
    """A cycle of zero-time actors whose edges all lie between them and
    carry at least one token somewhere (so it can actually spin)."""
    zero_actors = {a for a in graph.actor_names if graph.execution_time(a) == 0}
    if not zero_actors:
        return None
    sub = RatioGraph()
    for actor in zero_actors:
        sub.add_node(actor)
    for edge in graph.edges:
        if edge.source in zero_actors and edge.target in zero_actors:
            sub.add_edge(edge.source, edge.target, 0, edge.tokens)
    for scc in sub.nontrivial_sccs():
        # Strong connectivity means any internal token edge closes a
        # spinning cycle through it.
        if any(e.transit > 0 for e in scc.edges):
            return [str(node) for node in scc.nodes]
    return None


# ---------------------------------------------------------------------------
# CSDF
# ---------------------------------------------------------------------------


@rule(
    code="csdf-inconsistent",
    category="rate",
    severity=ERROR,
    summary="the cycle-level CSDF balance equations have no solution",
    model="csdf",
)
def _csdf_inconsistent(ctx: CSDFLintContext) -> Iterator[Diagnostic]:
    if ctx.graph.actor_count() and ctx.gamma is None:
        witness = getattr(ctx.inconsistency, "witness_edge", None)
        yield ctx.diag(
            "csdf-inconsistent",
            str(ctx.inconsistency),
            edges=(witness.name,) if witness is not None else (),
        )


@rule(
    code="csdf-phase-mismatch",
    category="rate",
    severity=WARNING,
    summary="CSDF phase vectors are inconsistent with the actor's repetition counts",
    model="csdf",
)
def _csdf_phase_mismatch(ctx: CSDFLintContext) -> Iterator[Diagnostic]:
    graph = ctx.graph
    broken: set = set()
    for edge in graph.edges:
        for label, seq, actor in (
            ("production", edge.production, edge.source),
            ("consumption", edge.consumption, edge.target),
        ):
            expected = graph.phase_count(actor)
            if len(seq) != expected:
                broken.add(actor)
                yield ctx.diag(
                    "csdf-phase-mismatch",
                    f"edge {edge.name!r}: {label} sequence has {len(seq)} "
                    f"entries but actor {actor!r} has {expected} phases; "
                    "the firing rule is undefined past the shorter vector",
                    severity=ERROR,
                    actors=(actor,),
                    edges=(edge.name,),
                    data={"kind": "length", "entries": len(seq), "phases": expected},
                )
    for actor in graph.actors:
        if actor.name in broken or actor.phase_count <= 1:
            continue
        sequences: List[Tuple] = [actor.execution_times]
        sequences += [e.production for e in graph.out_edges(actor.name)]
        sequences += [e.consumption for e in graph.in_edges(actor.name)]
        period = _minimal_period(sequences, actor.phase_count)
        if period < actor.phase_count:
            yield ctx.diag(
                "csdf-phase-mismatch",
                f"actor {actor.name!r} declares {actor.phase_count} phases "
                f"but all its phase vectors repeat with period {period}; the "
                f"repetition count is inflated by a factor "
                f"{actor.phase_count // period}",
                actors=(actor.name,),
                data={
                    "kind": "periodic",
                    "phases": actor.phase_count,
                    "period": period,
                },
                fix=f"collapse {actor.name!r} to {period} phase(s)",
            )


def _minimal_period(sequences: List[Tuple], length: int) -> int:
    for period in range(1, length):
        if length % period:
            continue
        if all(
            seq[i] == seq[i % period] for seq in sequences for i in range(length)
        ):
            return period
    return length


@rule(
    code="csdf-deadlock",
    category="temporal",
    severity=ERROR,
    summary="no CSDF iteration can complete",
    model="csdf",
    requires=("consistent",),
)
def _csdf_deadlock(ctx: CSDFLintContext) -> Iterator[Diagnostic]:
    if ctx.live is False:
        yield ctx.diag(
            "csdf-deadlock",
            f"CSDF graph {ctx.graph.name!r} cannot complete an iteration "
            "from its initial tokens",
        )


# ---------------------------------------------------------------------------
# FSM-SADF scenarios
# ---------------------------------------------------------------------------


@rule(
    code="scenario-undefined",
    category="structural",
    severity=ERROR,
    summary="an FSM transition uses a scenario label that is not defined",
    model="scenario",
)
def _scenario_undefined(ctx: ScenarioLintContext) -> Iterator[Diagnostic]:
    for label in ctx.fsm.scenario_names():
        if label not in ctx.scenarios:
            yield ctx.diag(
                "scenario-undefined",
                f"FSM transitions use scenario {label!r} but no such "
                "scenario is defined",
                data={"scenario": label},
            )


@rule(
    code="scenario-unreachable",
    category="structural",
    severity=WARNING,
    summary="a scenario is defined but never reachable in the FSM",
    model="scenario",
)
def _scenario_unreachable(ctx: ScenarioLintContext) -> Iterator[Diagnostic]:
    reachable = set(ctx.reachable_scenarios)
    for name in ctx.scenarios:
        if name not in reachable:
            yield ctx.diag(
                "scenario-unreachable",
                f"scenario {name!r} is defined but no transition reachable "
                f"from the initial state {ctx.fsm.initial!r} uses it; "
                "worst-case analysis will never consider it",
                data={"scenario": name},
                fix="add a transition using it or drop the scenario",
            )


@rule(
    code="scenario-dead-state",
    category="structural",
    severity=ERROR,
    summary="a reachable FSM state has no outgoing transition",
    model="scenario",
)
def _scenario_dead_state(ctx: ScenarioLintContext) -> Iterator[Diagnostic]:
    for state in sorted(ctx.reachable_states, key=repr):
        if not ctx.fsm.outgoing(state):
            yield ctx.diag(
                "scenario-dead-state",
                f"FSM state {state!r} is reachable but has no outgoing "
                "transition; infinite scenario sequences must exist from "
                "every reachable state",
                data={"state": repr(state)},
            )


@rule(
    code="scenario-token-mismatch",
    category="structural",
    severity=ERROR,
    summary="scenarios disagree on the persistent token count",
    model="scenario",
)
def _scenario_token_mismatch(ctx: ScenarioLintContext) -> Iterator[Diagnostic]:
    sizes = {
        name: scenario.graph.total_tokens()
        for name, scenario in sorted(ctx.scenarios.items())
        if name in set(ctx.fsm.scenario_names())
    }
    if len(set(sizes.values())) > 1:
        yield ctx.diag(
            "scenario-token-mismatch",
            f"scenarios disagree on the persistent token count: {sizes}; "
            "tokens carry timing state across scenario switches, so all "
            "scenarios must hold the same number",
            data={"tokens": sizes},
        )
