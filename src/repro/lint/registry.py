"""The rule registry: how lint rules plug into the engine.

A rule is a generator function over a lint context, registered with the
:func:`rule` decorator::

    @rule(
        code="deadlock",
        category="temporal",
        severity=ERROR,
        summary="no iteration can complete",
        requires=("consistent",),
    )
    def _deadlock(ctx):
        if ctx.schedule is None and ctx.deadlock is not None:
            yield ctx.diag("deadlock", str(ctx.deadlock))

The decorator records per-rule metadata — stable code, category
(``structural`` → ``rate`` → ``temporal``, which is also the execution
order), default severity, the model kind it applies to, the analyses it
requires, and a documentation anchor — and makes the rule discoverable
by the engine and by the SARIF/JSON emitters.  Third-party code can
register additional rules with the same decorator; codes are unique and
collisions fail loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lint.diagnostics import severity_rank

#: Rule categories in execution (dependency) order: structural rules
#: need only the raw graph, rate rules need the balance equations,
#: temporal rules need schedules / timing.
CATEGORIES = ("structural", "rate", "temporal")

_CATEGORY_ORDER = {name: i for i, name in enumerate(CATEGORIES)}

#: Model kinds rules can apply to.
MODELS = ("sdf", "csdf", "scenario")

#: Base location of the human documentation; every rule's ``doc_url``
#: is an anchor into this page (mirrored by ``docs/lint.md``).
DOC_PAGE = "https://repro-sdf.readthedocs.io/lint"


@dataclass(frozen=True)
class RuleMeta:
    """Metadata of one registered rule."""

    code: str
    category: str
    default_severity: str
    summary: str
    model: str = "sdf"
    requires: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.code:
            raise ValueError("rule code must be non-empty")
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown category {self.category!r}; use one of {CATEGORIES}"
            )
        if self.model not in MODELS:
            raise ValueError(f"unknown model {self.model!r}; use one of {MODELS}")
        severity_rank(self.default_severity)
        object.__setattr__(self, "requires", tuple(self.requires))

    @property
    def doc_url(self) -> str:
        """Anchor into the diagnostic catalogue (``docs/lint.md``)."""
        return f"{DOC_PAGE}#{self.code}"

    @property
    def order(self) -> Tuple[int, str]:
        return (_CATEGORY_ORDER[self.category], self.code)


@dataclass(frozen=True)
class RegisteredRule:
    """A rule function paired with its metadata."""

    meta: RuleMeta
    check: Callable = field(compare=False)


_REGISTRY: Dict[str, RegisteredRule] = {}


def rule(
    code: str,
    category: str,
    severity: str,
    summary: str,
    model: str = "sdf",
    requires: Tuple[str, ...] = (),
) -> Callable[[Callable], Callable]:
    """Register a lint rule (decorator); see the module docstring."""
    meta = RuleMeta(
        code=code,
        category=category,
        default_severity=severity,
        summary=summary,
        model=model,
        requires=requires,
    )

    def decorate(check: Callable) -> Callable:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _REGISTRY[code] = RegisteredRule(meta=meta, check=check)
        return check

    return decorate


def all_rules(model: Optional[str] = None) -> List[RegisteredRule]:
    """Registered rules (for one model kind), in execution order."""
    rules = [
        r for r in _REGISTRY.values() if model is None or r.meta.model == model
    ]
    return sorted(rules, key=lambda r: r.meta.order)


def rule_codes(model: Optional[str] = None) -> List[str]:
    return [r.meta.code for r in all_rules(model)]


def get_rule(code: str) -> RegisteredRule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"no lint rule {code!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def unregister(code: str) -> None:
    """Remove a rule (tests and plugin teardown)."""
    _REGISTRY.pop(code, None)
