"""Rule registries: how lint rules plug into their engines.

A rule is a generator function over a lint context, registered with the
:func:`rule` decorator::

    @rule(
        code="deadlock",
        category="temporal",
        severity=ERROR,
        summary="no iteration can complete",
        requires=("consistent",),
    )
    def _deadlock(ctx):
        if ctx.schedule is None and ctx.deadlock is not None:
            yield ctx.diag("deadlock", str(ctx.deadlock))

The decorator records per-rule metadata — stable code, category
(``structural`` → ``rate`` → ``temporal``, which is also the execution
order), default severity, the model kind it applies to, the analyses it
requires, and a documentation anchor — and makes the rule discoverable
by the engine and by the SARIF/JSON emitters.  Third-party code can
register additional rules with the same decorator; codes are unique and
collisions fail loudly.

There are two registries built on the same :class:`RuleRegistry`
machinery: the *graph* registry below (the module-level ``rule`` /
``all_rules`` API, unchanged), which analyses dataflow models, and the
*devlint* registry (:data:`repro.devlint.registry.DEVLINT`), which
analyses the project's own Python source for the cross-cutting code
contracts (exactness, deadlines, provenance, locking).  Each registry
owns its category order, model kinds and documentation page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lint.diagnostics import severity_rank

#: Graph-rule categories in execution (dependency) order: structural
#: rules need only the raw graph, rate rules need the balance equations,
#: temporal rules need schedules / timing.
CATEGORIES = ("structural", "rate", "temporal")

#: Model kinds graph rules can apply to.
MODELS = ("sdf", "csdf", "scenario")

#: Base location of the human documentation; every graph rule's
#: ``doc_url`` is an anchor into this page (mirrored by ``docs/lint.md``).
DOC_PAGE = "https://repro-sdf.readthedocs.io/lint"


@dataclass(frozen=True)
class RuleMeta:
    """Metadata of one registered rule."""

    code: str
    category: str
    default_severity: str
    summary: str
    model: str = "sdf"
    requires: Tuple[str, ...] = ()
    doc_page: str = DOC_PAGE
    category_rank: int = 0

    def __post_init__(self):
        if not self.code:
            raise ValueError("rule code must be non-empty")
        severity_rank(self.default_severity)
        object.__setattr__(self, "requires", tuple(self.requires))

    @property
    def doc_url(self) -> str:
        """Anchor into the diagnostic catalogue of the owning registry."""
        return f"{self.doc_page}#{self.code}"

    @property
    def order(self) -> Tuple[int, str]:
        return (self.category_rank, self.code)


@dataclass(frozen=True)
class RegisteredRule:
    """A rule function paired with its metadata."""

    meta: RuleMeta
    check: Callable = field(compare=False)


class RuleRegistry:
    """One namespace of rules: categories, model kinds, a doc page.

    The graph-lint and devlint engines each own one instance; the
    decorator-based registration protocol and the metadata consumed by
    the SARIF/JSON emitters are identical across both.
    """

    def __init__(
        self,
        categories: Tuple[str, ...],
        models: Tuple[str, ...],
        doc_page: str,
        default_model: Optional[str] = None,
    ) -> None:
        if not categories:
            raise ValueError("a registry needs at least one category")
        if not models:
            raise ValueError("a registry needs at least one model kind")
        self.categories = tuple(categories)
        self.models = tuple(models)
        self.doc_page = doc_page
        self.default_model = default_model or self.models[0]
        self._category_order = {name: i for i, name in enumerate(self.categories)}
        self._rules: Dict[str, RegisteredRule] = {}

    def rule(
        self,
        code: str,
        category: str,
        severity: str,
        summary: str,
        model: Optional[str] = None,
        requires: Tuple[str, ...] = (),
    ) -> Callable[[Callable], Callable]:
        """Register a rule (decorator); see the module docstring."""
        if category not in self.categories:
            raise ValueError(
                f"unknown category {category!r}; use one of {self.categories}"
            )
        model = model or self.default_model
        if model not in self.models:
            raise ValueError(
                f"unknown model {model!r}; use one of {self.models}"
            )
        meta = RuleMeta(
            code=code,
            category=category,
            default_severity=severity,
            summary=summary,
            model=model,
            requires=requires,
            doc_page=self.doc_page,
            category_rank=self._category_order[category],
        )

        def decorate(check: Callable) -> Callable:
            if code in self._rules:
                raise ValueError(f"duplicate lint rule code {code!r}")
            self._rules[code] = RegisteredRule(meta=meta, check=check)
            return check

        return decorate

    def all_rules(self, model: Optional[str] = None) -> List[RegisteredRule]:
        """Registered rules (for one model kind), in execution order."""
        rules = [
            r for r in self._rules.values()
            if model is None or r.meta.model == model
        ]
        return sorted(rules, key=lambda r: r.meta.order)

    def rule_codes(self, model: Optional[str] = None) -> List[str]:
        return [r.meta.code for r in self.all_rules(model)]

    def get_rule(self, code: str) -> RegisteredRule:
        try:
            return self._rules[code]
        except KeyError:
            raise KeyError(
                f"no lint rule {code!r}; registered: "
                f"{', '.join(sorted(self._rules))}"
            ) from None

    def unregister(self, code: str) -> None:
        """Remove a rule (tests and plugin teardown)."""
        self._rules.pop(code, None)


#: The graph-model registry behind the module-level compatibility API.
GRAPH_REGISTRY = RuleRegistry(CATEGORIES, MODELS, DOC_PAGE)


def rule(
    code: str,
    category: str,
    severity: str,
    summary: str,
    model: str = "sdf",
    requires: Tuple[str, ...] = (),
) -> Callable[[Callable], Callable]:
    """Register a graph lint rule (decorator); see the module docstring."""
    return GRAPH_REGISTRY.rule(
        code, category, severity, summary, model=model, requires=requires
    )


def all_rules(model: Optional[str] = None) -> List[RegisteredRule]:
    """Registered graph rules (for one model kind), in execution order."""
    return GRAPH_REGISTRY.all_rules(model)


def rule_codes(model: Optional[str] = None) -> List[str]:
    return GRAPH_REGISTRY.rule_codes(model)


def get_rule(code: str) -> RegisteredRule:
    return GRAPH_REGISTRY.get_rule(code)


def unregister(code: str) -> None:
    """Remove a graph rule (tests and plugin teardown)."""
    GRAPH_REGISTRY.unregister(code)
