"""Structured lint diagnostics.

A :class:`Diagnostic` is one finding of one rule: a stable code, a
severity, a human message, *graph anchors* (the actor and edge names it
is about), structured ``data`` for machine consumers, and an optional
fix-it suggestion.  A :class:`LintReport` is the ordered collection of
findings for one model, with the filtering operations the engine and the
CLI compose (severity overrides, code selection, baseline subtraction).

Reports are value objects: every filtering operation returns a new
report, so a report served from the :class:`~repro.analysis.cache.
AnalysisCache` can be shared safely between callers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: Severity levels, weakest to strongest.  ``info`` findings never gate;
#: ``warning`` findings gate under ``--fail-on warning``; ``error``
#: findings make analyses refuse the model.
INFO = "info"
WARNING = "warning"
ERROR = "error"

SEVERITIES = (INFO, WARNING, ERROR)

_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


def severity_rank(severity: str) -> int:
    """Numeric rank of a severity (higher is more severe)."""
    try:
        return _RANK[severity]
    except KeyError:
        raise ValueError(
            f"unknown severity {severity!r}; use one of {', '.join(SEVERITIES)}"
        ) from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: code + severity + message, anchored to its subject.

    ``actors`` and ``edges`` name the graph elements the finding is
    about (empty for whole-graph findings); ``data`` carries the rule's
    structured evidence (counts, group members, budgets) and ``fix`` an
    actionable suggestion.  ``graph`` is the display name of the model
    the finding belongs to — set by the engine, so rules may leave it
    empty.

    Source-level findings (the :mod:`repro.devlint` analyzer) anchor to
    files instead of graphs: ``file``/``line``/``col`` give the physical
    location, ``graph`` holds the file path and ``actors`` the enclosing
    function's qualified name — so baselines stay stable across line
    shifts (the fingerprint never includes the line number).
    """

    code: str
    severity: str
    message: str
    category: str = "structural"
    actors: Tuple[str, ...] = ()
    edges: Tuple[str, ...] = ()
    data: Mapping[str, Any] = field(default_factory=dict)
    fix: Optional[str] = None
    graph: str = ""
    file: str = ""
    line: int = 0
    col: int = 0

    def __post_init__(self):
        severity_rank(self.severity)  # validates
        object.__setattr__(self, "actors", tuple(self.actors))
        object.__setattr__(self, "edges", tuple(self.edges))
        object.__setattr__(self, "data", dict(self.data))

    @property
    def fingerprint(self) -> str:
        """A stable identity for baselines: the graph, code and anchors
        (deliberately *not* the message, so rewording a rule does not
        resurrect baselined findings)."""
        digest = hashlib.sha256()
        for part in (self.graph, self.code, *sorted(self.actors), *sorted(self.edges)):
            digest.update(part.encode())
            digest.update(b"\x1f")
        return digest.hexdigest()[:16]

    def with_severity(self, severity: str) -> "Diagnostic":
        severity_rank(severity)
        return replace(self, severity=severity)

    def as_dict(self) -> Dict[str, Any]:
        """The stable JSON shape of one finding (documented in
        ``docs/lint.md``)."""
        payload = {
            "code": self.code,
            "severity": self.severity,
            "category": self.category,
            "message": self.message,
            "actors": list(self.actors),
            "edges": list(self.edges),
            "data": dict(self.data),
            "fix": self.fix,
            "fingerprint": self.fingerprint,
        }
        if self.file:
            payload["file"] = self.file
            payload["line"] = self.line
            payload["col"] = self.col
        return payload

    def __str__(self) -> str:
        anchors = ""
        if self.actors:
            anchors += f" [actors: {', '.join(self.actors)}]"
        if self.edges:
            anchors += f" [edges: {', '.join(self.edges)}]"
        where = f"{self.file}:{self.line}: " if self.file else ""
        return f"{where}[{self.severity}] {self.code}: {self.message}{anchors}"


@dataclass(frozen=True)
class LintReport:
    """All findings of one lint pass over one model.

    ``fingerprint`` is the model's content hash when it has one
    (:meth:`repro.sdf.graph.SDFGraph.fingerprint`); CSDF and scenario
    models report ``None``.
    """

    graph: str
    findings: Tuple[Diagnostic, ...] = ()
    fingerprint: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "findings", tuple(self.findings))

    # -- inspection ------------------------------------------------------

    @property
    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(f for f in self.findings if f.severity == ERROR)

    @property
    def warnings(self) -> Tuple[Diagnostic, ...]:
        return tuple(f for f in self.findings if f.severity == WARNING)

    @property
    def ok(self) -> bool:
        """True iff the report has no error-severity findings."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """True iff the report has no findings at all."""
        return not self.findings

    def codes(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for finding in self.findings:
            seen.setdefault(finding.code)
        return tuple(seen)

    def by_code(self, code: str) -> Tuple[Diagnostic, ...]:
        return tuple(f for f in self.findings if f.code == code)

    def max_severity(self) -> Optional[str]:
        if not self.findings:
            return None
        return max(self.findings, key=lambda f: severity_rank(f.severity)).severity

    # -- derivation ------------------------------------------------------

    def replace_findings(self, findings: Iterable[Diagnostic]) -> "LintReport":
        return LintReport(self.graph, tuple(findings), self.fingerprint)

    def without_fingerprints(self, fingerprints: Iterable[str]) -> "LintReport":
        """The report minus baselined findings."""
        drop = set(fingerprints)
        return self.replace_findings(
            f for f in self.findings if f.fingerprint not in drop
        )

    def summary(self) -> Dict[str, int]:
        return {
            "findings": len(self.findings),
            "errors": len(self.errors),
            "warnings": len(self.warnings),
        }

    def as_dict(self) -> Dict[str, Any]:
        return {
            "graph": self.graph,
            "fingerprint": self.fingerprint,
            "summary": self.summary(),
            "findings": [f.as_dict() for f in self.findings],
        }

    def __str__(self) -> str:
        if not self.findings:
            return "graph is clean"
        return "\n".join(str(f) for f in self.findings)
