"""Serialisation of CSDF graphs (JSON-friendly dicts).

Mirrors :mod:`repro.sdf.io`: phase sequences are plain lists, execution
times are ints or ``{"numerator": .., "denominator": ..}`` objects.
"""

from __future__ import annotations

import json
from fractions import Fraction
from typing import Dict

from repro.errors import ValidationError
from repro.csdf.graph import CSDFGraph


def _time_to_json(value):
    if isinstance(value, int):
        return value
    return {"numerator": value.numerator, "denominator": value.denominator}


def _time_from_json(value):
    if isinstance(value, int):
        return value
    if isinstance(value, dict):
        return Fraction(value["numerator"], value["denominator"])
    raise ValidationError(f"cannot parse execution time {value!r}")


def to_dict(graph: CSDFGraph) -> Dict:
    return {
        "name": graph.name,
        "type": "csdf",
        "actors": [
            {
                "name": a.name,
                "execution_times": [_time_to_json(t) for t in a.execution_times],
            }
            for a in graph.actors
        ],
        "edges": [
            {
                "name": e.name,
                "source": e.source,
                "target": e.target,
                "production": list(e.production),
                "consumption": list(e.consumption),
                "tokens": e.tokens,
            }
            for e in graph.edges
        ],
    }


def from_dict(data: Dict) -> CSDFGraph:
    if data.get("type") not in (None, "csdf"):
        raise ValidationError(f"not a CSDF document (type={data.get('type')!r})")
    graph = CSDFGraph(data.get("name", "csdf"))
    for actor in data["actors"]:
        graph.add_actor(
            actor["name"],
            [_time_from_json(t) for t in actor["execution_times"]],
        )
    for edge in data["edges"]:
        graph.add_edge(
            edge["source"],
            edge["target"],
            production=edge["production"],
            consumption=edge["consumption"],
            tokens=edge.get("tokens", 0),
            name=edge.get("name"),
        )
    return graph


def to_json(graph: CSDFGraph, indent: int = 2) -> str:
    return json.dumps(to_dict(graph), indent=indent)


def from_json(text: str) -> CSDFGraph:
    return from_dict(json.loads(text))
