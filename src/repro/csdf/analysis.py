"""CSDF analyses: repetition vectors, schedules, symbolic iteration.

The balance equations of CSDF live at the level of full phase *cycles*:
with ``k(a)`` cycles of actor ``a`` per iteration, every edge needs
``k(src)·Σproduction = k(dst)·Σconsumption``.  The repetition vector in
*firings* is then ``γ(a) = k(a)·P(a)``.  One iteration returns every
channel to its initial token count and every actor to phase 0, so the
symbolic max-plus execution of the paper's Algorithm 1 applies verbatim
— only the firing rule is phase-dependent.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd, lcm
from typing import Dict, List, Optional, Tuple

from repro.core.symbolic import TokenId
from repro.errors import (
    DeadlockError,
    InconsistentGraphError,
    UnboundedThroughputError,
    ValidationError,
)
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.maxplus.spectral import eigenvalue
from repro.csdf.graph import CSDFGraph


def csdf_repetition_vector(graph: CSDFGraph) -> Dict[str, int]:
    """Firing counts per iteration: γ(a) = k(a) · P(a), smallest positive.

    Raises :class:`InconsistentGraphError` when the cycle-level balance
    equations admit only the trivial solution.
    """
    ratios: Dict[str, Fraction] = {}
    for component in graph.undirected_components():
        seed = component[0]
        ratios[seed] = Fraction(1)
        stack = [seed]
        while stack:
            actor = stack.pop()
            for edge in graph.out_edges(actor):
                implied = ratios[actor] * edge.cycle_production / edge.cycle_consumption
                if edge.target in ratios:
                    if ratios[edge.target] != implied:
                        raise InconsistentGraphError(
                            f"CSDF graph {graph.name!r} is inconsistent at edge "
                            f"{edge.name} ({edge.source}->{edge.target})",
                            witness_edge=edge,
                        )
                else:
                    ratios[edge.target] = implied
                    stack.append(edge.target)
            for edge in graph.in_edges(actor):
                implied = ratios[actor] * edge.cycle_consumption / edge.cycle_production
                if edge.source in ratios:
                    if ratios[edge.source] != implied:
                        raise InconsistentGraphError(
                            f"CSDF graph {graph.name!r} is inconsistent at edge "
                            f"{edge.name} ({edge.source}->{edge.target})",
                            witness_edge=edge,
                        )
                else:
                    ratios[edge.source] = implied
                    stack.append(edge.source)
        denominator_lcm = lcm(*(ratios[a].denominator for a in component))
        scaled = {
            a: ratios[a].numerator * (denominator_lcm // ratios[a].denominator)
            for a in component
        }
        numerator_gcd = gcd(*scaled.values())
        for a in component:
            ratios[a] = Fraction(scaled[a] // numerator_gcd)
    return {a: int(ratios[a]) * graph.phase_count(a) for a in graph.actor_names}


def is_csdf_consistent(graph: CSDFGraph) -> bool:
    try:
        csdf_repetition_vector(graph)
    except InconsistentGraphError:
        return False
    return True


def csdf_sequential_schedule(graph: CSDFGraph) -> List[str]:
    """An admissible firing sequence for one iteration (actor names;
    the i-th occurrence of an actor is its phase ``i mod P``).

    Raises :class:`DeadlockError` when no iteration completes.
    """
    remaining = csdf_repetition_vector(graph)
    tokens = {e.name: e.tokens for e in graph.edges}
    phase = {a: 0 for a in graph.actor_names}
    schedule: List[str] = []
    total = sum(remaining.values())

    def enabled(actor: str) -> bool:
        if remaining[actor] <= 0:
            return False
        p = phase[actor]
        return all(
            tokens[e.name] >= e.consumption[p] for e in graph.in_edges(actor)
        )

    progress = True
    while progress:
        progress = False
        for actor in graph.actor_names:
            while enabled(actor):
                p = phase[actor]
                for e in graph.in_edges(actor):
                    tokens[e.name] -= e.consumption[p]
                for e in graph.out_edges(actor):
                    tokens[e.name] += e.production[phase[actor]]
                phase[actor] = (p + 1) % graph.phase_count(actor)
                remaining[actor] -= 1
                schedule.append(actor)
                progress = True

    if len(schedule) != total:
        blocked = {a: r for a, r in remaining.items() if r > 0}
        raise DeadlockError(
            f"CSDF graph {graph.name!r} deadlocks "
            f"(blocked actors: {sorted(blocked)})",
            blocked=blocked,
        )
    return schedule


def is_csdf_live(graph: CSDFGraph) -> bool:
    try:
        csdf_sequential_schedule(graph)
    except DeadlockError:
        return False
    return True


class CSDFSymbolicIteration:
    """Counterpart of :class:`repro.core.symbolic.SymbolicIteration`."""

    def __init__(self, matrix, token_ids, schedule, firing_completions):
        self.matrix = matrix
        self.token_ids = token_ids
        self.schedule = schedule
        self.firing_completions = firing_completions

    @property
    def token_count(self) -> int:
        return len(self.token_ids)


def csdf_symbolic_iteration(
    graph: CSDFGraph, schedule: Optional[List[str]] = None
) -> CSDFSymbolicIteration:
    """Symbolically execute one CSDF iteration (Algorithm 1, phase-aware).

    Self-loop-style token-boundedness is required just as for SDF: every
    actor must have an incoming edge.
    """
    for actor in graph.actor_names:
        if not graph.in_edges(actor):
            raise UnboundedThroughputError(
                f"actor {actor!r} has no incoming edges; add a self-edge "
                "(production and consumption 1 in every phase, one token)",
                actor=actor,
            )
    if schedule is None:
        schedule = csdf_sequential_schedule(graph)

    token_ids: List[TokenId] = []
    for edge in graph.edges:
        for position in range(edge.tokens):
            token_ids.append(TokenId(edge.name, position))
    size = len(token_ids)

    from collections import deque

    channels: Dict[str, deque] = {e.name: deque() for e in graph.edges}
    for index, token in enumerate(token_ids):
        channels[token.edge].append(MaxPlusVector.unit(size, index))

    phase = {a: 0 for a in graph.actor_names}
    firing_counts = {a: 0 for a in graph.actor_names}
    firing_completions: Dict[Tuple[str, int], MaxPlusVector] = {}

    for actor in schedule:
        p = phase[actor]
        consumed: List[MaxPlusVector] = []
        for edge in graph.in_edges(actor):
            need = edge.consumption[p]
            channel = channels[edge.name]
            if len(channel) < need:
                raise ValidationError(
                    f"schedule not admissible: {actor!r} phase {p} needs "
                    f"{need} tokens on {edge.name!r}, found {len(channel)}"
                )
            for _ in range(need):
                consumed.append(channel.popleft())
        if consumed:
            start = consumed[0]
            for stamp in consumed[1:]:
                start = start.max_with(stamp)
        else:
            # A phase that consumes nothing starts when the actor's
            # previous phase ended; that ordering comes from a self-edge,
            # so reaching here means the graph is not token-bound.
            raise UnboundedThroughputError(
                f"phase {p} of {actor!r} consumes no tokens; its firing time "
                "is unconstrained (add a self-edge)",
                actor=actor,
            )
        finish = start.add_scalar(graph.actor(actor).execution_times[p])
        for edge in graph.out_edges(actor):
            for _ in range(edge.production[p]):
                channels[edge.name].append(finish)
        firing_completions[(actor, firing_counts[actor])] = finish
        firing_counts[actor] += 1
        phase[actor] = (p + 1) % graph.phase_count(actor)

    rows: List[MaxPlusVector] = []
    for edge in graph.edges:
        channel = channels[edge.name]
        if len(channel) != edge.tokens:
            raise ValidationError(
                f"iteration did not restore channel {edge.name!r}: "
                f"{len(channel)} tokens, expected {edge.tokens}"
            )
        rows.extend(channel)
    matrix = MaxPlusMatrix([row.entries for row in rows]) if size else MaxPlusMatrix([])
    return CSDFSymbolicIteration(matrix, tuple(token_ids), list(schedule), firing_completions)


def csdf_throughput(graph: CSDFGraph):
    """Exact CSDF throughput: iteration period and per-actor firing rates.

    Returns a :class:`repro.analysis.throughput.ThroughputResult` whose
    repetition vector counts *firings* (phase executions).
    """
    from repro.analysis.throughput import ThroughputResult

    gamma = csdf_repetition_vector(graph)
    iteration = csdf_symbolic_iteration(graph)
    lam = eigenvalue(iteration.matrix)
    return ThroughputResult(cycle_time=lam, repetition=gamma, method="csdf-symbolic")
