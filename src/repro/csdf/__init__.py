"""Cyclo-static dataflow (CSDF): the paper's techniques beyond plain SDF.

CSDF (Bilsen et al., 1996; analysed for buffer trade-offs by the paper's
reference [18]) generalises SDF: an actor cycles through a fixed sequence
of *phases*, each with its own production/consumption rates and execution
time.  The paper's symbolic machinery carries over unchanged — one
iteration of a consistent CSDF graph is still a max-plus matrix over the
initial tokens — so both reductions extend naturally:

* :func:`repro.csdf.conversion.csdf_to_hsdf` reuses the Figure-4
  realisation (:func:`repro.core.hsdf_conversion.realise_iteration_matrix`)
  verbatim, with the same N(N+2) bound;
* throughput/latency analysis runs on the same eigenvalue computation.

This subpackage is an *extension* beyond the paper's letter (which
treats SDF), demonstrating the generality its Section 6 machinery claims.
"""

from repro.csdf.graph import CSDFActor, CSDFEdge, CSDFGraph
from repro.csdf.analysis import (
    csdf_repetition_vector,
    csdf_sequential_schedule,
    csdf_symbolic_iteration,
    csdf_throughput,
    is_csdf_live,
)
from repro.csdf.conversion import csdf_to_hsdf, csdf_to_sdf_approximation

__all__ = [
    "CSDFActor",
    "CSDFEdge",
    "CSDFGraph",
    "csdf_repetition_vector",
    "csdf_sequential_schedule",
    "csdf_symbolic_iteration",
    "csdf_throughput",
    "is_csdf_live",
    "csdf_to_hsdf",
    "csdf_to_sdf_approximation",
]
