"""CSDF conversions: compact HSDF (the paper's machinery) and an SDF
rate-aggregation approximation.

``csdf_to_hsdf`` is the headline: because the symbolic iteration of a
CSDF graph is still an N×N max-plus matrix over its initial tokens, the
Figure-4 realisation of Algorithm 1 — and its N(N+2) size bound — apply
without modification.  The classical alternative (expand every phase of
every firing) would yield Σ_a γ(a) actors with γ counted in phase
firings, typically far larger.

``csdf_to_sdf_approximation`` aggregates each actor's phase cycle into a
single SDF firing (rates = cycle sums, execution time = cycle total).
The approximation serialises each actor's phases and treats all of a
cycle's consumption as needed up front, both of which only *add*
dependencies — by the monotonicity of Proposition 1 its throughput is a
conservative bound on the CSDF graph's, which the tests verify.
"""

from __future__ import annotations

from typing import Optional

from repro.core.hsdf_conversion import HsdfConversion, realise_iteration_matrix
from repro.csdf.analysis import csdf_symbolic_iteration
from repro.csdf.graph import CSDFGraph
from repro.sdf.graph import SDFGraph


def csdf_to_hsdf(
    graph: CSDFGraph,
    elide_multiplexers: bool = True,
) -> HsdfConversion:
    """Compact HSDF equivalent of a consistent, live CSDF graph.

    Same contract as :func:`repro.core.hsdf_conversion.convert_to_hsdf`:
    the result preserves the iteration timing (throughput and latency)
    with at most N(N+2) actors for N initial tokens.
    """
    iteration = csdf_symbolic_iteration(graph)
    return realise_iteration_matrix(
        iteration.matrix,
        iteration.token_ids,
        name=f"{graph.name}-compact-hsdf",
        elide_multiplexers=elide_multiplexers,
    )


def csdf_to_sdf_approximation(graph: CSDFGraph, name: Optional[str] = None) -> SDFGraph:
    """Aggregate each phase cycle into one SDF firing (conservative).

    Every actor becomes a single SDF actor whose execution time is the
    *sum* of its phase times and whose rates are the per-cycle totals.
    All dependencies of the CSDF graph are preserved or strengthened, so
    the SDF graph's throughput (in cycles) lower-bounds the CSDF graph's
    cycle rate — a quick-and-dirty bound when phase-accurate analysis is
    not needed.
    """
    result = SDFGraph(name or f"{graph.name}-sdf-approx")
    for actor in graph.actors:
        result.add_actor(actor.name, sum(actor.execution_times))
    for edge in graph.edges:
        if edge.source == edge.target:
            # A self-edge crosses the actor's own phases; summing its
            # rates would demand the whole cycle's tokens up front and
            # spuriously deadlock (e.g. the canonical [1,1]/[1,1] loop
            # with one token).  Aggregate it as a unit-rate self-loop
            # that admits one cycle at a time iff the phase-level cycle
            # is completable from the initial tokens — conservative in
            # both liveness and concurrency.
            available = edge.tokens
            completable = True
            for phase in range(len(edge.consumption)):
                available -= edge.consumption[phase]
                if available < 0:
                    completable = False
                    break
                available += edge.production[phase]
            result.add_edge(
                edge.source,
                edge.target,
                production=1,
                consumption=1,
                tokens=1 if completable else 0,
                name=edge.name,
            )
        else:
            result.add_edge(
                edge.source,
                edge.target,
                production=edge.cycle_production,
                consumption=edge.cycle_consumption,
                tokens=edge.tokens,
                name=edge.name,
            )
    return result
