"""The cyclo-static dataflow graph model.

A CSDF actor ``a`` has ``P(a)`` phases; firing ``i`` executes phase
``i mod P(a)``.  Each edge carries a production *sequence* (indexed by
the source's phase) and a consumption *sequence* (indexed by the
target's phase); execution times are per phase too.  SDF is the special
case where every sequence has length one.
"""

from __future__ import annotations

from dataclasses import dataclass
from numbers import Rational
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError


def _check_sequence(label: str, values: Sequence[int], allow_zero: bool) -> Tuple[int, ...]:
    values = tuple(values)
    if not values:
        raise ValidationError(f"{label} must have at least one phase")
    floor = 0 if allow_zero else 1
    for v in values:
        if not isinstance(v, int) or isinstance(v, bool) or v < floor:
            raise ValidationError(
                f"{label} entries must be ints >= {floor}, got {values!r}"
            )
    if allow_zero and sum(values) == 0:
        raise ValidationError(f"{label} must move at least one token per cycle")
    return values


@dataclass(frozen=True)
class CSDFActor:
    """A cyclo-static actor: per-phase execution times."""

    name: str
    execution_times: Tuple[Rational, ...]

    def __post_init__(self):
        if not self.name:
            raise ValidationError("actor name must be a non-empty string")
        times = tuple(self.execution_times)
        if not times:
            raise ValidationError("actor needs at least one phase")
        for t in times:
            if isinstance(t, bool) or not isinstance(t, Rational) or t < 0:
                raise ValidationError(
                    f"execution times must be non-negative rationals, got {times!r}"
                )
        object.__setattr__(self, "execution_times", times)

    @property
    def phase_count(self) -> int:
        return len(self.execution_times)


@dataclass(frozen=True)
class CSDFEdge:
    """A CSDF channel with per-phase rate sequences.

    ``production[i]`` tokens are produced by the source's phase ``i``
    (length = source phase count); ``consumption[j]`` consumed by the
    target's phase ``j``.  Zero entries are allowed (a phase that does
    not touch this channel) as long as a full cycle moves some tokens.
    """

    name: str
    source: str
    target: str
    production: Tuple[int, ...]
    consumption: Tuple[int, ...]
    tokens: int = 0

    def __post_init__(self):
        object.__setattr__(
            self, "production", _check_sequence("production", self.production, True)
        )
        object.__setattr__(
            self,
            "consumption",
            _check_sequence("consumption", self.consumption, True),
        )
        if not isinstance(self.tokens, int) or isinstance(self.tokens, bool) or self.tokens < 0:
            raise ValidationError(f"tokens must be a non-negative int, got {self.tokens!r}")

    @property
    def cycle_production(self) -> int:
        return sum(self.production)

    @property
    def cycle_consumption(self) -> int:
        return sum(self.consumption)


class CSDFGraph:
    """A cyclo-static dataflow multigraph (builder-style, like SDFGraph)."""

    def __init__(self, name: str = "csdf"):
        self.name = name
        self._actors: Dict[str, CSDFActor] = {}
        self._edges: Dict[str, CSDFEdge] = {}
        self._out: Dict[str, List[str]] = {}
        self._in: Dict[str, List[str]] = {}
        self._edge_counter = 0

    def add_actor(self, name: str, execution_times: Sequence[Rational]) -> CSDFActor:
        if name in self._actors:
            raise ValidationError(f"duplicate actor name {name!r}")
        actor = CSDFActor(name, tuple(execution_times))
        self._actors[name] = actor
        self._out[name] = []
        self._in[name] = []
        return actor

    def add_edge(
        self,
        source: str,
        target: str,
        production: Sequence[int],
        consumption: Sequence[int],
        tokens: int = 0,
        name: Optional[str] = None,
    ) -> CSDFEdge:
        for endpoint in (source, target):
            if endpoint not in self._actors:
                raise ValidationError(f"unknown actor {endpoint!r}")
        if name is None:
            while True:
                name = f"c{self._edge_counter}"
                self._edge_counter += 1
                if name not in self._edges:
                    break
        elif name in self._edges:
            raise ValidationError(f"duplicate edge name {name!r}")
        edge = CSDFEdge(name, source, target, tuple(production), tuple(consumption), tokens)
        if len(edge.production) != self._actors[source].phase_count:
            raise ValidationError(
                f"edge {name!r}: production sequence has {len(edge.production)} "
                f"entries but {source!r} has {self._actors[source].phase_count} phases"
            )
        if len(edge.consumption) != self._actors[target].phase_count:
            raise ValidationError(
                f"edge {name!r}: consumption sequence has {len(edge.consumption)} "
                f"entries but {target!r} has {self._actors[target].phase_count} phases"
            )
        self._edges[name] = edge
        self._out[source].append(name)
        self._in[target].append(name)
        return edge

    # -- inspection ------------------------------------------------------

    @property
    def actors(self) -> List[CSDFActor]:
        return list(self._actors.values())

    @property
    def actor_names(self) -> List[str]:
        return list(self._actors)

    @property
    def edges(self) -> List[CSDFEdge]:
        return list(self._edges.values())

    def actor(self, name: str) -> CSDFActor:
        if name not in self._actors:
            raise ValidationError(f"unknown actor {name!r}")
        return self._actors[name]

    def edge(self, name: str) -> CSDFEdge:
        if name not in self._edges:
            raise ValidationError(f"no edge named {name!r}")
        return self._edges[name]

    def out_edges(self, actor: str) -> List[CSDFEdge]:
        return [self._edges[e] for e in self._out[actor]]

    def in_edges(self, actor: str) -> List[CSDFEdge]:
        return [self._edges[e] for e in self._in[actor]]

    def actor_count(self) -> int:
        return len(self._actors)

    def edge_count(self) -> int:
        return len(self._edges)

    def total_tokens(self) -> int:
        return sum(e.tokens for e in self._edges.values())

    def phase_count(self, actor: str) -> int:
        return self.actor(actor).phase_count

    def is_plain_sdf(self) -> bool:
        """True iff every actor has a single phase (degenerate CSDF)."""
        return all(a.phase_count == 1 for a in self._actors.values())

    def undirected_components(self) -> List[List[str]]:
        seen: set = set()
        components: List[List[str]] = []
        for start in self._actors:
            if start in seen:
                continue
            stack, component = [start], []
            seen.add(start)
            while stack:
                node = stack.pop()
                component.append(node)
                neighbours = [self._edges[e].target for e in self._out[node]]
                neighbours += [self._edges[e].source for e in self._in[node]]
                for other in neighbours:
                    if other not in seen:
                        seen.add(other)
                        stack.append(other)
            components.append(component)
        return components

    def __repr__(self) -> str:
        return (
            f"CSDFGraph({self.name!r}, actors={self.actor_count()}, "
            f"edges={self.edge_count()}, tokens={self.total_tokens()})"
        )
