"""Interval (BCET/WCET) throughput bounds."""

import random
from fractions import Fraction

import pytest

from repro.analysis.intervals import interval_throughput
from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.examples import section41_example
from repro.sdf.graph import SDFGraph


class TestBounds:
    def test_degenerate_interval_is_exact(self, simple_ring):
        exact = throughput(simple_ring).cycle_time
        bounds = interval_throughput(
            simple_ring, {a: (simple_ring.execution_time(a),) * 2 for a in simple_ring.actor_names}
        )
        assert bounds.best_case == bounds.worst_case == exact
        assert bounds.spread == 0

    def test_bounds_bracket_concrete_samples(self):
        g = section41_example()
        intervals = {"A3": (3, 8), "B2": (2, 6)}
        bounds = interval_throughput(g, intervals)
        rng = random.Random(5)
        for _ in range(6):
            probe = g.copy()
            for actor, (low, high) in intervals.items():
                probe.set_execution_time(actor, rng.randint(low, high))
            assert bounds.contains(throughput(probe).cycle_time)

    def test_partial_intervals_keep_other_times(self, simple_ring):
        bounds = interval_throughput(simple_ring, {"X": (1, 10)})
        # Y and Z stay 3 and 4: cycle = X + 7.
        assert bounds.best_case == 8
        assert bounds.worst_case == 17

    def test_noncritical_interval_has_no_spread(self):
        g = SDFGraph()
        g.add_actor("fast", 1)
        g.add_actor("slow", 50)
        g.add_edge("fast", "fast", tokens=1)
        g.add_edge("slow", "slow", tokens=1)
        g.add_edge("fast", "slow")
        bounds = interval_throughput(g, {"fast": (1, 10)})
        assert bounds.spread == 0
        assert bounds.worst_case == 50

    def test_methods_agree(self, simple_ring):
        a = interval_throughput(simple_ring, {"X": (2, 9)}, method="symbolic")
        b = interval_throughput(simple_ring, {"X": (2, 9)}, method="hsdf")
        assert (a.best_case, a.worst_case) == (b.best_case, b.worst_case)


class TestValidation:
    def test_inverted_interval(self, simple_ring):
        with pytest.raises(ValidationError, match="inverted"):
            interval_throughput(simple_ring, {"X": (5, 2)})

    def test_unknown_actor(self, simple_ring):
        with pytest.raises(ValidationError):
            interval_throughput(simple_ring, {"ghost": (1, 2)})

    def test_fractional_endpoints(self, simple_ring):
        bounds = interval_throughput(
            simple_ring, {"X": (Fraction(1, 2), Fraction(5, 2))}
        )
        assert bounds.best_case == Fraction(15, 2)
        assert bounds.worst_case == Fraction(19, 2)
