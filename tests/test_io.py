"""Serialisation round-trips (dict / JSON / SDF3-style XML)."""

import random
from fractions import Fraction

import pytest

from repro.errors import ValidationError
from repro.graphs import TABLE1_CASES
from repro.graphs.random_sdf import random_consistent_sdf
from repro.sdf.graph import SDFGraph
from repro.sdf.io import (
    from_dict,
    from_json,
    from_sdf3_xml,
    to_dict,
    to_json,
    to_sdf3_xml,
)


class TestDictRoundTrip:
    def test_simple(self, two_actor_multirate):
        clone = from_dict(to_dict(two_actor_multirate))
        assert clone.structurally_equal(two_actor_multirate)
        assert clone.name == two_actor_multirate.name

    def test_fraction_execution_times(self):
        g = SDFGraph("frac")
        g.add_actor("a", Fraction(3, 7))
        g.add_edge("a", "a", tokens=1)
        clone = from_dict(to_dict(g))
        assert clone.execution_time("a") == Fraction(3, 7)

    def test_edge_names_preserved(self, simple_ring):
        clone = from_dict(to_dict(simple_ring))
        assert {e.name for e in clone.edges} == {e.name for e in simple_ring.edges}

    def test_defaults_tolerated(self):
        data = {
            "name": "min",
            "actors": [{"name": "a"}],
            "edges": [{"source": "a", "target": "a", "tokens": 1}],
        }
        g = from_dict(data)
        assert g.execution_time("a") == 0
        assert g.edges[0].production == 1

    def test_bad_time_payload_rejected(self):
        data = {"name": "x", "actors": [{"name": "a", "execution_time": "fast"}], "edges": []}
        with pytest.raises(ValidationError):
            from_dict(data)

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = random_consistent_sdf(random.Random(seed))
        assert from_dict(to_dict(g)).structurally_equal(g)


class TestJson:
    def test_round_trip(self, two_actor_multirate):
        assert from_json(to_json(two_actor_multirate)).structurally_equal(
            two_actor_multirate
        )

    def test_json_is_text(self, simple_ring):
        text = to_json(simple_ring)
        assert '"actors"' in text and '"edges"' in text


class TestSdf3Xml:
    def test_round_trip(self, two_actor_multirate):
        clone = from_sdf3_xml(to_sdf3_xml(two_actor_multirate))
        assert clone.structurally_equal(two_actor_multirate)

    def test_fractional_time_round_trip(self):
        g = SDFGraph("frac")
        g.add_actor("a", Fraction(5, 2))
        g.add_edge("a", "a", tokens=1)
        clone = from_sdf3_xml(to_sdf3_xml(g))
        assert clone.execution_time("a") == Fraction(5, 2)

    def test_contains_sdf3_markers(self, simple_ring):
        text = to_sdf3_xml(simple_ring)
        assert "<sdf3" in text and "applicationGraph" in text and "channel" in text

    def test_initial_tokens_attribute(self, simple_ring):
        text = to_sdf3_xml(simple_ring)
        assert 'initialTokens="1"' in text

    def test_missing_application_graph_rejected(self):
        with pytest.raises(ValidationError):
            from_sdf3_xml("<sdf3 type='sdf'></sdf3>")

    def test_missing_sdf_element_rejected(self):
        with pytest.raises(ValidationError):
            from_sdf3_xml("<sdf3><applicationGraph name='x'/></sdf3>")

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_benchmarks_round_trip(self, case):
        g = case.build()
        assert from_sdf3_xml(to_sdf3_xml(g)).structurally_equal(g)
