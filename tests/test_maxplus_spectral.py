"""Eigenvalue/cycle-time computations on max-plus matrices."""

import random
from fractions import Fraction

import pytest

from repro.errors import ConvergenceError
from repro.maxplus.algebra import EPSILON
from repro.maxplus.matrix import MaxPlusMatrix, MaxPlusVector
from repro.maxplus.spectral import (
    critical_indices,
    cycle_time,
    eigenvalue,
    power_iteration_cycle_time,
    precedence_graph,
)
from repro.mcm.brute import brute_force_mcr


def random_irreducible(rng, size, max_weight=12):
    """A dense random matrix (all entries finite) — always irreducible."""
    return MaxPlusMatrix(
        [rng.randint(0, max_weight) for _ in range(size)] for _ in range(size)
    )


class TestPrecedenceGraph:
    def test_orientation(self):
        # entry [i][j] is an edge j -> i.
        m = MaxPlusMatrix([[EPSILON, 5], [EPSILON, EPSILON]])
        g = precedence_graph(m)
        (edge,) = g.edges
        assert (edge.source, edge.target, edge.weight) == (1, 0, 5)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            precedence_graph(MaxPlusMatrix([[1, 2]]))


class TestEigenvalue:
    def test_diagonal(self):
        m = MaxPlusMatrix([[3, EPSILON], [EPSILON, 5]])
        assert eigenvalue(m) == 5

    def test_two_cycle(self):
        m = MaxPlusMatrix([[EPSILON, 2], [4, EPSILON]])
        assert eigenvalue(m) == 3  # cycle weight 6, length 2

    def test_nilpotent_is_none(self):
        m = MaxPlusMatrix([[EPSILON, 1], [EPSILON, EPSILON]])
        assert eigenvalue(m) is None
        assert cycle_time(m) == 0

    def test_fractional(self):
        m = MaxPlusMatrix([[Fraction(7, 2)]])
        assert eigenvalue(m) == Fraction(7, 2)

    def test_critical_indices_on_cycle(self):
        m = MaxPlusMatrix(
            [
                [EPSILON, 10, EPSILON],
                [10, EPSILON, EPSILON],
                [EPSILON, EPSILON, 1],
            ]
        )
        value, nodes = critical_indices(m)
        assert value == 10
        assert set(nodes) == {0, 1}

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_brute_force(self, seed):
        rng = random.Random(seed)
        m = random_irreducible(rng, rng.randint(1, 5))
        assert eigenvalue(m) == brute_force_mcr(precedence_graph(m)).value


class TestPowerIteration:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_karp_on_irreducible(self, seed):
        rng = random.Random(100 + seed)
        m = random_irreducible(rng, rng.randint(1, 6))
        assert power_iteration_cycle_time(m) == eigenvalue(m)

    def test_periodic_with_cyclicity_two(self):
        # A 2-cycle has cyclicity 2; the power method must still settle.
        m = MaxPlusMatrix([[EPSILON, 3], [5, EPSILON]])
        assert power_iteration_cycle_time(m) == 4

    def test_diverges_on_rate_mismatched_reducible(self):
        m = MaxPlusMatrix([[1, EPSILON], [EPSILON, 2]])
        with pytest.raises(ConvergenceError):
            power_iteration_cycle_time(m, max_steps=200)

    def test_custom_start_vector(self):
        m = MaxPlusMatrix([[2]])
        assert power_iteration_cycle_time(m, start=MaxPlusVector([100])) == 2

    def test_requires_square(self):
        with pytest.raises(ValueError):
            power_iteration_cycle_time(MaxPlusMatrix([[1, 2]]))
