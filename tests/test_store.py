"""The durable result store: crash consistency, corruption, two tiers.

Three layers of assurance:

* unit tests of the record format, LRU budget, quarantine semantics and
  the journal-agreement check;
* a Hypothesis property: *no* single corruption of a record file (byte
  flip, truncation, garbage splice, deletion) can make the store return
  a wrong analysis result — every outcome is quarantine-or-recompute;
* a chaos suite that arms a ``kill`` crash point at every named store
  I/O site (:data:`repro.analysis.faults.CRASH_SITES`), lets a real
  subprocess die there, and asserts the store recovers to a verifiably
  consistent state on restart.
"""

from __future__ import annotations

import functools
import os
import pickle
import subprocess
import sys
import tempfile
import threading
from fractions import Fraction
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache import AnalysisCache
from repro.analysis.faults import (
    CRASH_SITES,
    KILL_EXIT_STATUS,
    arm_crash_points,
    disarm_crash_points,
)
from repro.analysis.store import (
    ResultStore,
    canonical_params,
    key_digest,
)
from repro.analysis.throughput import throughput
from repro.graphs.examples import figure3_graph

PARAMS = {"method": "symbolic"}


@functools.lru_cache(maxsize=1)
def _reference():
    """(graph, exact throughput result) computed once for the module."""
    graph = figure3_graph()
    return graph, throughput(graph)


@pytest.fixture(autouse=True)
def _disarmed():
    """No crash plan leaks between tests (the plan is process-global)."""
    disarm_crash_points()
    yield
    disarm_crash_points()


def _populated(root) -> tuple:
    graph, result = _reference()
    store = ResultStore(root)
    assert store.put(graph.fingerprint(), "throughput", result,
                     params=PARAMS)
    return store, graph, result


def _record_file(store: ResultStore, graph) -> Path:
    digest = key_digest(graph.fingerprint(), "throughput", PARAMS)
    return store._record_path(digest)


class TestRecordRoundTrip:
    def test_hit_preserves_exact_result_and_provenance(self, tmp_path):
        store, graph, result = _populated(tmp_path)
        status, value = store.get(graph.fingerprint(), "throughput",
                                  params=PARAMS)
        assert status == "hit"
        assert value.cycle_time == result.cycle_time
        assert isinstance(value.cycle_time, Fraction)
        assert value.provenance.fingerprint == graph.fingerprint()
        assert value.per_actor == result.per_actor

    def test_params_are_canonical_across_dict_order(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("fp", "x", [1], params={"a": 1, "b": 2})
        status, _ = store.get("fp", "x", params={"b": 2, "a": 1})
        assert status == "hit"
        assert canonical_params({"a": 1, "b": 2}) \
            == canonical_params({"b": 2, "a": 1})

    def test_distinct_params_are_distinct_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("fp", "x", "sym", params={"method": "symbolic"})
        store.put("fp", "x", "hsdf", params={"method": "hsdf"})
        assert store.get("fp", "x", params={"method": "symbolic"})[1] == "sym"
        assert store.get("fp", "x", params={"method": "hsdf"})[1] == "hsdf"

    def test_miss_on_absent_key(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get("nope", "throughput") == ("miss", None)
        assert store.stats().misses == 1

    def test_put_skips_existing_record(self, tmp_path):
        store, graph, result = _populated(tmp_path)
        assert store.put(graph.fingerprint(), "throughput", result,
                         params=PARAMS)
        assert store.stats().put_skips == 1

    def test_timed_out_results_are_refused(self, tmp_path):
        store, graph, result = _populated(tmp_path)

        class FakeTimedOut:
            provenance = type("P", (), {"status": "timed-out"})()

        assert not store.put("fp-timeout", "throughput", FakeTimedOut())
        assert store.get("fp-timeout", "throughput") == ("miss", None)

    def test_unpicklable_value_is_swallowed(self, tmp_path):
        store = ResultStore(tmp_path)
        assert not store.put("fp", "x", threading.Lock())
        assert store.stats().put_errors == 1


class TestCorruptionDetection:
    def test_renamed_record_is_quarantined_not_served(self, tmp_path):
        # Stale data wearing a fresh address: record for key A moved to
        # key B's path must never answer for B.
        store, graph, _ = _populated(tmp_path)
        source = _record_file(store, graph)
        alias = key_digest("other-fingerprint", "throughput", PARAMS)
        target = store._record_path(alias)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(source, target)
        status, value = store.get("other-fingerprint", "throughput",
                                  params=PARAMS)
        assert (status, value) == ("quarantined", None)
        assert store.stats().quarantined_records == 1

    def test_valid_checksum_but_garbage_pickle_is_quarantined(self, tmp_path):
        import hashlib
        import json

        store = ResultStore(tmp_path)
        payload = b"\x80\x04 not really a pickle"
        header = json.dumps({
            "fingerprint": "fp", "analysis": "x",
            "params": canonical_params(None),
            "payload_len": len(payload),
            "checksum": hashlib.sha256(payload).hexdigest(),
        }).encode() + b"\n"
        path = store._record_path(key_digest("fp", "x"))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"repro-store-v1\n" + header + payload)
        assert store.get("fp", "x") == ("quarantined", None)

    def test_verify_without_quarantine_reports_undetected(self, tmp_path):
        store, graph, _ = _populated(tmp_path)
        _record_file(store, graph).write_bytes(b"torn")
        report = store.verify(quarantine=False)
        assert report.records == 1 and report.valid == 0
        assert report.undetected_corrupt == 1
        assert not report.ok
        # The default (quarantining) verify then cleans up.
        report = store.verify()
        assert report.undetected_corrupt == 0
        assert report.quarantined_now == 1
        assert report.ok

    def test_verify_ok_on_healthy_store(self, tmp_path):
        store, _, _ = _populated(tmp_path)
        report = store.verify()
        assert report.ok and report.valid == report.records == 1
        assert report.as_dict()["schema"] == "repro-store-verify-v1"


def _mutate(raw: bytes, kind: str, position: int, value: int) -> bytes:
    if kind == "flip":
        index = position % len(raw)
        return raw[:index] + bytes([raw[index] ^ (value or 1)]) \
            + raw[index + 1:]
    if kind == "truncate":
        return raw[: position % len(raw)]
    if kind == "garbage":
        index = position % len(raw)
        return raw[:index] + bytes([value] * 8) + raw[index + 8:]
    raise AssertionError(kind)


class TestCorruptionProperty:
    @settings(max_examples=60)
    @given(
        kind=st.sampled_from(["flip", "truncate", "garbage", "delete"]),
        position=st.integers(min_value=0, max_value=1 << 16),
        value=st.integers(min_value=0, max_value=255),
    )
    def test_no_corruption_yields_a_wrong_result(self, kind, position, value):
        """Byte-flip/truncate/garbage/delete a record → the store serves
        the original exact value or nothing; a republish always
        converges back to a healthy record."""
        graph, result = _reference()
        fingerprint = graph.fingerprint()
        with tempfile.TemporaryDirectory() as root:
            store = ResultStore(root)
            store.put(fingerprint, "throughput", result, params=PARAMS)
            path = _record_file(store, graph)
            original = path.read_bytes()
            if kind == "delete":
                path.unlink()
                mutated = None
            else:
                mutated = _mutate(original, kind, position, value)
                path.write_bytes(mutated)

            status, value_out = store.get(fingerprint, "throughput",
                                          params=PARAMS)
            if mutated == original:
                # The mutation was an identity (flip to the same byte).
                assert status == "hit"
            else:
                assert status in ("miss", "quarantined")
                assert value_out is None
            if status == "hit":
                assert value_out.cycle_time == result.cycle_time

            # Quarantine-or-recompute: publishing again always restores
            # a servable record, and verify certifies zero undetected.
            assert store.put(fingerprint, "throughput", result,
                             params=PARAMS)
            status, value_out = store.get(fingerprint, "throughput",
                                          params=PARAMS)
            assert status == "hit"
            assert value_out.cycle_time == result.cycle_time
            assert store.verify().undetected_corrupt == 0


class TestBudgetAndCompaction:
    def test_lru_eviction_by_mtime(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=10_000_000)
        for index in range(4):
            store.put(f"fp-{index}", "x", b"p" * 64)
        # Pin explicit mtimes so LRU order is deterministic.
        for index in range(4):
            path = store._record_path(key_digest(f"fp-{index}", "x"))
            os.utime(path, (1000 + index, 1000 + index))
        size = store.stats().bytes
        outcome = store.compact(max_bytes=size // 2)
        assert outcome["evicted"] == 2
        assert store.get("fp-0", "x")[0] == "miss"   # oldest gone
        assert store.get("fp-3", "x")[0] == "hit"    # newest kept

    def test_hit_refreshes_eviction_clock(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=10_000_000)
        for index in range(2):
            store.put(f"fp-{index}", "x", b"p" * 64)
            path = store._record_path(key_digest(f"fp-{index}", "x"))
            os.utime(path, (1000 + index, 1000 + index))
        store.get("fp-0", "x")  # touch the older record
        outcome = store.compact(max_bytes=store.stats().bytes // 2)
        assert outcome["evicted"] >= 1
        assert store.get("fp-0", "x")[0] == "hit"    # survived: recently used
        assert store.get("fp-1", "x")[0] == "miss"

    def test_put_triggers_opportunistic_compaction(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=256)
        for index in range(6):
            store.put(f"fp-{index}", "x", b"p" * 200)
        assert store.stats().bytes <= 2 * 256  # bounded, not unbounded

    def test_compact_sweeps_tmp_garbage(self, tmp_path):
        store = ResultStore(tmp_path)
        (store._tmp / "dead.123.1.tmp").write_bytes(b"crash leftover")
        outcome = store.compact()
        assert outcome["tmp_removed"] == 1
        assert store.stats().tmp_files == 0

    def test_purge(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put("fp", "throughput", b"t")
        store.put("fp", "latency", b"l")
        assert store.purge(analysis="latency") == 1
        assert store.get("fp", "throughput")[0] == "hit"
        assert store.get("fp", "latency")[0] == "miss"
        assert store.purge() >= 1
        assert store.stats().records == 0

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, max_bytes=0)


class TestConcurrency:
    def test_concurrent_publishers_of_one_key(self, tmp_path):
        store = ResultStore(tmp_path)
        errors = []

        def publish():
            try:
                store.put("fp", "x", list(range(512)))
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        threads = [threading.Thread(target=publish) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats().records == 1
        assert store.get("fp", "x") == ("hit", list(range(512)))
        assert store.verify().undetected_corrupt == 0

    def test_two_processes_share_one_root(self, tmp_path):
        _populated(tmp_path)
        graph, result = _reference()
        script = (
            "import sys\n"
            "from repro.analysis.store import ResultStore\n"
            "status, value = ResultStore(sys.argv[1]).get(\n"
            "    sys.argv[2], 'throughput', params={'method': 'symbolic'})\n"
            "print(status, value.cycle_time)\n"
        )
        run = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path),
             graph.fingerprint()],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert run.returncode == 0, run.stderr
        assert run.stdout.strip() == f"hit {result.cycle_time}"


class TestRaiseCrashPoints:
    def test_read_failure_degrades_to_error_not_crash(self, tmp_path):
        store, graph, _ = _populated(tmp_path)
        arm_crash_points(["raise@store.read"])
        status, value = store.get(graph.fingerprint(), "throughput",
                                  params=PARAMS)
        assert (status, value) == ("error", None)
        assert store.stats().read_errors == 1
        disarm_crash_points()
        assert store.get(graph.fingerprint(), "throughput",
                         params=PARAMS)[0] == "hit"

    def test_publish_failure_is_counted_not_raised(self, tmp_path):
        graph, result = _reference()
        store = ResultStore(tmp_path)
        arm_crash_points(["raise@store.publish"])
        assert not store.put(graph.fingerprint(), "throughput", result,
                             params=PARAMS)
        assert store.stats().put_errors == 1
        assert store.stats().tmp_files == 0  # failed temp cleaned up

    def test_raise_with_custom_exception_and_hits(self, tmp_path):
        store, graph, _ = _populated(tmp_path)
        arm_crash_points(["raise@store.read:MemoryError#2"])
        assert store.get(graph.fingerprint(), "throughput",
                         params=PARAMS)[0] == "hit"   # arrival 1: no fire
        with pytest.raises(MemoryError):
            # MemoryError is not an OSError: it must escape the store's
            # I/O-failure handling (it is not a disk problem).
            store.get(graph.fingerprint(), "throughput", params=PARAMS)


#: Child flow touching every crash site in CRASH_SITES order: two gets
#: (read, then quarantine on a pre-corrupted record), one put (tmp-write,
#: tmp-sync, publish, publish-done), one compact (evict).
_CHAOS_CHILD = """
import sys
from repro.analysis.store import ResultStore
root = sys.argv[1]
store = ResultStore(root, max_bytes=1)
store.get("absent", "x")
store.get("corrupt-fp", "x")
store.put("fp-new", "x", list(range(256)))
store.compact()
print("SURVIVED")
"""


class TestKillCrashPoints:
    @pytest.mark.parametrize("site", CRASH_SITES)
    def test_kill_at_every_site_recovers_to_consistency(self, site, tmp_path):
        """A process killed at any store I/O boundary leaves a store
        that (a) verifies with zero undetected-corrupt records after
        restart and (b) still serves and accepts results."""
        # Seed: one healthy record and one corrupt record (so the
        # quarantine site is reachable).
        store = ResultStore(tmp_path)
        store.put("fp-old", "x", "healthy")
        corrupt = store._record_path(key_digest("corrupt-fp", "x"))
        corrupt.parent.mkdir(parents=True, exist_ok=True)
        corrupt.write_bytes(b"repro-store-v1\ntorn")

        run = subprocess.run(
            [sys.executable, "-c", _CHAOS_CHILD, str(tmp_path)],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src",
                 "REPRO_CRASH_POINTS": f"kill@{site}"},
        )
        assert run.returncode == KILL_EXIT_STATUS, (site, run.stderr)
        assert "SURVIVED" not in run.stdout

        # Restart: a fresh process over the same root.
        revived = ResultStore(tmp_path)
        report = revived.verify()
        assert report.undetected_corrupt == 0, (site, report.as_dict())
        # The healthy record either survived intact or was evicted by
        # the child's compaction — it is never served corrupted.
        status, value = revived.get("fp-old", "x")
        assert status in ("hit", "miss")
        if status == "hit":
            assert value == "healthy"
        # The store still works end to end.
        assert revived.put("fp-after", "x", [1, 2, 3])
        assert revived.get("fp-after", "x") == ("hit", [1, 2, 3])
        assert revived.verify().undetected_corrupt == 0

    def test_unarmed_child_survives(self, tmp_path):
        run = subprocess.run(
            [sys.executable, "-c", _CHAOS_CHILD, str(tmp_path)],
            capture_output=True, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        assert run.returncode == 0, run.stderr
        assert "SURVIVED" in run.stdout


class TestJournalAgreement:
    def test_journal_subset_of_store_holds_and_breaks(self, tmp_path):
        from repro.analysis.batch import run_batch

        graph, _ = _reference()
        journal = tmp_path / "journal.jsonl"
        store = ResultStore(tmp_path / "store")
        # A fresh memory cache: a warm default_cache would serve the
        # result from memory and (correctly) never publish to disk.
        report = run_batch([graph], analyses=("throughput",),
                           backend="serial", journal=journal, store=store,
                           cache=AnalysisCache(maxsize=8))
        assert len(report.ok) == 1
        agreement = store.check_journal(journal)
        assert agreement["checked"] == 1
        assert agreement["matched"] == 1 and not agreement["missing"]

        # Delete the record: the journal now references a missing
        # result and verify must say so.
        store.purge()
        verify = store.verify()
        store.check_journal(journal, report=verify)
        assert verify.journal["missing"]
        assert not verify.ok


class TestCacheDiskTier:
    def test_memory_disk_compute_order(self, tmp_path):
        graph, _ = _reference()
        cache = AnalysisCache(maxsize=8, store=ResultStore(tmp_path))
        cold = cache.throughput(graph)
        stats = cache.stats()
        assert (stats.disk_hits, stats.disk_misses, stats.disk_puts) \
            == (0, 1, 1)

        # Same cache: memory hit, disk untouched.
        assert cache.throughput(graph) is cold
        assert cache.stats().disk_hits == 0

        # Fresh cache, same store: a *disk* hit, no recompute, result
        # exact and provenance intact.
        warm_cache = AnalysisCache(maxsize=8).attach_store(
            ResultStore(tmp_path))
        warm = warm_cache.throughput(graph)
        stats = warm_cache.stats()
        assert (stats.disk_hits, stats.misses) == (1, 1)
        assert warm.cycle_time == cold.cycle_time
        assert warm.provenance.fingerprint == graph.fingerprint()

    def test_quarantined_record_recomputes(self, tmp_path):
        graph, _ = _reference()
        store = ResultStore(tmp_path)
        cache = AnalysisCache(maxsize=8, store=store)
        cache.throughput(graph)
        _record_file(store, graph).write_bytes(b"garbage")
        fresh = AnalysisCache(maxsize=8, store=store)
        result = fresh.throughput(graph)
        stats = fresh.stats()
        assert stats.disk_quarantined == 1
        assert stats.disk_misses == 1 and stats.disk_hits == 0
        assert result.cycle_time == _reference()[1].cycle_time

    def test_disk_counters_in_snapshot_invariants(self, tmp_path):
        graph, _ = _reference()
        cache = AnalysisCache(maxsize=8, store=ResultStore(tmp_path))
        cache.throughput(graph)
        cache.latency(graph)
        stats = cache.stats()
        assert stats.disk_hits + stats.disk_misses <= stats.misses
        assert stats.disk_quarantined <= stats.disk_misses
        assert stats.disk_errors <= stats.disk_misses
        as_dict = stats.as_dict()
        for field in ("disk_hits", "disk_misses", "disk_quarantined",
                      "disk_errors", "disk_puts"):
            assert as_dict[field] == getattr(stats, field)

    def test_store_back_publishes_to_disk(self, tmp_path):
        # The process backend adopts worker results via cache.store():
        # with a disk tier attached they must become durable.
        graph, result = _reference()
        store = ResultStore(tmp_path)
        cache = AnalysisCache(maxsize=8, store=store)
        cache.store(graph, "throughput", result, params=PARAMS)
        assert store.get(graph.fingerprint(), "throughput",
                         params=PARAMS)[0] == "hit"
        assert cache.stats().disk_puts == 1
