"""Exception hierarchy and the public package surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in (
            "ValidationError",
            "InconsistentGraphError",
            "DeadlockError",
            "UnboundedThroughputError",
            "ConvergenceError",
            "NotAbstractableError",
            "NoAbstractionFoundError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_value_errors_also_value_errors(self):
        assert issubclass(errors.ValidationError, ValueError)
        assert issubclass(errors.InconsistentGraphError, ValueError)

    def test_runtime_errors(self):
        assert issubclass(errors.DeadlockError, RuntimeError)
        assert issubclass(errors.ConvergenceError, RuntimeError)

    def test_witness_payloads(self):
        e = errors.DeadlockError("stuck", blocked={"a": 2})
        assert e.blocked == {"a": 2}
        u = errors.UnboundedThroughputError("free", actor="src")
        assert u.actor == "src"

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.NotAbstractableError("nope")


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_surface(self):
        # The README quickstart names; breaking any of these is a
        # breaking change for downstream users.
        for name in (
            "SDFGraph",
            "throughput",
            "convert_to_hsdf",
            "traditional_hsdf",
            "abstract_graph",
            "Abstraction",
            "unfold",
            "dominates",
            "repetition_vector",
            "latency",
            "prune_redundant_edges",
            "discover_abstraction",
            "sdf_to_maxplus_matrix",
        ):
            assert name in repro.__all__

    def test_public_items_documented(self):
        import inspect

        for name in repro.__all__:
            item = getattr(repro, name)
            if inspect.isclass(item) or inspect.isfunction(item):
                assert item.__doc__, f"{name} lacks a docstring"

    def test_docstring_example_runs(self):
        from fractions import Fraction

        g = repro.SDFGraph("example")
        g.add_actor("A", execution_time=3)
        g.add_actor("B", execution_time=1)
        g.add_edge("A", "B", production=1, consumption=2, tokens=2)
        g.add_edge("B", "A", production=2, consumption=1, tokens=2)
        result = repro.throughput(g)
        assert result.per_actor["A"] == Fraction(2, result.cycle_time)
        conv = repro.convert_to_hsdf(g)
        assert conv.graph.is_homogeneous()
