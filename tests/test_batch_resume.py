"""Batch hardening: journal/resume, retries, quarantine, isolation."""

from __future__ import annotations

import json

import pytest

from repro.analysis.batch import analyse_graph, run_batch
from repro.analysis.cache import AnalysisCache
from repro.analysis.deadline import CancelToken
from repro.analysis.faults import FaultPlan, FaultRule
from repro.analysis.journal import BatchJournal, JournalRecord
from repro.analysis.throughput import throughput
from repro.graphs.dsp import modem, satellite_receiver
from repro.graphs.examples import figure3_graph
from repro.graphs.multimedia import mp3_playback


def small_graphs():
    return [figure3_graph(), modem(), satellite_receiver()]


class TestJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with BatchJournal(path) as journal:
            journal.record(JournalRecord(
                name="g", fingerprint="fp-1", ok=True,
                values={"throughput": {"cycle_time": "41"}},
            ))
            journal.record(JournalRecord(
                name="h", fingerprint="fp-2", ok=False,
                error="boom", error_type="ValueError",
            ))
        records = BatchJournal(path).load()
        assert set(records) == {"fp-1", "fp-2"}
        assert records["fp-1"].ok
        assert records["fp-1"].values["throughput"]["cycle_time"] == "41"
        assert records["fp-2"].error_type == "ValueError"
        assert BatchJournal(path).completed_fingerprints() == ["fp-1"]

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with BatchJournal(path) as journal:
            journal.record(JournalRecord(name="g", fingerprint="fp", ok=False,
                                         error="first try"))
            journal.record(JournalRecord(name="g", fingerprint="fp", ok=True))
        assert BatchJournal(path).load()["fp"].ok

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with BatchJournal(path) as journal:
            journal.record(JournalRecord(name="g", fingerprint="fp-1", ok=True))
        with path.open("a") as f:
            f.write('{"kind": "result", "name": "h", "fing')  # crash mid-write
        records = BatchJournal(path).load()
        assert set(records) == {"fp-1"}

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        good = json.dumps(JournalRecord(name="g", fingerprint="fp", ok=True).as_dict())
        path.write_text("not json at all\n" + good + "\n")
        with pytest.raises(ValueError, match="corrupt journal"):
            BatchJournal(path).load()

    def test_missing_file_is_empty(self, tmp_path):
        assert BatchJournal(tmp_path / "absent.jsonl").load() == {}


class TestResume:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_resume_skips_completed_fingerprints(self, tmp_path, backend):
        path = tmp_path / "run.jsonl"
        graphs = small_graphs()
        first = run_batch(graphs, backend=backend, workers=2,
                          journal=path, cache=AnalysisCache())
        assert len(first.ok) == 3

        second = run_batch(graphs, backend=backend, workers=2,
                           journal=path, resume=True, cache=AnalysisCache())
        assert len(second.resumed) == 3
        assert all(r.ok and r.duration == 0.0 for r in second.results)
        # Resumed values are the journal's JSON summaries.
        for graph, result in zip(graphs, second.results):
            expected = str(throughput(graph).cycle_time)
            assert result.values["throughput"]["cycle_time"] == expected

    def test_resume_reanalyses_failures(self, tmp_path):
        path = tmp_path / "run.jsonl"
        graphs = small_graphs()
        flake = FaultPlan((FaultRule(action="raise", name="modem"),))
        first = run_batch(graphs, backend="serial", journal=path,
                          faults=flake, cache=AnalysisCache())
        assert [r.ok for r in first.results] == [True, False, True]

        second = run_batch(graphs, backend="serial", journal=path,
                           resume=True, cache=AnalysisCache())
        assert [r.resumed for r in second.results] == [True, False, True]
        assert all(r.ok for r in second.results)
        # The journal now records modem's success; a third resume skips all.
        third = run_batch(graphs, backend="serial", journal=path,
                          resume=True, cache=AnalysisCache())
        assert len(third.resumed) == 3

    def test_resume_is_fingerprint_keyed_not_order_keyed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run_batch([figure3_graph(), modem()], backend="serial",
                  journal=path, cache=AnalysisCache())
        # Reordered + extended list: only the new graph is analysed.
        report = run_batch([modem(), satellite_receiver(), figure3_graph()],
                           backend="serial", journal=path, resume=True,
                           cache=AnalysisCache())
        assert [r.resumed for r in report.results] == [True, False, True]

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="journal"):
            run_batch([figure3_graph()], resume=True)


class TestRetries:
    def test_transient_failure_retried(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="modem",
            exception="TransientWorkerError", attempts=2,
        ),))
        result = analyse_graph(modem(), faults=plan, retries=3, backoff=0.001)
        assert result.ok
        assert result.attempts == 3  # two injected failures + success

    def test_retries_exhausted_records_failure(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="modem", exception="TransientWorkerError",
        ),))
        result = analyse_graph(modem(), faults=plan, retries=2, backoff=0.001)
        assert not result.ok
        assert result.attempts == 3
        assert result.error_type == "TransientWorkerError"

    def test_deterministic_failures_not_retried(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="modem", exception="ValueError",
        ),))
        result = analyse_graph(modem(), faults=plan, retries=5, backoff=0.001)
        assert not result.ok
        assert result.attempts == 1


class TestIsolation:
    def test_error_record_carries_fingerprint(self):
        plan = FaultPlan((FaultRule(action="raise", name="modem"),))
        result = analyse_graph(modem(), faults=plan)
        assert result.fingerprint[:12] in result.error

    def test_memory_error_isolated_distinctly(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="modem", exception="MemoryError",
        ),))
        result = analyse_graph(modem(), faults=plan, retries=2)
        assert result.error_type == "MemoryError"
        assert result.attempts == 1  # OOM is not transient
        assert "out of memory" in result.error

    def test_keyboard_interrupt_propagates_in_parent(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="modem", exception="KeyboardInterrupt",
        ),))
        with pytest.raises(KeyboardInterrupt):
            analyse_graph(modem(), faults=plan)

    def test_keyboard_interrupt_isolated_in_workers(self):
        plan = FaultPlan((FaultRule(
            action="raise", name="modem", exception="KeyboardInterrupt",
        ),))
        result = analyse_graph(modem(), faults=plan, isolate_interrupts=True)
        assert not result.ok
        assert result.error_type == "KeyboardInterrupt"
        assert result.fingerprint[:12] in result.error

    def test_timeout_recorded_not_raised(self):
        result = analyse_graph(mp3_playback(), method="hsdf", timeout=0.005,
                               cache=AnalysisCache())
        assert not result.ok
        assert result.timed_out
        assert result.error_type == "AnalysisTimeout"

    def test_cancel_token_recorded(self):
        token = CancelToken()
        token.cancel("shutdown")
        result = analyse_graph(modem(), token=token, cache=AnalysisCache())
        assert result.error_type == "AnalysisCancelled"
        assert result.timed_out


class TestQuarantine:
    def test_worker_kill_quarantines_only_the_poison_graph(self, tmp_path):
        path = tmp_path / "run.jsonl"
        graphs = small_graphs()
        plan = FaultPlan((FaultRule(action="kill", name="modem"),))
        report = run_batch(graphs, backend="process", workers=2,
                           faults=plan, journal=path, cache=AnalysisCache())
        by_name = {r.name: r for r in report.results}
        assert by_name["modem"].quarantined
        assert by_name["modem"].error_type == "WorkerCrashed"
        assert by_name["modem"].fingerprint[:12] in by_name["modem"].error
        others = [r for r in report.results if r.name != "modem"]
        assert all(r.ok for r in others)
        # The quarantine verdict is journaled.
        records = BatchJournal(path).load()
        assert records[by_name["modem"].fingerprint].quarantined

    def test_kill_in_thread_backend_degrades_to_error(self):
        plan = FaultPlan((FaultRule(action="kill", name="modem"),))
        report = run_batch([modem()], backend="thread", faults=plan,
                           cache=AnalysisCache())
        result = report.results[0]
        assert not result.ok
        assert result.error_type == "WorkerCrashed"
        assert not result.quarantined  # no process actually died


class TestHangAndCancel:
    def test_injected_hang_ends_in_timeout(self):
        plan = FaultPlan((FaultRule(action="hang", name="modem"),))
        report = run_batch(small_graphs(), backend="serial", timeout=0.2,
                           faults=plan, cache=AnalysisCache())
        by_name = {r.name: r for r in report.results}
        assert by_name["modem"].timed_out
        assert by_name["modem"].error_type == "AnalysisTimeout"
        assert by_name["figure3"].ok or by_name["figure3"].timed_out

    def test_report_accessors(self):
        plan = FaultPlan((FaultRule(action="hang", name="modem"),))
        report = run_batch(small_graphs(), backend="serial", timeout=0.2,
                           faults=plan, cache=AnalysisCache())
        assert [r.name for r in report.timed_out] == ["modem"]
        assert report.quarantined == []
        assert report.resumed == []
