"""Execution-time sensitivity and slack."""

from fractions import Fraction

import pytest

from repro.analysis.sensitivity import sensitivity, slack
from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.examples import figure3_graph, section41_example
from repro.graphs.synthetic import homogeneous_pipeline
from repro.sdf.graph import SDFGraph


class TestSensitivity:
    def test_dominant_self_loop(self):
        g = homogeneous_pipeline(3, execution_times=[1, 9, 1], tokens=5)
        report = sensitivity(g)
        assert report.cycle_time == 9
        assert report.derivative["P2"] == 1  # its own 1-token loop
        assert report.derivative["P1"] == 0
        assert report.critical_actors() == ["P2"]

    def test_shared_cycle_sensitivity(self, simple_ring):
        report = sensitivity(simple_ring)
        # One cycle, one token: every actor contributes 1:1.
        assert report.derivative == {"X": 1, "Y": 1, "Z": 1}

    def test_two_token_cycle_halves_derivative(self):
        g = homogeneous_pipeline(2, execution_times=[4, 4], tokens=2)
        # Big loop: (4+4)/2 = 4 == self-loops 4/1: several critical
        # cycles; the derivative of the reported one is a subgradient.
        report = sensitivity(g)
        assert report.cycle_time == 4
        assert all(d in (Fraction(1, 2), 0, 1) for d in report.derivative.values())

    def test_multirate_derivative_counts_firings(self):
        g = figure3_graph()
        report = sensitivity(g)
        assert report.cycle_time == 7
        # Critical cycle: L#0 -> L#1 -> R -> (token) L#0: two L firings,
        # one R firing, one token.
        assert report.derivative["L"] == 2
        assert report.derivative["R"] == 1

    def test_derivative_predicts_small_change(self):
        g = figure3_graph()
        report = sensitivity(g)
        probe = g.copy()
        probe.set_execution_time("L", g.execution_time("L") + 1)
        new = throughput(probe).cycle_time
        assert new == report.cycle_time + report.derivative["L"] * 1

    def test_acyclic_rejected(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", tokens=1)
        g.add_edge("b", "a", tokens=1)
        # This one has a cycle; make a genuinely acyclic one:
        h = SDFGraph()
        h.add_actors("a", "b")
        h.add_edge("a", "b", tokens=1)
        with pytest.raises(ValidationError):
            sensitivity(h)


class TestSlack:
    def test_critical_actor_has_zero_slack(self, simple_ring):
        assert slack(simple_ring, "X") == 0

    def test_noncritical_actor_slack_value(self):
        g = homogeneous_pipeline(3, execution_times=[1, 9, 1], tokens=5)
        # P1's self-loop binds at 9: it may slow by exactly 8.
        assert slack(g, "P1") == 8

    def test_slack_is_tight(self):
        g = homogeneous_pipeline(3, execution_times=[1, 9, 1], tokens=5)
        value = slack(g, "P3")
        base = throughput(g).cycle_time
        probe = g.copy()
        probe.set_execution_time("P3", g.execution_time("P3") + value)
        assert throughput(probe).cycle_time == base
        probe.set_execution_time("P3", g.execution_time("P3") + value + 1)
        assert throughput(probe).cycle_time > base

    def test_unknown_actor(self, simple_ring):
        with pytest.raises(ValidationError):
            slack(simple_ring, "ghost")

    def test_slack_capped(self):
        # An actor whose slowdown never matters below the cap.
        g = SDFGraph()
        g.add_actor("fast", 1)
        g.add_actor("slow", 100)
        g.add_edge("fast", "fast", tokens=1)
        g.add_edge("slow", "slow", tokens=1)
        g.add_edge("fast", "slow")
        value = slack(g, "fast", max_slack=1000)
        assert value == 99  # may reach the slow loop's 100 exactly
