"""Multiprocessor binding and design-space exploration."""

from fractions import Fraction

import pytest

from repro.analysis.throughput import throughput
from repro.errors import ValidationError
from repro.graphs.examples import figure3_graph, section41_example
from repro.mapping import (
    Mapping,
    bind,
    greedy_load_balance,
    mapped_throughput,
    processor_utilisation,
    sweep_processor_counts,
)
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import is_consistent
from repro.sdf.schedule import is_live


@pytest.fixture
def ring6():
    return section41_example()


class TestMapping:
    def test_validate_coverage(self, simple_ring):
        with pytest.raises(ValidationError, match="cover"):
            Mapping(assignment={"X": "p0"}).validate(simple_ring)

    def test_orders_must_match_assignment(self, simple_ring):
        mapping = Mapping(
            assignment={"X": "p0", "Y": "p0", "Z": "p1"},
            orders={"p0": ["X", "Z"]},
        )
        with pytest.raises(ValidationError, match="static order"):
            bind(simple_ring, mapping)

    def test_processors_listing(self):
        mapping = Mapping(assignment={"a": "p1", "b": "p0", "c": "p1"})
        assert mapping.processors() == ["p1", "p0"]


class TestBind:
    def test_single_actor_processor_gets_self_loop(self, simple_ring):
        mapping = Mapping(assignment={"X": "p0", "Y": "p1", "Z": "p2"})
        bound = bind(simple_ring, mapping)
        assert all(bound.has_self_loop(a) for a in bound.actor_names)

    def test_existing_self_loop_not_duplicated(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=1)
        bound = bind(g, Mapping(assignment={"a": "p0"}))
        assert bound.edge_count() == 1

    def test_bound_graph_consistent_and_live(self, ring6):
        mapping = greedy_load_balance(ring6, 3)
        bound = bind(ring6, mapping)
        assert is_consistent(bound)
        assert is_live(bound)

    def test_multirate_binding_consistent(self):
        g = figure3_graph()
        bound = bind(g, Mapping(assignment={"L": "p0", "R": "p0"}))
        assert is_consistent(bound)
        assert is_live(bound)

    def test_single_processor_period_is_total_work(self, ring6):
        # Everything on one processor with a feasible order: the firings
        # run back to back, so the period is exactly the iteration work.
        everything = Mapping(assignment={a: "p0" for a in ring6.actor_names})
        result = mapped_throughput(ring6, everything)
        total_work = sum(ring6.execution_time(a) for a in ring6.actor_names)
        assert result.cycle_time == total_work

    def test_bound_graph_is_firing_granular(self, ring6):
        from repro.sdf.repetition import repetition_vector

        mapping = greedy_load_balance(ring6, 2)
        bound = bind(ring6, mapping)
        assert bound.is_homogeneous()
        gamma = repetition_vector(ring6)
        assert bound.actor_count() == sum(gamma.values())

    def test_multirate_single_processor_period(self):
        g = figure3_graph()
        result = mapped_throughput(g, Mapping(assignment={"L": "p0", "R": "p0"}))
        # 2 firings of L (3 each) + 1 of R (1): fully serialised.
        assert result.cycle_time == 7

    def test_binding_is_conservative_vs_unbound(self, ring6):
        unbound = throughput(ring6).cycle_time
        for n in (1, 2, 4):
            mapping = greedy_load_balance(ring6, n)
            assert mapped_throughput(ring6, mapping).cycle_time >= unbound

    def test_custom_static_order_respected_or_deadlocks(self):
        from repro.errors import DeadlockError

        g = SDFGraph()
        for name, time in (("a", 5), ("b", 1), ("c", 1)):
            g.add_actor(name, time)
        g.add_edge("a", "b")
        g.add_edge("b", "c")
        g.add_edge("c", "a", tokens=1)
        good = Mapping(
            assignment={a: "p0" for a in "abc"}, orders={"p0": ["a", "b", "c"]}
        )
        assert mapped_throughput(g, good).cycle_time == 7
        # A static order contradicting the data flow is a real design
        # error; the analysis reports it as a deadlock, not a number.
        bad = Mapping(
            assignment={a: "p0" for a in "abc"}, orders={"p0": ["b", "a", "c"]}
        )
        with pytest.raises(DeadlockError):
            mapped_throughput(g, bad)


class TestUtilisation:
    def test_sums_to_total_work_over_period(self, ring6):
        mapping = greedy_load_balance(ring6, 2)
        util = processor_utilisation(ring6, mapping)
        result = mapped_throughput(ring6, mapping)
        total_work = sum(ring6.execution_time(a) for a in ring6.actor_names)
        assert sum(util.values()) == Fraction(total_work, result.cycle_time)

    def test_bounded_by_one(self, ring6):
        for n in (1, 2, 3):
            mapping = greedy_load_balance(ring6, n)
            for value in processor_utilisation(ring6, mapping).values():
                assert value <= 1

    def test_single_processor_fully_utilised(self):
        g = SDFGraph()
        for name in ("a", "b"):
            g.add_actor(name, 2)
        g.add_edge("a", "b")
        g.add_edge("b", "a", tokens=1)
        mapping = Mapping(assignment={"a": "p0", "b": "p0"})
        util = processor_utilisation(g, mapping)
        assert util["p0"] == 1

    def test_whole_application_on_one_processor_fully_utilised(self, ring6):
        everything = Mapping(assignment={a: "p0" for a in ring6.actor_names})
        assert processor_utilisation(ring6, everything)["p0"] == 1


class TestExploration:
    def test_greedy_balances_load(self, ring6):
        mapping = greedy_load_balance(ring6, 2)
        assert set(mapping.assignment.values()) == {"p0", "p1"}

    def test_bad_processor_count(self, ring6):
        with pytest.raises(ValidationError):
            greedy_load_balance(ring6, 0)

    def test_sweep_monotone_until_plateau(self, ring6):
        points = sweep_processor_counts(ring6, max_processors=5)
        assert len(points) == 5
        # One processor: serialised; the guarantee can only improve or
        # plateau as processors are added by this mapper... the greedy
        # mapper is not optimal, so only sanity-check the envelope:
        assert points[0].cycle_time >= min(p.cycle_time for p in points)
        # Never better than the unbound application bound.
        unbound = throughput(ring6).cycle_time
        assert all(p.cycle_time >= unbound for p in points)

    def test_sweep_point_throughput(self, ring6):
        point = sweep_processor_counts(ring6, max_processors=1)[0]
        assert point.throughput == 1 / point.cycle_time
