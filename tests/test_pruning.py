"""Redundant parallel-edge pruning (Section 4.2)."""

import pytest

from repro.analysis.throughput import throughput
from repro.core.abstraction import abstract_graph
from repro.core.pruning import prune_redundant_edges, pruned_edge_count
from repro.graphs.examples import (
    figure2_abstraction,
    figure2_graph,
    section41_abstraction,
    section41_example,
)
from repro.sdf.graph import SDFGraph


class TestBasics:
    def test_no_parallel_edges_is_identity(self, simple_ring):
        pruned = prune_redundant_edges(simple_ring)
        assert pruned.structurally_equal(simple_ring)
        assert pruned_edge_count(simple_ring) == 0

    def test_keeps_minimum_token_edge(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", tokens=5)
        g.add_edge("a", "b", tokens=2)
        g.add_edge("a", "b", tokens=7)
        g.add_edge("b", "a", tokens=1)
        pruned = prune_redundant_edges(g)
        kept = [e for e in pruned.edges if e.source == "a"]
        assert len(kept) == 1 and kept[0].tokens == 2

    def test_different_rate_classes_not_merged(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1, tokens=5)
        g.add_edge("a", "b", production=1, consumption=2, tokens=0)
        pruned = prune_redundant_edges(g)
        assert pruned.edge_count() == 2

    def test_direction_matters(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", tokens=1)
        g.add_edge("b", "a", tokens=1)
        assert prune_redundant_edges(g).edge_count() == 2

    def test_execution_times_preserved(self, simple_ring):
        assert (
            prune_redundant_edges(simple_ring).execution_times
            == simple_ring.execution_times
        )


class TestPaperExamples:
    def test_figure2_redundant_self_edge_removed(self):
        abstract = abstract_graph(figure2_graph(), figure2_abstraction())
        pruned = prune_redundant_edges(abstract)
        self_edges = [e for e in pruned.edges if e.source == e.target == "A"]
        # Of the six parallel A→A edges (delays 1,1,1,3,3,3) one remains.
        assert len(self_edges) == 1
        assert self_edges[0].tokens == 1

    def test_figure1_abstract_prunes_to_four_edges(self):
        abstract = abstract_graph(section41_example(), section41_abstraction())
        assert prune_redundant_edges(abstract).edge_count() == 4


class TestThroughputInvariance:
    def test_throughput_preserved_figure2(self):
        abstract = abstract_graph(figure2_graph(), figure2_abstraction())
        assert (
            throughput(prune_redundant_edges(abstract)).cycle_time
            == throughput(abstract).cycle_time
        )

    def test_throughput_preserved_figure1(self):
        abstract = abstract_graph(section41_example(), section41_abstraction())
        assert (
            throughput(prune_redundant_edges(abstract)).cycle_time
            == throughput(abstract).cycle_time
        )

    def test_simulation_agrees_after_pruning(self):
        abstract = abstract_graph(figure2_graph(), figure2_abstraction())
        pruned = prune_redundant_edges(abstract)
        assert (
            throughput(pruned, method="simulation").cycle_time
            == throughput(abstract, method="simulation").cycle_time
        )
