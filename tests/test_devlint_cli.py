"""`repro devlint` CLI: exit codes, formats, baselines, and the CI gate.

The seeded-violation test is the end-to-end check the issue asks for: it
copies a real kernel (Karp's algorithm), deletes its ``deadline.check()``
polls, and asserts the gate fails with a SARIF diagnostic at the exact
line of the now-unpollable loop.
"""

import json
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.check import check_file, validate_sarif

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture()
def tree(tmp_path):
    """A miniature src/repro tree with one warning and one error file."""
    pkg = tmp_path / "src" / "repro" / "obs"
    pkg.mkdir(parents=True)
    (pkg / "warn.py").write_text(
        textwrap.dedent(
            """
            def guarded():
                try:
                    work()
                except Exception:
                    pass
            """
        )
    )
    return tmp_path


@pytest.fixture()
def clean_tree(tmp_path):
    pkg = tmp_path / "src" / "repro" / "obs"
    pkg.mkdir(parents=True)
    (pkg / "fine.py").write_text("def fine():\n    return 1\n")
    return tmp_path


def target(tree):
    return str(tree / "src" / "repro")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main(["devlint", target(clean_tree)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_warnings_pass_by_default(self, tree, capsys):
        assert main(["devlint", target(tree)]) == 0
        assert "broad-except" in capsys.readouterr().out

    def test_fail_on_warning_exits_one(self, tree, capsys):
        assert main(["devlint", target(tree), "--fail-on", "warning"]) == 1

    def test_errors_exit_two(self, tree, capsys):
        pkg = tree / "src" / "repro" / "obs"
        (pkg / "err.py").write_text("def f(x=[]):\n    return x\n")
        assert main(["devlint", target(tree)]) == 2

    def test_fail_on_never_swallows_errors(self, tree, capsys):
        pkg = tree / "src" / "repro" / "obs"
        (pkg / "err.py").write_text("def f(x=[]):\n    return x\n")
        assert main(["devlint", target(tree), "--fail-on", "never"]) == 0

    def test_unknown_select_code_exits_two(self, tree, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["devlint", target(tree), "--select", "no-such-rule"])
        assert excinfo.value.code == 2
        assert "no-such-rule" in capsys.readouterr().err


class TestFormats:
    def test_json_format(self, tree, capsys):
        assert main(["devlint", target(tree), "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["tool"]["name"] == "repro-devlint"
        assert data["summary"]["warnings"] == 1
        codes = {
            f["code"] for report in data["runs"] for f in report["findings"]
        }
        assert codes == {"broad-except"}

    def test_sarif_format_validates(self, tree, capsys):
        assert main(["devlint", target(tree), "--format", "sarif"]) == 0
        data = json.loads(capsys.readouterr().out)
        summary = validate_sarif(data)
        assert summary["runs"] == 1
        assert summary["results"] == 1
        driver = data["runs"][0]["tool"]["driver"]
        assert driver["name"] == "repro-devlint"
        rule_ids = {rule["id"] for rule in driver["rules"]}
        assert "broad-except" in rule_ids
        assert "exactness-discipline" in rule_ids

    def test_sarif_artifact_passes_obs_check(self, tree, tmp_path, capsys):
        out = tmp_path / "devlint.sarif"
        assert (
            main(["devlint", target(tree), "--format", "sarif", "-o", str(out)])
            == 0
        )
        summary = check_file(str(out))
        assert summary["runs"] == 1


class TestBaseline:
    def test_baseline_round_trip(self, tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "devlint",
                    target(tree),
                    "--write-baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert baseline.exists()
        # With the baseline applied the pre-existing warning is subtracted.
        assert (
            main(
                [
                    "devlint",
                    target(tree),
                    "--baseline",
                    str(baseline),
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )
        # A fresh finding still fails.
        pkg = tree / "src" / "repro" / "obs"
        (pkg / "fresh.py").write_text("def f(x=[]):\n    return x\n")
        assert (
            main(
                [
                    "devlint",
                    target(tree),
                    "--baseline",
                    str(baseline),
                    "--fail-on",
                    "warning",
                ]
            )
            == 2
        )


class TestSeededViolation:
    def test_removed_checkpoint_fails_gate_at_exact_line(
        self, tmp_path, capsys
    ):
        """Deleting karp.py's deadline polls must fail CI at the loop."""
        seeded = tmp_path / "src" / "repro" / "mcm"
        seeded.mkdir(parents=True)
        original = (REPO_ROOT / "src" / "repro" / "mcm" / "karp.py").read_text()
        assert "deadline.check()" in original, "seed removed nothing"
        # Neutralise the polls in place (keeps the file syntactically valid
        # and every line number identical to the shipped kernel).
        mutated = original.replace("deadline.check()", "pass")
        (seeded / "karp.py").write_text(mutated)

        loop_line = next(
            i
            for i, line in enumerate(mutated.splitlines(), start=1)
            if line.strip() == "for k in range(n):"
        )

        out_file = tmp_path / "seeded.sarif"
        code = main(
            [
                "devlint",
                str(tmp_path / "src" / "repro"),
                "--format",
                "sarif",
                "--fail-on",
                "warning",
                "-o",
                str(out_file),
            ]
        )
        assert code == 1

        data = json.loads(out_file.read_text())
        validate_sarif(data)
        results = data["runs"][0]["results"]
        polling = [r for r in results if r["ruleId"] == "deadline-polling"]
        assert polling, f"expected a deadline-polling result, got {results}"
        start_lines = {
            r["locations"][0]["physicalLocation"]["region"]["startLine"]
            for r in polling
        }
        assert loop_line in start_lines

    def test_pristine_kernel_passes_gate(self, tmp_path, capsys):
        seeded = tmp_path / "src" / "repro" / "mcm"
        seeded.mkdir(parents=True)
        shutil.copy(
            REPO_ROOT / "src" / "repro" / "mcm" / "karp.py",
            seeded / "karp.py",
        )
        assert (
            main(
                [
                    "devlint",
                    str(tmp_path / "src" / "repro"),
                    "--fail-on",
                    "warning",
                ]
            )
            == 0
        )


class TestDogfoodGate:
    def test_ci_invocation_on_repo_source_exits_zero(self, capsys):
        assert (
            main(
                [
                    "devlint",
                    str(REPO_ROOT / "src" / "repro"),
                    "--format",
                    "sarif",
                    "--fail-on",
                    "error",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        summary = validate_sarif(data)
        assert summary["results"] == 0
