"""The model linter."""

import pytest

from repro.graphs import TABLE1_CASES
from repro.graphs.examples import figure3_graph, section41_example
from repro.sdf.graph import SDFGraph
from repro.sdf.validation import validate_graph


def codes(report):
    return {f.code for f in report.findings}


class TestCleanGraphs:
    @pytest.mark.parametrize(
        "factory", [figure3_graph, section41_example], ids=["fig3", "fig1"]
    )
    def test_paper_graphs_clean(self, factory):
        report = validate_graph(factory())
        assert report.ok
        assert not report.findings
        assert str(report) == "graph is clean"

    @pytest.mark.parametrize("case", TABLE1_CASES, ids=lambda c: c.name)
    def test_benchmarks_have_no_errors(self, case):
        report = validate_graph(case.build())
        assert report.ok, str(report)


class TestFindings:
    def test_empty_graph(self):
        report = validate_graph(SDFGraph())
        assert codes(report) == {"empty"}
        assert report.ok  # a warning, not an error

    def test_disconnected(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_actor("b", 1)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("b", "b", tokens=1)
        assert "disconnected" in codes(validate_graph(g))

    def test_inconsistent_is_error(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("b", "a", production=1, consumption=1)
        report = validate_graph(g)
        assert not report.ok
        assert codes(report) == {"inconsistent"}

    def test_inconsistent_does_not_mask_structural_findings(self):
        # Inconsistency used to short-circuit validation; now every
        # rate-independent rule still reports.
        g = SDFGraph()
        g.add_actors("a", "b", "src")
        g.add_edge("a", "b", production=2, consumption=1)
        g.add_edge("b", "a", production=1, consumption=1)
        g.add_edge("src", "a")  # src never blocks: no incoming edge
        report = validate_graph(g)
        assert not report.ok
        assert {"inconsistent", "unbounded-actor"} <= codes(report)

    def test_deadlock_is_error(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        report = validate_graph(g)
        assert not report.ok
        assert "deadlock" in codes(report)

    def test_unbounded_actor_warning(self):
        g = SDFGraph()
        g.add_actor("src", 1)
        g.add_actor("dst", 1)
        g.add_edge("src", "dst")
        g.add_edge("dst", "dst", tokens=1)
        report = validate_graph(g)
        assert report.ok
        assert "unbounded-actor" in codes(report)

    def test_zero_time_cycle_warning(self):
        g = SDFGraph()
        g.add_actor("z", 0)
        g.add_edge("z", "z", tokens=1)
        report = validate_graph(g)
        assert "zero-time-cycle" in codes(report)

    def test_zero_time_actors_without_token_cycle_are_fine(self):
        g = SDFGraph()
        g.add_actor("z", 0)
        g.add_actor("a", 3)
        g.add_edge("a", "a", tokens=1)
        g.add_edge("a", "z")
        report = validate_graph(g)
        assert "zero-time-cycle" not in codes(report)

    def test_unread_tokens_warning(self):
        g = SDFGraph()
        g.add_actor("a", 1)
        g.add_edge("a", "a", tokens=5)  # one iteration consumes 1
        report = validate_graph(g)
        assert "unread-tokens" in codes(report)

    def test_report_rendering(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        text = str(validate_graph(g))
        assert "[error] deadlock" in text
