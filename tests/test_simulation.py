"""Self-timed execution engine and state-space throughput."""

from fractions import Fraction

import pytest

from repro.errors import ConvergenceError, DeadlockError, UnboundedThroughputError
from repro.graphs.examples import section41_example
from repro.graphs.synthetic import homogeneous_pipeline
from repro.sdf.graph import SDFGraph
from repro.sdf.simulation import SelfTimedSimulation, simulation_throughput


def self_loop_actor(time=2, tokens=1):
    g = SDFGraph()
    g.add_actor("A", time)
    g.add_edge("A", "A", tokens=tokens)
    return g


class TestEngine:
    def test_single_actor_fires_periodically(self):
        sim = SelfTimedSimulation(self_loop_actor(time=3))
        times = [sim.step() for _ in range(4)]
        assert times == [3, 6, 9, 12]
        assert sim.firings["A"] == 4

    def test_auto_concurrency_with_two_tokens(self):
        sim = SelfTimedSimulation(self_loop_actor(time=3, tokens=2))
        sim.step()
        assert sim.firings["A"] == 2  # both firings complete at t=3

    def test_consume_at_start_produce_at_end(self):
        g = SDFGraph()
        g.add_actor("A", 5)
        g.add_actor("B", 1)
        g.add_edge("A", "A", tokens=1)
        g.add_edge("A", "B")
        g.add_edge("B", "B", tokens=1)
        sim = SelfTimedSimulation(g)
        sim.step()  # A completes at 5, B starts
        assert sim.now == 5 and sim.firings == {"A": 1, "B": 0}
        sim.step()  # B completes at 6 (and A at... A restarted at 5)
        assert sim.firings["B"] == 1

    def test_trace_records_start_and_end(self):
        sim = SelfTimedSimulation(self_loop_actor(time=4), record_trace=True)
        sim.run_for_events(2)
        assert [(r.actor, r.start, r.end) for r in sim.trace] == [
            ("A", 0, 4),
            ("A", 4, 8),
        ]

    def test_run_until(self):
        sim = SelfTimedSimulation(self_loop_actor(time=2))
        sim.run_until(Fraction(7))
        assert sim.firings["A"] == 3  # completions at 2, 4, 6

    def test_source_actor_rejected(self):
        g = SDFGraph()
        g.add_actor("src", 1)
        g.add_actor("dst", 1)
        g.add_edge("src", "dst")
        g.add_edge("dst", "dst", tokens=1)
        with pytest.raises(UnboundedThroughputError) as excinfo:
            SelfTimedSimulation(g)
        assert excinfo.value.actor == "src"

    def test_deadlocked_graph_flags_and_raises(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        sim = SelfTimedSimulation(g)
        assert sim.is_deadlocked
        with pytest.raises(DeadlockError):
            sim.step()

    def test_zero_time_cycle_guarded(self):
        # A zero-time self-loop fires forever at t=0; throughput analysis
        # must detect the lack of time progress rather than spin.
        g = self_loop_actor(time=0)
        with pytest.raises(ConvergenceError):
            simulation_throughput(g)

    def test_multirate_consumption(self, two_actor_multirate):
        sim = SelfTimedSimulation(two_actor_multirate)
        # Both B→A tokens let A fire twice concurrently (done at 3); B
        # consumes the pair ([3,4]), refilling A (done at 7); the next B
        # firing ends at 8, past the deadline.
        sim.run_until(Fraction(7))
        assert sim.firings == {"A": 4, "B": 1}

    def test_state_key_periodicity(self):
        sim = SelfTimedSimulation(self_loop_actor(time=2))
        first = sim.state_key()
        sim.step()
        assert sim.state_key() == first  # same relative state each period


class TestThroughput:
    def test_single_actor_rate(self):
        measured = simulation_throughput(self_loop_actor(time=4))
        assert measured.per_actor["A"] == Fraction(1, 4)

    def test_ring_rate(self, simple_ring):
        measured = simulation_throughput(simple_ring)
        assert measured.per_actor == {
            "X": Fraction(1, 9),
            "Y": Fraction(1, 9),
            "Z": Fraction(1, 9),
        }

    def test_multirate_rates_follow_repetition(self, two_actor_multirate):
        measured = simulation_throughput(two_actor_multirate)
        assert measured.per_actor["A"] == 2 * measured.per_actor["B"]

    def test_section41_rate_is_one_over_23(self):
        measured = simulation_throughput(section41_example())
        assert measured.per_actor["A1"] == Fraction(1, 23)

    def test_pipeline_overlap(self):
        # Two tokens on the feedback edge: two iterations in flight.
        g = homogeneous_pipeline(3, execution_times=[4, 4, 4], tokens=2)
        measured = simulation_throughput(g)
        assert measured.per_actor["P1"] == Fraction(1, 6)

    def test_deadlock_raises(self):
        g = SDFGraph()
        g.add_actors("a", "b")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        with pytest.raises(DeadlockError):
            simulation_throughput(g)

    def test_state_budget_exceeded(self):
        g = homogeneous_pipeline(4, execution_times=[1, 2, 3, 4])
        with pytest.raises(ConvergenceError):
            simulation_throughput(g, max_states=1)
