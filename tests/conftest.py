"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.sdf.graph import SDFGraph

# Hypothesis profiles: "dev" (default) keeps runs quick; "ci" disables
# the wall-clock deadline (shared runners jitter) and derandomizes so
# every CI run covers the same example corpus.  Select with
# HYPOTHESIS_PROFILE=ci (the GitHub Actions workflow does).
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def two_actor_multirate() -> SDFGraph:
    """A minimal strongly connected multirate graph (γ = (2, 1))."""
    g = SDFGraph("two-actor")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=1)
    g.add_edge("A", "B", production=1, consumption=2, tokens=0)
    g.add_edge("B", "A", production=2, consumption=1, tokens=2)
    return g


@pytest.fixture
def simple_ring() -> SDFGraph:
    """A 3-actor homogeneous ring with one token (cycle time = ΣT)."""
    g = SDFGraph("ring")
    for name, time in (("X", 2), ("Y", 3), ("Z", 4)):
        g.add_actor(name, time)
    g.add_edge("X", "Y")
    g.add_edge("Y", "Z")
    g.add_edge("Z", "X", tokens=1)
    return g


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20090726)  # the paper's conference date


def replay_schedule(graph: SDFGraph, schedule) -> bool:
    """Check a schedule is admissible and a whole iteration (test oracle)."""
    from repro.sdf.repetition import repetition_vector

    tokens = {e.name: e.tokens for e in graph.edges}
    for actor in schedule:
        for e in graph.in_edges(actor):
            tokens[e.name] -= e.consumption
            if tokens[e.name] < 0:
                return False
        for e in graph.out_edges(actor):
            tokens[e.name] += e.production
    if any(tokens[e.name] != e.tokens for e in graph.edges):
        return False
    gamma = repetition_vector(graph)
    counts = {a: 0 for a in graph.actor_names}
    for actor in schedule:
        counts[actor] += 1
    return counts == gamma
