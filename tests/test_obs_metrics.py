"""Metrics registry: semantics, exporters, merge, cache collector."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import AnalysisCache
from repro.graphs.examples import figure3_graph
from repro.obs.check import (
    validate_metrics_snapshot,
    validate_prometheus_text,
)
from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    set_default_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("jobs_total", "jobs")
        c.inc()
        c.inc(2)
        assert registry.value("jobs_total") == 3

    def test_labels_are_independent_children(self, registry):
        c = registry.counter("results_total", "", labels=("status",))
        c.labels(status="ok").inc(5)
        c.labels(status="error").inc()
        assert c.value(status="ok") == 5
        assert c.value(status="error") == 1

    def test_get_or_create_returns_same_family(self, registry):
        first = registry.counter("x_total", "help")
        second = registry.counter("x_total", "help")
        assert first is second

    def test_type_conflict_raises(self, registry):
        registry.counter("x_total", "")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "")


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth", "")
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert registry.value("depth") == 13


class TestHistogram:
    def test_observe_buckets_and_sum(self, registry):
        h = registry.histogram("latency_seconds", "",
                               buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            h.observe(v)
        sample = registry.value("latency_seconds")
        assert sample["count"] == 4
        assert sample["sum"] == pytest.approx(55.55)


class TestExporters:
    def _populated(self, registry):
        registry.counter("jobs_total", "jobs run",
                         labels=("status",)).labels(status="ok").inc(3)
        registry.gauge("size", "current size").set(7)
        registry.histogram("dur_seconds", "durations",
                           buckets=(0.5, 5.0)).observe(1.0)
        return registry

    def test_snapshot_validates(self, registry):
        snapshot = self._populated(registry).as_dict()
        summary = validate_metrics_snapshot(snapshot)
        assert summary["families"] == 3

    def test_prometheus_text_validates(self, registry):
        text = self._populated(registry).to_prometheus()
        summary = validate_prometheus_text(text)
        assert summary["samples"] > 0
        assert 'jobs_total{status="ok"} 3' in text
        assert "# TYPE jobs_total counter" in text
        assert 'dur_seconds_bucket{le="+Inf"} 1' in text

    def test_write_picks_format_by_extension(self, registry, tmp_path):
        self._populated(registry)
        prom = tmp_path / "m.prom"
        registry.write(prom)
        validate_prometheus_text(prom.read_text())
        js = tmp_path / "m.json"
        registry.write(js)
        validate_metrics_snapshot(json.loads(js.read_text()))


class TestMerge:
    def test_counters_add_gauges_max(self, registry):
        registry.counter("n_total", "").inc(2)
        registry.gauge("peak", "").set(5)
        other = MetricsRegistry()
        other.counter("n_total", "").inc(3)
        other.gauge("peak", "").set(4)
        other.counter("only_remote_total", "").inc()
        registry.merge(other.as_dict())
        assert registry.value("n_total") == 5
        assert registry.value("peak") == 5  # max, not sum
        assert registry.value("only_remote_total") == 1

    def test_histograms_merge_bucketwise(self, registry):
        h = registry.histogram("d", "", buckets=(1.0,))
        h.observe(0.5)
        other = MetricsRegistry()
        other.histogram("d", "", buckets=(1.0,)).observe(2.0)
        registry.merge(other.as_dict())
        sample = registry.value("d")
        assert sample["count"] == 2
        assert sample["sum"] == pytest.approx(2.5)

    def test_labelled_merge_keys_align(self, registry):
        c = registry.counter("r_total", "", labels=("status",))
        c.labels(status="ok").inc()
        other = MetricsRegistry()
        other.counter("r_total", "", labels=("status",)).labels(
            status="ok").inc(2)
        registry.merge(other.as_dict())
        assert c.value(status="ok") == 3


class TestDefaultRegistry:
    def test_set_default_returns_previous(self):
        original = default_registry()
        fresh = MetricsRegistry()
        previous = set_default_registry(fresh)
        try:
            assert previous is original
            assert default_registry() is fresh
        finally:
            set_default_registry(previous)
        assert default_registry() is original


class TestCollectors:
    def test_collector_runs_at_export(self, registry):
        g = registry.gauge("live", "")
        registry.register_collector(lambda _registry: g.set(42))
        assert registry.as_dict()  # triggers the collector
        assert registry.value("live") == 42

    def test_cache_register_metrics_exports_deltas(self, registry):
        cache = AnalysisCache()
        cache.register_metrics(registry)
        cache.throughput(figure3_graph())
        cache.throughput(figure3_graph())
        registry.as_dict()
        assert registry.value("repro_cache_misses_total") == 1
        assert registry.value("repro_cache_hits_total") == 1
        assert registry.value("repro_cache_size") == 1

    def test_cache_register_metrics_is_idempotent(self, registry):
        cache = AnalysisCache()
        cache.register_metrics(registry)
        cache.register_metrics(registry)  # second call must not double-count
        cache.throughput(figure3_graph())
        registry.as_dict()
        assert registry.value("repro_cache_misses_total") == 1

    def test_cache_deltas_not_double_counted_across_exports(self, registry):
        cache = AnalysisCache()
        cache.register_metrics(registry)
        cache.throughput(figure3_graph())
        registry.as_dict()
        registry.as_dict()  # second export: no new activity, no new deltas
        assert registry.value("repro_cache_misses_total") == 1
