"""Devlint engine: suppressions, fingerprints, file collection, dogfood."""

import textwrap
from pathlib import Path

import pytest

from repro.devlint import (
    collect_files,
    lint_source,
    parse_suppressions,
    run_devlint,
)
from repro.errors import ReproError
from repro.lint.config import LintConfig

REPO_ROOT = Path(__file__).resolve().parents[1]


def run(source, path="src/repro/obs/fixture.py", config=None, project=None):
    return lint_source(
        textwrap.dedent(source), path=path, config=config, project=project
    )


def codes(report):
    return set(report.codes())


BROAD = """
def guarded():
    try:
        work()
    except Exception:{trailing}
        pass
"""


class TestSuppressions:
    def test_trailing_comment_suppresses_own_line(self):
        report = run(
            BROAD.format(
                trailing="  # devlint: ignore[broad-except] isolation boundary"
            )
        )
        assert codes(report) == set()

    def test_standalone_comment_suppresses_next_code_line(self):
        report = run(
            """
            def guarded():
                try:
                    work()
                # devlint: ignore[broad-except] isolation boundary
                except Exception:
                    pass
            """
        )
        assert codes(report) == set()

    def test_reasonless_suppression_does_not_suppress(self):
        report = run(
            BROAD.format(trailing="  # devlint: ignore[broad-except]")
        )
        assert codes(report) == {"broad-except", "bad-suppression"}

    def test_unknown_code_is_bad_suppression(self):
        report = run(
            BROAD.format(
                trailing="  # devlint: ignore[no-such-rule] whatever"
            )
        )
        assert "bad-suppression" in codes(report)
        (finding,) = report.by_code("bad-suppression")
        assert "no-such-rule" in finding.message

    def test_empty_code_list_is_bad_suppression(self):
        report = run(
            """
            x = 1  # devlint: ignore[] nothing
            """
        )
        assert codes(report) == {"bad-suppression"}

    def test_unmatched_suppression_is_unused(self):
        report = run(
            """
            x = 1  # devlint: ignore[broad-except] nothing to see
            """
        )
        assert codes(report) == {"unused-suppression"}
        (finding,) = report.by_code("unused-suppression")
        assert finding.line == 2

    def test_multiple_codes_in_one_comment(self):
        report = run(
            """
            def collect(into=[]):  # devlint: ignore[mutable-default, broad-except] demo
                return into
            """
        )
        # mutable-default is suppressed and used; broad-except never fires
        # on this line, so the comment is still "used" as a whole.
        assert codes(report) == set()

    def test_hash_inside_string_is_not_a_suppression(self):
        suppressions, _ = parse_suppressions(
            'text = "# devlint: ignore[broad-except] fake"\n'
        )
        assert suppressions == []

    def test_suppression_does_not_leak_to_other_lines(self):
        report = run(
            """
            def a(into=[]):  # devlint: ignore[mutable-default] first
                return into

            def b(into=[]):
                return into
            """
        )
        assert codes(report) == {"mutable-default"}
        (finding,) = report.by_code("mutable-default")
        assert finding.line == 5


class TestFingerprints:
    def test_duplicate_findings_get_distinct_fingerprints(self):
        report = run(
            """
            def twice(a=[], b=[]):
                return a, b
            """
        )
        found = report.by_code("mutable-default")
        assert len(found) == 2
        prints = {finding.fingerprint for finding in found}
        assert len(prints) == 2

    def test_fingerprint_survives_line_shift(self):
        before = run("def collect(into=[]):\n    return into\n")
        after = run("\n\n\ndef collect(into=[]):\n    return into\n")
        (first,) = before.by_code("mutable-default")
        (second,) = after.by_code("mutable-default")
        assert first.line != second.line
        assert first.fingerprint == second.fingerprint


class TestConfig:
    def test_select_narrows_to_listed_rules(self):
        config = LintConfig.build(select=["broad-except"])
        report = run(
            """
            def guarded(into=[]):
                try:
                    work()
                except Exception:
                    pass
            """,
            config=config,
        )
        assert codes(report) == {"broad-except"}

    def test_ignore_drops_listed_rules(self):
        config = LintConfig.build(ignore=["mutable-default"])
        report = run("def collect(into=[]):\n    return into\n", config=config)
        assert codes(report) == set()


class TestProjectIndex:
    def test_cross_file_recording_closure(self, tmp_path):
        helper = tmp_path / "src" / "repro" / "core" / "steps.py"
        helper.parent.mkdir(parents=True)
        helper.write_text(
            textwrap.dedent(
                """
                def note_reduction(before, after):
                    record_step("reduce", before=before, after=after)
                """
            )
        )
        builder = helper.parent / "reduce.py"
        builder.write_text(
            textwrap.dedent(
                """
                from repro.core.steps import note_reduction

                def reduce_graph(graph):
                    result = SDFGraph(graph.name)
                    note_reduction(graph, result)
                    return result
                """
            )
        )
        reports = run_devlint([str(tmp_path / "src" / "repro")])
        all_codes = {code for report in reports for code in report.codes()}
        assert "provenance-hygiene" not in all_codes


class TestCollectFiles:
    def test_directory_collection_skips_pycache(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        files = collect_files([str(tmp_path)])
        assert [Path(f).name for f in files] == ["a.py"]

    def test_missing_path_raises(self):
        with pytest.raises(ReproError):
            collect_files(["/no/such/devlint/path"])

    def test_single_file_and_dedupe(self, tmp_path):
        target = tmp_path / "a.py"
        target.write_text("x = 1\n")
        files = collect_files([str(target), str(tmp_path)])
        assert len(files) == 1


class TestDogfood:
    def test_repro_source_tree_is_clean(self):
        reports = run_devlint([str(REPO_ROOT / "src" / "repro")])
        findings = [f for report in reports for f in report.findings]
        assert findings == [], "devlint must stay clean on its own codebase:\n" + "\n".join(
            str(f) for f in findings
        )
